//! Vendored, dependency-free subset of `serde_json` over the local
//! `serde` value tree: pretty/compact printing and a strict JSON parser.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialisation or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise to compact JSON.
///
/// # Errors
/// Never fails for the value-tree model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to human-readable JSON (two-space indent).
///
/// # Errors
/// Never fails for the value-tree model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
///
/// # Errors
/// [`Error`] with the position of the first malformed construct, or the
/// deserialiser's type mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `Display` for f64 is the shortest round-trippable form.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_delimited(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |o, item, ind, d| {
                write_value(o, item, ind, d);
            },
        ),
        Value::Map(entries) => {
            write_delimited(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, val), ind, d| {
                    write_string(o, k);
                    o.push(':');
                    if ind.is_some() {
                        o.push(' ');
                    }
                    write_value(o, val, ind, d);
                },
            );
        }
    }
}

fn write_delimited<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                *c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("surrogate \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape:
                    // one UTF-8 validation per run, not per character
                    // (per-character validation of the remaining input
                    // is quadratic in the document size).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("malformed number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "1.5",
            "\"hi\"",
        ] {
            let v: Value = from_str(json).expect(json);
            assert_eq!(to_string(&v).expect("print"), json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("x\n\"quoted\"".into())),
            (
                "items".into(),
                Value::Seq(vec![Value::I64(1), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let compact = to_string(&v).expect("print");
        let back: Value = from_str(&compact).expect("parse");
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).expect("pretty");
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).expect("parse pretty");
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn float_display_round_trips() {
        let v = Value::F64(0.1 + 0.2);
        let back: Value = from_str(&to_string(&v).expect("print")).expect("parse");
        assert_eq!(back, v);
    }
}
