//! Vendored `#[derive(Serialize, Deserialize)]` for the local `serde`
//! stub.
//!
//! Instead of `syn`/`quote` (unavailable offline), the item's token
//! stream is walked directly: attributes and visibility are skipped, the
//! struct/enum shape is extracted, and the impl is emitted as a source
//! string parsed back into a `TokenStream`. Supported shapes are exactly
//! what the toolchain derives on: non-generic structs (named, tuple,
//! unit) and enums whose variants are unit, tuple, or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));")
                })
                .collect();
            format!("let mut m = ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(m)")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),")
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(a0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(a0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![({vn:?}\
                                 .to_string(), ::serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n }}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(m, {f:?})?)?")
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected map for struct {name}\"))?; Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(s.get({i}).ok_or_else(|| \
                         ::serde::DeError::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected sequence for tuple struct {name}\"))?; Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(s.get({i}).ok_or_else(\
                                         || ::serde::DeError::custom(\"variant tuple too short\"\
                                         ))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let s = payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected sequence payload\"))?; \
                                 Ok({name}::{vn}({})) }},",
                                gets.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(m, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let m = payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected map payload\"))?; \
                                 Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{ {unit_arms} other => \
                 Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))) }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                     let (tag, payload) = &m[0];\n\
                     match tag.as_str() {{ {tagged_arms} other => \
                     Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))) }}\n\
                 }},\n\
                 other => Err(::serde::DeError::custom(format!(\"expected enum {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token-level item parsing
// ---------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("derive: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("derive: expected item name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, found {other:?}"),
        },
        other => panic!("derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advance past leading `#[...]` attributes and `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list on top-level commas. Groups are opaque
/// trees; only `<...>` nesting needs explicit tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field body (struct or struct variant).
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match &field[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("derive: expected field name, found {t}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match &var[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("derive: expected variant name, found {t}"),
            };
            i += 1;
            let shape = match var.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(named_fields(g.stream()))
                }
                // `Variant` or `Variant = discriminant`.
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}
