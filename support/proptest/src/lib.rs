//! Vendored, dependency-free subset of `proptest`.
//!
//! Offline builds cannot fetch the real crate, so this reimplements the
//! surface the repository's property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `boxed`, numeric-range and
//! regex-literal strategies, `Just`, `any::<T>()`, tuple composition,
//! [`collection`] strategies, [`prop_oneof!`], and the [`proptest!`]
//! test-harness macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from upstream in one deliberate way: failing inputs
//! are *not shrunk* — the failing case is reported as generated. Cases
//! are sampled deterministically per test (fixed seed sequence), so
//! failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::rc::Rc;

/// Per-test configuration, settable with
/// `#![proptest_config(ProptestConfig { cases: …, ..ProptestConfig::default() })]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this implementation never
    /// shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Error type threaded out of `prop_assert!` failures.
pub type TestCaseError = String;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy (cheaply clonable).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.sampler)(rng)
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

// ---------------------------------------------------------------------
// `any`
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy over a type's full domain (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

enum Atom {
    /// `[a-z0-9_]`-style class, stored as inclusive char ranges.
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    Printable,
    /// A literal character.
    Lit(char),
}

enum Quant {
    One,
    Star,
    Between(usize, usize),
}

fn parse_pattern(pat: &str) -> Vec<(Atom, Quant)> {
    let mut chars = pat.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut class: Vec<char> = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        ranges.push((class[i], class[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((class[i], class[i]));
                        i += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    let next = chars.next();
                    assert_eq!(next, Some('C'), "only the \\PC escape class is supported");
                    Atom::Printable
                }
                Some('d') => Atom::Class(vec![('0', '9')]),
                Some(other) => Atom::Lit(other),
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            lit => Atom::Lit(lit),
        };
        let quant = match chars.peek() {
            Some('*') => {
                chars.next();
                Quant::Star
            }
            Some('+') => {
                chars.next();
                Quant::Between(1, 64)
            }
            Some('?') => {
                chars.next();
                Quant::Between(0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                };
                Quant::Between(lo, hi)
            }
            _ => Quant::One,
        };
        out.push((atom, quant));
    }
    out
}

/// A small pool of non-ASCII, non-control characters so `\PC` exercises
/// multi-byte UTF-8 paths.
const UNICODE_POOL: &[char] = &['é', 'λ', 'Ω', '→', '字', '𝕏', 'ß', '¬'];

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
        }
        Atom::Printable => {
            if rng.gen_bool(0.125) {
                UNICODE_POOL[rng.gen_range(0..UNICODE_POOL.len())]
            } else {
                char::from(rng.gen_range(0x20u8..0x7F))
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (atom, quant) in parse_pattern(self) {
            let n = match quant {
                Quant::One => 1,
                Quant::Star => rng.gen_range(0usize..=64),
                Quant::Between(lo, hi) => rng.gen_range(lo..=hi),
            };
            for _ in 0..n {
                out.push(sample_atom(&atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

/// Strategies for standard collections.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `BTreeSet` built from `size` draws (duplicates collapse, so the
    /// set may be smaller than the drawn size — as in real proptest's
    /// best-effort behaviour).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `BTreeMap` built from `size` key/value draws.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub use collection::{BTreeMapStrategy, BTreeSetStrategy, VecStrategy};

/// Build the deterministic generator for one test case.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(
        0x70_72_6F_70u64
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(case),
    )
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a `proptest!` body (reports instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests. Each function is expanded into a `#[test]`
/// that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $cfg; $($rest)*);
    };
    (@expand $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            #[allow(unused_variables)]
            for case in 0..u64::from(config.cases) {
                let rng = &mut $crate::case_rng(case);
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} failed: {message}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let rng = &mut super::case_rng(1);
        let s = (0i32..10, 5u8..=6).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..100 {
            let (a, b) = s.sample(rng);
            assert!(a % 2 == 0 && (0..20).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn regex_literals_generate_matching_strings() {
        let rng = &mut super::case_rng(2);
        for _ in 0..100 {
            let ident = "[a-z_][a-z0-9_]{0,30}".sample(rng);
            assert!(!ident.is_empty() && ident.len() <= 31);
            let first = ident.chars().next().expect("non-empty");
            assert!(first == '_' || first.is_ascii_lowercase());
            let free = "\\PC{0,40}".sample(rng);
            assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let rng = &mut super::case_rng(3);
        for _ in 0..100 {
            let v = super::collection::vec(0u32..9, 2..5).sample(rng);
            assert!((2..5).contains(&v.len()));
            let s = super::collection::btree_set(0usize..16, 1..6).sample(rng);
            assert!(!s.is_empty() && s.len() <= 5);
            let m = super::collection::btree_map(0u32..4, 1u32..100, 0..3).sample(rng);
            assert!(m.len() <= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_harness_macro_works(x in 0i32..100, label in "[a-z]{1,4}") {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(label.len(), label.chars().count());
            if x > 1000 {
                return Ok(()); // exercise early return
            }
        }

        #[test]
        fn oneof_and_flat_map_compose(
            v in (1usize..4).prop_flat_map(|n| super::collection::vec(
                prop_oneof![Just(1u8), Just(2u8), 5u8..7],
                n..=n,
            ))
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| [1, 2, 5, 6].contains(&x)));
        }
    }
}
