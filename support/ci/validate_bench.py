#!/usr/bin/env python3
"""Validate every committed BENCH_*.json baseline in one CI step.

Each baseline file has a named rule set below; the script fails if

* an expected baseline file is missing,
* a BENCH_*.json exists that no rule covers (add a rule when adding a
  bench — silent, unvalidated baselines are how gates rot), or
* any per-file rule fails.

Run from the repository root: ``python3 support/ci/validate_bench.py``.
"""

from __future__ import annotations

import glob
import json
import math
import os
import sys


def validate_search(data: dict) -> str:
    """BENCH_search.json: the phase-ordering search-throughput record."""
    po = data["phase_ordering"]
    for field in ("genome_dims", "evaluations", "distinct_pipelines", "distinct_configs"):
        assert isinstance(po[field], int) and po[field] > 0, field
    assert po["distinct_pipelines"] <= po["distinct_configs"] <= po["evaluations"]
    assert data["cache_misses"] == po["distinct_configs"], "cache key space drifted"
    batch = data["batch"]
    assert isinstance(batch["jobs"], int) and batch["jobs"] > 0
    assert isinstance(batch["unique_jobs"], int) and 0 < batch["unique_jobs"] <= batch["jobs"]
    assert 0.0 <= batch["dedup_rate"] <= 1.0, "dedup rate out of range"
    assert (
        abs(batch["dedup_rate"] - (batch["jobs"] - batch["unique_jobs"]) / batch["jobs"]) < 1e-9
    ), "dedup rate inconsistent with job counts"
    assert batch["cold_modules_per_sec"] > 0, "cold batch throughput missing"
    assert batch["warm_modules_per_sec"] > 0, "warm batch throughput missing"
    # The persistent store must pay for itself: a fully warm batch is at
    # least as fast as the cold batch that populated it…
    assert (
        batch["warm_modules_per_sec"] >= batch["cold_modules_per_sec"]
    ), "warm batch slower than cold — the disk store is a pessimisation"
    # …and it must do so by answering every evaluation from disk.
    assert batch["warm_disk_misses"] == 0, "warm batch recompiled"
    assert batch["warm_disk_hits"] > 0, "warm batch never touched the store"
    sec = data["security"]
    assert sec["secure_genome_dims"] == po["genome_dims"] + 1, "rung gene missing"
    assert isinstance(sec["evaluations"], int) and sec["evaluations"] > 0
    assert isinstance(sec["variants"], int) and sec["variants"] > 0
    # Both countermeasure rungs must survive on the 3-D front…
    assert sec["rung0_variants"] > 0 and sec["rung1_variants"] > 0, "a rung vanished"
    assert sec["rung0_variants"] + sec["rung1_variants"] == sec["variants"]
    r0, r1 = sec["rung0_min_leakage"], sec["rung1_min_leakage"]
    # …with finite leakage scores (WELCH_T_CAP bounds degenerate sets)…
    assert math.isfinite(r0) and math.isfinite(r1), "leakage scores must be finite"
    assert r0 >= 0.0 and r1 >= 0.0, "leakage is a |t| statistic"
    # …and the ladder must strictly cut the leakage axis.
    assert r1 < r0, f"ladderised rung does not reduce leakage: {r1} vs {r0}"
    dataflow = data["dataflow"]
    assert len(dataflow) == 4, "four app kernels expected in the dataflow section"
    strictly_better = 0
    for k in dataflow:
        assert k["baseline_pipeline"], k
        assert k["pipeline"], k
        assert k["wcet_cycles"] > 0 and k["baseline_wcet_cycles"] > 0, k
        # The dataflow-backed tuned pipelines must never pessimise a
        # kernel relative to the frozen pre-dataflow pipeline…
        assert k["wcet_cycles"] <= k["baseline_wcet_cycles"], k
        assert k["wcec_pj"] <= k["baseline_wcec_pj"], k
        assert k["code_halfwords"] <= k["baseline_code_halfwords"], k
        dominates = (
            k["wcet_cycles"] < k["baseline_wcet_cycles"]
            or k["wcec_pj"] < k["baseline_wcec_pj"]
            or k["code_halfwords"] < k["baseline_code_halfwords"]
        )
        assert k["strictly_better"] == dominates, k
        strictly_better += dominates
    # …and must strictly improve at least one kernel's objective vector.
    assert strictly_better >= 1, "no kernel improved by the dataflow passes"
    return (
        f"phase ordering {po['distinct_pipelines']}/{po['distinct_configs']} distinct, "
        f"batch warm/cold {batch['warm_over_cold']:.2f}x at "
        f"{batch['dedup_rate']:.0%} dedup, "
        f"leakage rung1 {r1:.3g} < rung0 {r0:.3g}, "
        f"dataflow passes improve {strictly_better}/4 tuned kernels"
    )


def validate_sched(data: dict) -> str:
    """BENCH_sched.json: HEFT scheduler quality per instance family."""
    assert data["scheduler"] == "heft_upward_rank_insertion"
    fams = data["families"]
    assert len(fams) == 6, "six instance families expected"
    for f in fams:
        assert f["instances"] > 0 and 0 <= f["feasible"] <= f["instances"], f
        assert abs(f["feasibility_rate"] - f["feasible"] / f["instances"]) < 1e-9, f
        if f["feasible"]:
            assert f["mean_makespan_us"] > 0 and f["mean_energy_uj"] > 0, f
        # The heuristic never beats the exhaustive optimum.
        assert f["mean_optimal_gap_pct"] >= -1e-9, f
    loose = [f for f in fams if f["name"].endswith("_loose")]
    assert all(f["feasibility_rate"] == 1.0 for f in loose), "loose deadlines must fit"
    assert 0 <= data["a2_mean_gap_pct"] < 5.0, "A2 gap regressed"
    assert data["a2_mean_saving_pct"] > 5.0, "multi-version saving collapsed"
    rates = {f["name"]: f["feasibility_rate"] for f in fams}
    return f"feasibility {rates}"


def validate_wcet(data: dict) -> str:
    """BENCH_wcet.json: IPET-vs-structural tightness per app kernel."""
    assert data["engine"] == "ipet_loop_nest_dp"
    kernels = data["kernels"]
    assert len(kernels) == 4, "four app kernels expected"
    strict = 0
    for k in kernels:
        assert k["ipet_cycles"] > 0 and k["structural_cycles"] > 0, k
        # IPET may only sharpen the structural bound, never exceed it.
        assert k["ipet_cycles"] <= k["structural_cycles"], k
        ratio = k["tightness_ratio"]
        assert 0.0 < ratio <= 1.0, k
        assert abs(ratio - k["ipet_cycles"] / k["structural_cycles"]) < 1e-9, k
        # The shared flow solver must tighten energy in lock-step.
        assert 0.0 < k["ipet_wcec_pj"] <= k["structural_wcec_pj"], k
        assert 0.0 < k["wcec_tightness_ratio"] <= 1.0, k
        if k["ipet_cycles"] < k["structural_cycles"]:
            strict += 1
    assert strict >= 1, "IPET must be strictly tighter on at least one kernel"
    assert data["analyses_per_sec_uncached"] > 0, "throughput record missing"
    assert data["analyses_per_sec_memoized"] > 0, "memoized throughput record missing"
    ratios = {k["app"]: round(k["tightness_ratio"], 3) for k in kernels}
    return f"tightness {ratios}, {strict}/4 strict"


def validate_sim(data: dict) -> str:
    """BENCH_sim.json: pre-decoded engine throughput vs the reference."""
    assert data["engine"] == "pre_decoded_direct_threaded"
    assert isinstance(data["pool_threads"], int) and data["pool_threads"] > 0
    kernels = data["kernels"]
    assert len(kernels) == 4, "four app kernels expected"
    for k in kernels:
        assert k["cycles_per_run"] > 0 and k["batch_runs"] > 0, k
        assert k["ref_cycles_per_sec"] > 0 and k["decoded_cycles_per_sec"] > 0, k
        assert k["batch_cycles_per_sec"] > 0, k
        # The pre-decoded engine must never lose to the interpreter it
        # lowers from (speedup >= 1.0 is the hard floor; the headline
        # target is tracked in the baseline itself).
        assert k["decoded_cycles_per_sec"] >= k["ref_cycles_per_sec"], k
        assert k["speedup"] >= 1.0, k
        assert (
            abs(k["speedup"] - k["decoded_cycles_per_sec"] / k["ref_cycles_per_sec"]) < 1e-9
        ), k
        # Every observed batch run stays under the static bound — the
        # fleet doubles as a soundness probe for IPET.
        assert 0 < k["observed_max_cycles"] <= k["ipet_cycles"], k
        assert 0.0 < k["observed_over_ipet"] <= 1.0, k
        assert (
            abs(k["observed_over_ipet"] - k["observed_max_cycles"] / k["ipet_cycles"]) < 1e-9
        ), k
    floor = min(k["speedup"] for k in kernels)
    assert abs(data["min_single_thread_speedup"] - floor) < 1e-9, "floor drifted"
    speedups = {k["app"]: round(k["speedup"], 2) for k in kernels}
    return f"speedups {speedups}, floor {floor:.2f}x"


def validate_fault(data: dict) -> str:
    """BENCH_fault.json: deterministic SEU campaigns per app kernel."""
    assert data["bench"] == "fault_campaign"
    assert isinstance(data["injections_per_kernel"], int) and data["injections_per_kernel"] > 0
    kernels = data["kernels"]
    assert len(kernels) == 4, "four app kernels expected"
    rate_fields = ("masked_rate", "sdc_rate", "trapped_rate", "timing_rate", "hang_rate")
    for k in kernels:
        assert k["injections"] == data["injections_per_kernel"], k
        assert 0 < k["reference_cycles"] <= k["ipet_cycles"], k
        # Every run executed under an explicit watchdog budget that
        # exceeds the fault-free run.
        assert k["watchdog_cycles"] > k["reference_cycles"], k
        for field in rate_fields:
            assert 0.0 <= k[field] <= 1.0, (k["app"], field)
        assert abs(sum(k[f] for f in rate_fields) - 1.0) < 1e-9, k
        # Harness invariants, not outcomes: the zero-fault control is
        # bit-identical to the reference and the serialized campaign is
        # byte-equal across pool widths.
        assert k["control_masked"] is True, k
        assert k["pool_width_invariant"] is True, k
        # A kernel that masks nothing (or everything) signals a broken
        # classifier rather than a vulnerability result.
        assert 0.0 < k["masked_rate"] < 1.0, k
    rates = {k["app"]: round(k["masked_rate"], 2) for k in kernels}
    return f"masked {rates} over {data['injections_per_kernel']} injections"


RULES = {
    "BENCH_fault.json": validate_fault,
    "BENCH_search.json": validate_search,
    "BENCH_sched.json": validate_sched,
    "BENCH_sim.json": validate_sim,
    "BENCH_wcet.json": validate_wcet,
}


def main() -> int:
    root = os.getcwd()
    present = {os.path.basename(p) for p in glob.glob(os.path.join(root, "BENCH_*.json"))}
    missing = sorted(set(RULES) - present)
    if missing:
        print(f"FAIL: missing baseline file(s): {', '.join(missing)}")
        return 1
    unknown = sorted(present - set(RULES))
    if unknown:
        print(
            f"FAIL: no validation rule for {', '.join(unknown)} — "
            "add one to support/ci/validate_bench.py"
        )
        return 1
    failures = 0
    for name in sorted(RULES):
        with open(os.path.join(root, name)) as fh:
            data = json.load(fh)
        try:
            summary = RULES[name](data)
        except (AssertionError, KeyError, TypeError, ZeroDivisionError) as exc:
            print(f"FAIL: {name}: {exc!r}")
            failures += 1
            continue
        print(f"ok: {name}: {summary}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
