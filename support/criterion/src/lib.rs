//! Vendored, dependency-free subset of `criterion`.
//!
//! Provides just enough API for the repository's benchmark suite to
//! compile and produce readable timings offline: `Criterion` with the
//! builder knobs the suite sets, `bench_function`/`Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`.
//! Measurements are simple medians over wall-clock batches — indicative
//! numbers, not criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark and print its median iteration time.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: let the closure run until the warm-up budget is spent,
        // scaling the iteration count to something measurable.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed < Duration::from_millis(1) {
                b.iters = (b.iters * 4).min(1 << 20);
            }
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            if run_start.elapsed() > self.measurement_time && !samples.is_empty() {
                break;
            }
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12}/iter ({} samples × {} iters)",
            fmt_time(median),
            samples.len(),
            b.iters
        );
        self
    }

    /// Print the closing line (upstream prints a summary report).
    pub fn final_summary(&self) {
        println!("benchmarks complete (vendored criterion: indicative timings only)");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to the benchmark closure; times the inner loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, executed `iters` times.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Group benchmark targets under a named runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}
