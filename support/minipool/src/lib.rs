//! Vendored, dependency-free scoped work-stealing thread pool.
//!
//! The repository builds in offline environments, so the slice of the
//! rayon-style API the toolchain needs is reimplemented here (following
//! the `support/rand` et al. offline-subset pattern): a [`Pool`] sized
//! from [`std::thread::available_parallelism`], a deterministic
//! [`Pool::par_map`] over indexed items, and a structured-concurrency
//! [`Pool::scope`] for ad-hoc task submission.
//!
//! # Determinism
//!
//! `par_map` always returns results **in item-index order**, regardless
//! of the pool size or which worker evaluated which item. A caller whose
//! per-item function is a pure function of `(index, item)` therefore gets
//! bit-identical output from a 1-thread and an N-thread pool — the
//! property the FPA search's batched-generation contract builds on.
//!
//! # Scheduling
//!
//! Work is distributed as contiguous index chunks into per-worker deques;
//! a worker pops from the front of its own deque and, when empty, steals
//! from the back of a sibling's. Threads are scoped
//! ([`std::thread::scope`]) and joined before `par_map`/`scope` returns,
//! so borrows of caller state need no `'static` lifetime. A pool of one
//! thread (or a single-item batch) runs inline on the caller's thread.
//!
//! The pool size can be pinned with the `MINIPOOL_THREADS` environment
//! variable (useful for determinism experiments and CI).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A fixed-width scoped thread pool.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that runs work on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from `MINIPOOL_THREADS` if set, otherwise
    /// [`std::thread::available_parallelism`] (1 if unknown).
    pub fn from_env() -> Pool {
        let threads = std::env::var("MINIPOOL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool::new(threads)
    }

    /// The number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item and return the results **in index order**.
    ///
    /// `f` may run on any worker, concurrently with other items; it must
    /// be `Sync` and should be a pure function of `(index, item)` when
    /// deterministic output is required. Panics in `f` are propagated to
    /// the caller after all workers have been joined.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Contiguous chunks per worker; stealing rebalances the tail.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let f = &f;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(i) = next_index(queues, w) {
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in collected.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} evaluated twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index evaluated exactly once"))
            .collect()
    }

    /// Run `f` with a [`Scope`] whose spawned tasks execute on this
    /// pool's workers. All tasks finish before `scope` returns; panics in
    /// tasks (and in `f` itself) are propagated. Tasks may borrow from
    /// the enclosing environment (no `'static` bound).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let shared = Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            done: AtomicBool::new(false),
        };
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    let shared = &shared;
                    s.spawn(move || {
                        while let Some(job) = shared.next_job() {
                            job();
                        }
                    })
                })
                .collect();
            let scope = Scope { shared: &shared };
            // Shut the workers down even if `f` unwinds — otherwise they
            // would wait on the condvar forever and the thread scope's
            // unwind-time join would deadlock.
            let result = {
                let _shutdown = ShutdownGuard { shared: &shared };
                f(&scope)
            };
            for h in handles {
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
            result
        })
    }

    /// A pool for nested fan-outs: when `outer` independent `par_map`
    /// items each want their own inner parallelism, give every item a
    /// `split_across(outer)` slice of this pool's width so the nesting
    /// does not oversubscribe cores (never narrower than one thread).
    pub fn split_across(&self, outer: usize) -> Pool {
        Pool::new(self.threads / outer.max(1))
    }
}

struct ShutdownGuard<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.shared.done.store(true, Ordering::Release);
        self.shared.ready.notify_all();
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// The process-wide shared pool, created on first use from
/// [`Pool::from_env`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::from_env)
}

/// Pop the worker's own front; steal from a sibling's back otherwise.
fn next_index(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(i) = queues[own].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (own + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Shared<'env> {
    queue: Mutex<VecDeque<Job<'env>>>,
    ready: Condvar,
    done: AtomicBool,
}

impl<'env> Shared<'env> {
    fn next_job(&self) -> Option<Job<'env>> {
        let mut queue = self.queue.lock().expect("job queue lock");
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            queue = self.ready.wait(queue).expect("job queue lock");
        }
    }
}

/// Spawn handle passed to the [`Pool::scope`] closure.
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queue a task for execution on the pool. Tasks run in FIFO order
    /// across the workers; completion is awaited by `Pool::scope`.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        self.shared
            .queue
            .lock()
            .expect("job queue lock")
            .push_back(Box::new(job));
        self.shared.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..103).collect();
            let out = pool.par_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_single_thread_bitwise() {
        let items: Vec<f64> = (0..57).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * 1e6 + i as f64).to_bits();
        let seq = Pool::new(1).par_map(&items, f);
        let par = Pool::new(8).par_map(&items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let pool = Pool::new(4);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.par_map(&empty, |_, x| *x).is_empty());
        assert_eq!(pool.par_map(&[9], |i, x| i as i32 + *x), vec![9]);
    }

    #[test]
    fn workers_actually_steal() {
        // One pathological chunk: item 0 is slow, the rest are instant.
        // With stealing, total wall-clock stays near the slow item alone.
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let out = pool.par_map(&items, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out[0], 1);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_env() {
        let counter = AtomicUsize::new(0);
        let pool = Pool::new(3);
        pool.scope(|s| {
            for _ in 0..25 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 25);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn par_map_propagates_panics() {
        Pool::new(2).par_map(&[1, 2, 3, 4], |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "scope closure panicked")]
    fn scope_closure_panic_unwinds_instead_of_deadlocking() {
        let pool = Pool::new(2);
        pool.scope(|s| {
            s.spawn(|| {});
            panic!("scope closure panicked");
        });
    }

    #[test]
    fn pool_size_is_clamped_and_env_sized() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn split_across_divides_width_and_never_starves() {
        let pool = Pool::new(8);
        assert_eq!(pool.split_across(2).threads(), 4);
        assert_eq!(pool.split_across(3).threads(), 2);
        assert_eq!(pool.split_across(100).threads(), 1);
        assert_eq!(pool.split_across(0).threads(), 8);
    }
}
