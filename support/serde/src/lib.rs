//! Vendored, dependency-free subset of `serde`.
//!
//! Offline builds cannot fetch the real `serde`, so this crate provides
//! the slice the toolchain uses: `#[derive(Serialize, Deserialize)]`
//! (re-exported from the local `serde_derive` proc-macro) backed by a
//! concrete [`Value`] tree instead of serde's visitor machinery. The
//! local `serde_json` crate renders and parses [`Value`] as JSON.
//!
//! Data-model conventions (mirroring serde's externally-tagged defaults):
//! * structs → maps of field name → value; newtype structs are
//!   transparent; tuple structs → sequences; unit structs → null;
//! * enums → `"Variant"` for unit variants, `{"Variant": …}` otherwise;
//! * maps → sequences of `[key, value]` pairs, so non-string keys
//!   round-trip without a string-key convention.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serialises through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range (or any non-negative parse).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view as `i128` for integer targets.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::I64(v) => Some(*v as i128),
            Value::U64(v) => Some(*v as i128),
            // Accept integral floats: JSON printers drop the ".0".
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(63) => Some(*v as i128),
            _ => None,
        }
    }
}

/// Total, deterministic ordering over [`Value`] trees.
///
/// Values of the same variant compare by payload (floats via
/// `total_cmp`, sequences and maps lexicographically); different
/// variants compare by a fixed rank. The order itself is arbitrary —
/// what matters is that it is stable across processes, so serialised
/// hash maps (whose iteration order is seeded per map instance) can be
/// rendered in one canonical entry order and safely byte-compared or
/// content-addressed downstream.
#[must_use]
pub fn canonical_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::U64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::Seq(_) => 6,
            Value::Map(_) => 7,
        }
    }
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::F64(x), Value::F64(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (xi, yi) in x.iter().zip(y) {
                let c = canonical_cmp(xi, yi);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y) {
                let c = kx.cmp(ky).then_with(|| canonical_cmp(vx, vy));
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// Deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    ///
    /// # Errors
    /// [`DeError`] describing the first mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a serialised map (derive-macro helper).
///
/// # Errors
/// [`DeError`] when the field is absent.
pub fn field<'v>(map: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_int().ok_or_else(|| DeError(format!(
                    "expected integer, got {v:?}"
                )))?;
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self > i64::MAX as u64 {
            Value::U64(*self)
        } else {
            Value::I64(*self as i64)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(n) => Ok(*n),
            _ => {
                let n = v
                    .as_int()
                    .ok_or_else(|| DeError(format!("expected integer, got {v:?}")))?;
                u64::try_from(n).map_err(|_| DeError(format!("integer {n} out of range for u64")))
            }
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError(format!("expected single-char string, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Static string slices (used in error payloads) deserialise by
    /// leaking the parsed string — a deliberate trade for supporting
    /// `&'static str` fields without serde's borrowed-data machinery.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    v.as_seq()
        .ok_or_else(|| DeError(format!("expected map (pair sequence), got {v:?}")))?
        .iter()
        .map(|pair| match pair.as_seq() {
            Some([k, val]) => Ok((K::from_value(k)?, V::from_value(val)?)),
            _ => Err(DeError(format!("expected [key, value] pair, got {pair:?}"))),
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash-map iteration order is seeded per map *instance*, so the
        // raw entry order would differ between equal maps (and between
        // processes). Sorting by [`canonical_cmp`] fixes one canonical
        // rendering for any map with the same content.
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect();
        entries.sort_by(canonical_cmp);
        Value::Seq(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq()
                    .ok_or_else(|| DeError(format!("expected tuple sequence, got {v:?}")))?;
                let mut it = s.iter();
                let out = ($(
                    {
                        let _ = $n; // positional marker
                        $t::from_value(it.next().ok_or_else(|| DeError("tuple too short".into()))?)?
                    },
                )+);
                if it.next().is_some() {
                    return Err(DeError("tuple too long".into()));
                }
                Ok(out)
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()), Ok(42));
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integral_floats_deserialise_as_integers() {
        assert_eq!(u32::from_value(&Value::F64(7.0)), Ok(7));
        assert!(u32::from_value(&Value::F64(7.5)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), 1u32), (String::from("b"), 2)];
        let back: Vec<(String, u32)> = Deserialize::from_value(&v.to_value()).expect("round trip");
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(3u32, vec![1i64, 2]);
        let back: HashMap<u32, Vec<i64>> = Deserialize::from_value(&m.to_value()).expect("map");
        assert_eq!(back, m);

        let arr = [1u8, 2, 3];
        let back: [u8; 3] = Deserialize::from_value(&arr.to_value()).expect("array");
        assert_eq!(back, arr);

        let opt: Option<i32> = None;
        assert_eq!(Option::<i32>::from_value(&opt.to_value()), Ok(None));
    }

    #[test]
    fn hash_maps_serialise_in_canonical_key_order() {
        // Two maps with the same content but different insertion orders
        // (and different per-instance hash seeds) must render
        // identically: downstream code content-addresses and
        // byte-compares serialised forms.
        let mut a = HashMap::new();
        for k in [9u32, 2, 7, 1, 4] {
            a.insert(k, k * 10);
        }
        let mut b = HashMap::new();
        for k in [4u32, 1, 7, 2, 9] {
            b.insert(k, k * 10);
        }
        assert_eq!(a.to_value(), b.to_value());
        let expected: Vec<Value> = [1u32, 2, 4, 7, 9]
            .iter()
            .map(|k| Value::Seq(vec![k.to_value(), (k * 10).to_value()]))
            .collect();
        assert_eq!(a.to_value(), Value::Seq(expected));
    }
}
