//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The repository builds in offline environments, so the pieces of `rand`
//! the toolchain actually uses are reimplemented here: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded via
//! splitmix64), `gen_range` over half-open and inclusive numeric ranges,
//! and `gen_bool`. Streams are stable across runs and platforms, which is
//! all the reproduction's seeded experiments require; no cryptographic or
//! OS entropy paths exist.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive numeric range.
    ///
    /// # Panics
    /// Panics on empty ranges, as `rand` does.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly, producing `T`. The output type
/// is a trait parameter (as in `rand` 0.8) so integer literals in range
/// expressions infer from the destination type.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// Element types uniformly samplable from a range. A single blanket
/// `SampleRange` impl per range shape keeps integer-literal inference
/// working the way `rand` 0.8 callers expect (`let n: u64 =
/// rng.gen_range(0..500)`).
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                } else {
                    assert!(lo < hi, "empty gen_range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                } else {
                    assert!(lo < hi, "empty gen_range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (which is
    /// version-unstable anyway); seeded runs are reproducible against
    /// *this* implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Expand the seed with splitmix64 so nearby seeds give
            // unrelated streams.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-12i32..=12);
            assert!((-12..=12).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn float_ranges_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "{mean}");
    }
}
