//! # teamplay-profiler — the dynamic profiler (PowProfiler analogue)
//!
//! Complex architectures "cannot be statically analysed to determine
//! WCETs" (paper Section II-B), so the TeamPlay workflow instruments a
//! sequential build of the application, executes it repeatedly, and
//! derives per-task time/energy profiles — the role of PowProfiler
//! (refs \[18\], \[19\]). This crate drives `teamplay-sim`'s complex-platform
//! simulator as the measured device:
//!
//! * [`profile_tasks`] — run every task `runs` times at every
//!   (core, operating-point) combination, collecting [`TaskStats`];
//! * [`exec_options_from_profile`] — convert profiles into the
//!   multi-version [`teamplay_coord::ExecOption`]s the scheduler
//!   consumes, applying a safety margin on the p95 execution time
//!   (profiling yields estimates, not bounds — which is precisely why
//!   the complex flow is for soft real-time use cases like the UAV);
//! * [`sample_power_trace`] — the power-rig view: a sampled power
//!   timeline over a sequence of task executions, integrated back into
//!   energy (used to validate that sampling-based measurement converges
//!   to the simulator's ground truth).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use teamplay_coord::ExecOption;
use teamplay_sim::{ComplexPlatform, TaskExecution, WorkItem};

/// Summary statistics of one (task, core, operating-point) profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Observations.
    pub runs: usize,
    /// Mean execution time (ms).
    pub mean_time_ms: f64,
    /// 95th-percentile execution time (ms).
    pub p95_time_ms: f64,
    /// Maximum observed execution time (ms).
    pub max_time_ms: f64,
    /// Sample standard deviation of time (ms).
    pub std_time_ms: f64,
    /// Mean energy (mJ).
    pub mean_energy_mj: f64,
}

impl TaskStats {
    /// Compute stats from raw executions.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn from_runs(samples: &[TaskExecution]) -> TaskStats {
        assert!(!samples.is_empty(), "need at least one run");
        let mut times: Vec<f64> = samples.iter().map(|s| s.time_ms).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = times.len();
        let mean = times.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let p95 = times[((n as f64 * 0.95).ceil() as usize).min(n) - 1];
        TaskStats {
            runs: n,
            mean_time_ms: mean,
            p95_time_ms: p95,
            max_time_ms: times[n - 1],
            std_time_ms: var.sqrt(),
            mean_energy_mj: samples.iter().map(|s| s.energy_mj).sum::<f64>() / n as f64,
        }
    }
}

/// A full profiling report: task → core → operating point → stats.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// `(task, core, op_index)` → stats.
    pub profiles: BTreeMap<(String, String, usize), TaskStats>,
}

impl ProfileReport {
    /// Stats for one combination.
    pub fn stats(&self, task: &str, core: &str, op: usize) -> Option<&TaskStats> {
        self.profiles.get(&(task.to_string(), core.to_string(), op))
    }
}

/// Profile every task on every core/operating point of the platform.
///
/// Deterministic for a fixed seed (the simulator's jitter is seeded).
pub fn profile_tasks(
    platform: &ComplexPlatform,
    tasks: &[(String, WorkItem)],
    runs: usize,
    seed: u64,
) -> ProfileReport {
    let mut rng: StdRng = ComplexPlatform::rng(seed);
    let mut profiles = BTreeMap::new();
    for (name, work) in tasks {
        for core in &platform.cores {
            for op in 0..core.ops.len() {
                let samples: Vec<TaskExecution> = (0..runs)
                    .map(|_| platform.execute(core, op, work, &mut rng))
                    .collect();
                profiles.insert(
                    (name.clone(), core.name.clone(), op),
                    TaskStats::from_runs(&samples),
                );
            }
        }
    }
    ProfileReport { profiles }
}

/// Convert a profile into scheduler options.
///
/// Each (core, op) combination becomes one option per task with
/// `time = p95 × margin` (a soft-real-time budget, not a WCET bound) and
/// the mean energy. `margin` of 1.1–1.3 mirrors the engineering safety
/// factors of the paper's UAV deployment.
pub fn exec_options_from_profile(
    report: &ProfileReport,
    task: &str,
    margin: f64,
) -> Vec<ExecOption> {
    report
        .profiles
        .iter()
        .filter(|((t, _, _), _)| t == task)
        .map(|((_, core, op), stats)| ExecOption {
            label: format!("{core}#op{op}"),
            core: core.clone(),
            time_us: stats.p95_time_ms * margin * 1e3,
            energy_uj: stats.mean_energy_mj * 1e3,
            security_level: 0,
        })
        .collect()
}

/// One span of a sequential execution trace: `(start_ms, end_ms,
/// power_mw)`.
pub type PowerSpan = (f64, f64, f64);

/// Sample the total power of a span sequence at a fixed period, returning
/// `(sample_times_ms, power_mw)` pairs — what a measurement rig records.
pub fn sample_power_trace(spans: &[PowerSpan], period_ms: f64) -> Vec<(f64, f64)> {
    let end = spans.iter().map(|s| s.1).fold(0.0f64, f64::max);
    let mut out = Vec::new();
    let mut t = period_ms / 2.0; // midpoint sampling
    while t < end {
        let p = spans
            .iter()
            .filter(|(s, e, _)| *s <= t && t < *e)
            .map(|(_, _, p)| p)
            .sum::<f64>();
        out.push((t, p));
        t += period_ms;
    }
    out
}

/// Integrate a sampled power trace into energy (mJ), rectangle rule.
pub fn integrate_energy_mj(samples: &[(f64, f64)], period_ms: f64) -> f64 {
    samples.iter().map(|(_, p)| p * period_ms / 1e3).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> ComplexPlatform {
        ComplexPlatform::tk1()
    }

    fn work() -> WorkItem {
        WorkItem::new(500.0, 4.0)
    }

    #[test]
    fn stats_summarise_runs() {
        let samples = vec![
            TaskExecution {
                time_ms: 10.0,
                energy_mj: 5.0,
                avg_power_mw: 500.0,
            },
            TaskExecution {
                time_ms: 12.0,
                energy_mj: 6.0,
                avg_power_mw: 500.0,
            },
            TaskExecution {
                time_ms: 11.0,
                energy_mj: 5.5,
                avg_power_mw: 500.0,
            },
        ];
        let s = TaskStats::from_runs(&samples);
        assert_eq!(s.runs, 3);
        assert!((s.mean_time_ms - 11.0).abs() < 1e-9);
        assert_eq!(s.max_time_ms, 12.0);
        assert!((s.mean_energy_mj - 5.5).abs() < 1e-9);
        assert!(s.p95_time_ms >= s.mean_time_ms);
    }

    #[test]
    fn profiling_covers_all_cores_and_ops() {
        let p = platform();
        let tasks = vec![("detect".to_string(), work())];
        let report = profile_tasks(&p, &tasks, 16, 7);
        let combos: usize = p.cores.iter().map(|c| c.ops.len()).sum();
        assert_eq!(report.profiles.len(), combos);
        let s = report.stats("detect", "a15-0", 0).expect("present");
        assert!(s.mean_time_ms > 0.0);
    }

    #[test]
    fn profiling_is_deterministic_per_seed() {
        let p = platform();
        let tasks = vec![("t".to_string(), work())];
        let a = profile_tasks(&p, &tasks, 8, 3);
        let b = profile_tasks(&p, &tasks, 8, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn p95_reflects_jitter() {
        let p = platform();
        let tasks = vec![("t".to_string(), work())];
        let report = profile_tasks(&p, &tasks, 200, 5);
        let s = report.stats("t", "a15-0", 2).expect("present");
        assert!(s.p95_time_ms > s.mean_time_ms, "jitter should lift the p95");
        assert!(s.max_time_ms >= s.p95_time_ms);
        assert!(s.std_time_ms > 0.0);
    }

    #[test]
    fn exec_options_apply_margin_and_units() {
        let p = platform();
        let tasks = vec![("t".to_string(), work())];
        let report = profile_tasks(&p, &tasks, 32, 9);
        let opts = exec_options_from_profile(&report, "t", 1.2);
        let combos: usize = p.cores.iter().map(|c| c.ops.len()).sum();
        assert_eq!(opts.len(), combos);
        let s = report.stats("t", "gk20a", 0).expect("present");
        let o = opts
            .iter()
            .find(|o| o.core == "gk20a" && o.label.ends_with("#op0"))
            .expect("option");
        assert!((o.time_us - s.p95_time_ms * 1.2 * 1e3).abs() < 1e-6);
        assert!((o.energy_uj - s.mean_energy_mj * 1e3).abs() < 1e-6);
    }

    #[test]
    fn gpu_options_beat_cpu_for_gpu_friendly_work() {
        let p = platform();
        let tasks = vec![("t".to_string(), WorkItem::new(8000.0, 12.0))];
        let report = profile_tasks(&p, &tasks, 32, 11);
        let opts = exec_options_from_profile(&report, "t", 1.1);
        let best_cpu = opts
            .iter()
            .filter(|o| o.core.starts_with("a15"))
            .map(|o| o.time_us)
            .fold(f64::INFINITY, f64::min);
        let best_gpu = opts
            .iter()
            .filter(|o| o.core == "gk20a")
            .map(|o| o.time_us)
            .fold(f64::INFINITY, f64::min);
        assert!(best_gpu < best_cpu);
    }

    #[test]
    fn sampled_energy_converges_to_truth() {
        // Three back-to-back spans at known power.
        let spans = vec![
            (0.0, 100.0, 2000.0),
            (100.0, 250.0, 3500.0),
            (250.0, 400.0, 1000.0),
        ];
        let truth_mj = 2000.0 * 0.1 + 3500.0 * 0.15 + 1000.0 * 0.15;
        let coarse = integrate_energy_mj(&sample_power_trace(&spans, 10.0), 10.0);
        let fine = integrate_energy_mj(&sample_power_trace(&spans, 0.5), 0.5);
        let err_coarse = (coarse - truth_mj).abs() / truth_mj;
        let err_fine = (fine - truth_mj).abs() / truth_mj;
        assert!(err_fine < 0.01, "fine sampling error {err_fine}");
        assert!(err_fine <= err_coarse + 1e-12);
    }

    #[test]
    fn power_trace_samples_midpoints() {
        let spans = vec![(0.0, 10.0, 100.0)];
        let samples = sample_power_trace(&spans, 2.0);
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|(_, p)| *p == 100.0));
    }
}
