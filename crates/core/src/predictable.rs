//! The TeamPlay workflow for predictable architectures (paper Fig. 1).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use teamplay_compiler::{
    compile_module_per_function_on, pareto_search_with_cache_seeded, CompilerConfig, DiskStore,
    EvalCache, FpaConfig, PipelineCatalog, SearchStats, TaskVariant,
};
use teamplay_contracts::{prove, Certificate, ProveError, TaskEvidence};
use teamplay_coord::{
    generate_parallel_glue_with_pipelines, schedule_energy_aware, CoordTask, ExecOption, GlueError,
    Schedule, ScheduleError, TaskSet,
};
use teamplay_csl::{extract_model, CslError, CslModel, SecurityReq};
use teamplay_energy::{analyze_program_energy_cached, IsaEnergyModel};
use teamplay_isa::{CycleModel, Program};
use teamplay_minic::{lower::lower_program, parse_and_check, FrontendError};
use teamplay_security::{assess_leakage, ladderise, LadderReport, LeakageReport, SecretSpec};
use teamplay_sim::{seeded_inputs, simulate_batch_budgeted, DecodedProgram, GroundTruthEnergy};
use teamplay_wcet::analyze_program_cached;

/// Configuration of the predictable workflow: platform models, clock and
/// search budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Timing model of the target core.
    pub cycle_model: CycleModel,
    /// Analytical energy model (conservative datasheet).
    pub energy_model: IsaEnergyModel,
    /// Ground-truth model for measurement-based steps (leakage runs).
    pub truth: GroundTruthEnergy,
    /// Core clock (MHz) for cycle→time conversion.
    pub clock_mhz: f64,
    /// FPA search budget per task.
    pub fpa: FpaConfig,
    /// Leakage traces per secret class.
    pub leakage_traces: usize,
    /// Search seed (determinism).
    pub seed: u64,
    /// Named pipelines the workflow selects from — the generic levels
    /// plus every application's tuned pipeline.
    pub pipelines: PipelineCatalog,
    /// Catalogue name (or literal pipeline string) compiled into the
    /// final build's non-task functions.
    pub default_pipeline: String,
    /// Opt-in measurement step: simulate every front variant on the
    /// pre-decoded engine and report the observed-vs-IPET gap per task.
    /// `None` (the default) skips the step entirely.
    pub measure: Option<MeasureConfig>,
    /// Optional persistent evaluation store (a
    /// [`teamplay_compiler::DiskStore`] directory): the search
    /// warm-starts from it and spills back to it, so repeated workflow
    /// runs — across processes — skip compilation of every
    /// configuration they have seen before. `None` (the default) keeps
    /// all caching in-memory.
    pub store_dir: Option<String>,
}

/// Configuration of the opt-in measurement step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Seeded input vectors simulated per variant.
    pub runs: usize,
    /// Inclusive lower bound of the argument range.
    pub input_lo: i32,
    /// Exclusive upper bound of the argument range.
    pub input_hi: i32,
}

impl MeasureConfig {
    /// A dozen runs over a small signed range — enough to exercise both
    /// branch polarities of typical kernels without dominating workflow
    /// time.
    pub fn standard() -> MeasureConfig {
        MeasureConfig {
            runs: 12,
            input_lo: -64,
            input_hi: 64,
        }
    }
}

/// Observed behaviour of one Pareto-front variant under the measurement
/// step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantMeasurement {
    /// Index of the variant on its task's front.
    pub variant: usize,
    /// The variant's static IPET bound (cycles).
    pub ipet_cycles: u64,
    /// Worst observed cycles across the seeded runs.
    pub observed_max_cycles: u64,
    /// `observed_max_cycles / ipet_cycles` — the per-variant tightness
    /// evidence (must be ≤ 1 by IPET soundness).
    pub observed_over_ipet: f64,
    /// Worst observed ground-truth energy across the runs (pJ).
    pub observed_max_energy_pj: f64,
    /// Seeded runs simulated.
    pub runs: usize,
}

/// Measurement results for one task's whole Pareto front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskMeasurement {
    /// Task name.
    pub task: String,
    /// Implementing function.
    pub function: String,
    /// One record per front variant, in front order.
    pub variants: Vec<VariantMeasurement>,
}

impl WorkflowConfig {
    /// The Cortex-M0-like PG32 target at 48 MHz (camera pill, DL M0 leg).
    pub fn pg32() -> WorkflowConfig {
        WorkflowConfig {
            cycle_model: CycleModel::pg32(),
            energy_model: IsaEnergyModel::pg32_datasheet(),
            truth: GroundTruthEnergy::pg32(),
            clock_mhz: 48.0,
            fpa: FpaConfig::standard(),
            leakage_traces: 48,
            seed: 0xC0FFEE,
            pipelines: teamplay_apps::catalog(),
            default_pipeline: "o2".to_string(),
            measure: None,
            store_dir: None,
        }
    }

    /// The LEON3/GR712RC-like target at 100 MHz (SpaceWire).
    pub fn leon3() -> WorkflowConfig {
        WorkflowConfig {
            cycle_model: CycleModel::leon3(),
            energy_model: IsaEnergyModel::leon3_datasheet(),
            truth: GroundTruthEnergy::leon3(),
            clock_mhz: 100.0,
            ..WorkflowConfig::pg32()
        }
    }
}

/// Per-task outcome of the workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Implementing function.
    pub function: String,
    /// The compiler configuration of the selected variant.
    pub selected_config: CompilerConfig,
    /// Variants the FPA offered for this task.
    pub variants_offered: usize,
    /// Final IPET-analysed WCET (µs, at the configured clock).
    pub wcet_us: f64,
    /// Final IPET-analysed worst-case energy (µJ).
    pub wcec_uj: f64,
    /// Ladderisation outcome (secure tasks only).
    pub ladder: Option<LadderReport>,
    /// Measured leakage (secure tasks only).
    pub leakage: Option<LeakageReport>,
}

/// Rung of the graceful-degradation ladder the coordinator settled on.
///
/// When the nominal contract is unschedulable, the workflow does not
/// give up immediately: it walks a ladder of progressively weaker — but
/// still explicit and certifiable — contracts, and records which rung
/// was actually proven. Each rung is only attempted when the source
/// declared the clause that enables it (`reliability(k)` for rung 1,
/// `degraded_deadline(t)` for rung 2); a source with neither degrades
/// straight to [`WorkflowError::Unschedulable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationRung {
    /// Rung 0: the full nominal contract, re-execution slack included.
    Full,
    /// Rung 1: re-execution reservations dropped — the system stays on
    /// its nominal deadlines but loses fault-recovery guarantees.
    NoReexecution,
    /// Rung 2: degraded-mode deadlines substituted where declared
    /// (re-executions stay dropped) — the relaxed real-time contract.
    DegradedDeadline,
}

impl DegradationRung {
    /// Numeric form recorded in [`TaskEvidence::degradation_rung`].
    pub fn as_u8(self) -> u8 {
        match self {
            DegradationRung::Full => 0,
            DegradationRung::NoReexecution => 1,
            DegradationRung::DegradedDeadline => 2,
        }
    }
}

/// The "certified, coordinated binary" of Fig. 1.
#[derive(Debug, Clone)]
pub struct PredictableOutcome {
    /// The final PG32 program (per-task selected variants).
    pub program: Program,
    /// The extracted CSL task model.
    pub model: CslModel,
    /// The validated schedule.
    pub schedule: Schedule,
    /// The contract certificate.
    pub certificate: Certificate,
    /// The evidence the certificate binds to (for re-verification).
    pub evidence: HashMap<String, TaskEvidence>,
    /// Per-task reports.
    pub tasks: Vec<TaskReport>,
    /// Generated runtime glue code.
    pub glue: String,
    /// The degradation rung the coordinator settled on (recorded in
    /// every task's certificate evidence as well).
    pub degradation: DegradationRung,
    /// Merged search instrumentation across every task's Pareto front:
    /// total evaluations/generations, and the cache counters of the one
    /// [`EvalCache`] all fronts shared (so `cache_misses` is the number
    /// of distinct configurations compiled for the whole module).
    pub search: SearchStats,
    /// Observed-vs-IPET gap per task and front variant, from the opt-in
    /// measurement step. Empty unless [`WorkflowConfig::measure`] is set;
    /// tasks with array parameters are skipped (no scalar input vectors
    /// can drive them).
    pub measurements: Vec<TaskMeasurement>,
}

/// Workflow failures, in pipeline order.
#[derive(Debug)]
pub enum WorkflowError {
    /// Front-end (lex/parse/sema) failure.
    Frontend(FrontendError),
    /// CSL extraction failure.
    Csl(CslError),
    /// The source declares no tasks.
    NoTasks,
    /// A secure task still has secret-dependent branching after
    /// ladderisation.
    ResidualLeakRisk {
        /// The task.
        task: String,
        /// The hardening report.
        report: LadderReport,
    },
    /// Compilation or analysis of a variant failed.
    Compile(String),
    /// No variant assignment meets the deadlines, even after walking
    /// every declared rung of the degradation ladder.
    Unschedulable(ScheduleError),
    /// Glue generation found the schedule and task set inconsistent.
    Glue(GlueError),
    /// Leakage assessment failed to run.
    Security(String),
    /// The contract system rejected the budgets.
    Contract(ProveError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Frontend(e) => write!(f, "front-end: {e}"),
            WorkflowError::Csl(e) => write!(f, "CSL: {e}"),
            WorkflowError::NoTasks => write!(f, "no `task` annotations found in the source"),
            WorkflowError::ResidualLeakRisk { task, report } => write!(
                f,
                "task `{task}` retains {} secret-dependent branch(es) after ladderisation",
                report.residual
            ),
            WorkflowError::Compile(msg) => write!(f, "compilation: {msg}"),
            WorkflowError::Unschedulable(e) => write!(f, "coordination: {e}"),
            WorkflowError::Glue(e) => write!(f, "coordination: {e}"),
            WorkflowError::Security(msg) => write!(f, "security analysis: {msg}"),
            WorkflowError::Contract(e) => write!(f, "contract system: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<FrontendError> for WorkflowError {
    fn from(e: FrontendError) -> Self {
        WorkflowError::Frontend(e)
    }
}
impl From<CslError> for WorkflowError {
    fn from(e: CslError) -> Self {
        WorkflowError::Csl(e)
    }
}

/// Walk the graceful-degradation ladder: try the nominal contract
/// (re-execution slack included), then — where the source declared the
/// enabling clauses — drop the re-execution reservations, then
/// substitute degraded-mode deadlines. Returns the first rung that
/// schedules, with the task set actually used; exhausting the ladder
/// reports the *last* rung's scheduling failure (the weakest contract
/// that was still infeasible).
///
/// The global deadline is recomputed per rung as the tightest per-task
/// deadline in effect, so rung 2 relaxes the frame end alongside the
/// substituted task deadlines.
fn schedule_with_degradation(
    model: &CslModel,
    nominal: &[CoordTask],
) -> Result<(TaskSet, Schedule, DegradationRung), WorkflowError> {
    let attempt =
        |tasks: Vec<CoordTask>| -> Result<Result<(TaskSet, Schedule), ScheduleError>, WorkflowError> {
            let deadline_us = tasks
                .iter()
                .filter_map(|t| t.deadline_us)
                .fold(f64::INFINITY, f64::min)
                .min(1e12);
            let set = TaskSet::new(tasks, vec!["cpu0".into()], deadline_us)
                .map_err(|e| WorkflowError::Compile(e.to_string()))?;
            Ok(match schedule_energy_aware(&set) {
                Ok(s) => Ok((set, s)),
                Err(e) => Err(e),
            })
        };
    // Rung 0 — the full nominal contract.
    let mut last = match attempt(nominal.to_vec())? {
        Ok((set, s)) => return Ok((set, s, DegradationRung::Full)),
        Err(e) => e,
    };
    // Rung 1 — drop re-execution reservations (only meaningful when the
    // source contracted any).
    if nominal.iter().any(|t| t.reexecutions > 0) {
        let relaxed: Vec<CoordTask> = nominal
            .iter()
            .cloned()
            .map(|t| t.with_reexecutions(0))
            .collect();
        match attempt(relaxed)? {
            Ok((set, s)) => return Ok((set, s, DegradationRung::NoReexecution)),
            Err(e) => last = e,
        }
    }
    // Rung 2 — degraded-mode deadlines where declared (re-executions
    // stay dropped: the degraded mode is the last resort before
    // reporting the system unschedulable).
    if model.tasks.iter().any(|t| t.degraded_deadline.is_some()) {
        let degraded: Vec<CoordTask> = nominal
            .iter()
            .cloned()
            .map(|mut t| {
                t.reexecutions = 0;
                if let Some(d) = model.task(&t.name).and_then(|spec| spec.degraded_deadline) {
                    t.deadline_us = Some(d.as_us());
                }
                t
            })
            .collect();
        match attempt(degraded)? {
            Ok((set, s)) => return Ok((set, s, DegradationRung::DegradedDeadline)),
            Err(e) => last = e,
        }
    }
    Err(WorkflowError::Unschedulable(last))
}

/// The Fig. 1 toolchain driver.
#[derive(Debug, Clone)]
pub struct PredictableWorkflow {
    config: WorkflowConfig,
}

impl PredictableWorkflow {
    /// Create a workflow for the given target configuration.
    pub fn new(config: WorkflowConfig) -> PredictableWorkflow {
        PredictableWorkflow { config }
    }

    /// Run the full workflow on annotated Mini-C source, on the
    /// process-wide pool.
    ///
    /// # Errors
    /// See [`WorkflowError`]; every stage reports its own failure class so
    /// the developer knows which contract or analysis to fix.
    pub fn run(&self, source: &str) -> Result<PredictableOutcome, WorkflowError> {
        self.run_on(minipool::global(), source)
    }

    /// Run the full workflow over many independent sources, fanning the
    /// programs across the process-wide pool (each gets a slice of the
    /// remaining width for its own searches). With
    /// [`WorkflowConfig::store_dir`] set, all programs — and later
    /// reruns — share one persistent evaluation store. One program's
    /// failure does not abort its batch mates: results come back
    /// per-source, in input order.
    pub fn run_many(&self, sources: &[&str]) -> Vec<Result<PredictableOutcome, WorkflowError>> {
        self.run_many_on(minipool::global(), sources)
    }

    /// [`PredictableWorkflow::run_many`] on an explicit pool.
    pub fn run_many_on(
        &self,
        pool: &minipool::Pool,
        sources: &[&str],
    ) -> Vec<Result<PredictableOutcome, WorkflowError>> {
        let inner = pool.split_across(sources.len());
        pool.par_map(sources, |_, source| self.run_on(&inner, source))
    }

    /// [`PredictableWorkflow::run`] on an explicit pool.
    ///
    /// # Errors
    /// See [`PredictableWorkflow::run`].
    pub fn run_on(
        &self,
        pool: &minipool::Pool,
        source: &str,
    ) -> Result<PredictableOutcome, WorkflowError> {
        let cfg = &self.config;

        // 1. Front-end + CSL extraction.
        let ast = parse_and_check(source)?;
        let model = extract_model(&ast)?;
        if model.tasks.is_empty() {
            return Err(WorkflowError::NoTasks);
        }
        let mut ir = lower_program(&ast);

        // 2. SecurityOptimiser: ladderise secret-guarded code of secure
        //    tasks before any variant is generated.
        let mut ladder_reports: HashMap<String, LadderReport> = HashMap::new();
        for task in &model.tasks {
            if task.security != Some(SecurityReq::ConstantTime) {
                continue;
            }
            let secrets: std::collections::HashSet<String> = task.secrets.iter().cloned().collect();
            let f = ir
                .function_mut(&task.function)
                .expect("CSL extraction guarantees the function exists");
            let report = ladderise(f, &secrets);
            if !report.fully_hardened() {
                return Err(WorkflowError::ResidualLeakRisk {
                    task: task.name.clone(),
                    report,
                });
            }
            ladder_reports.insert(task.name.clone(), report);
        }

        // 3. Multi-criteria compilation: a Pareto front per task. The
        //    searches are independent (per-task seeds, shared read-only
        //    IR and models), so they fan out over the global pool; each
        //    search gets a slice of the remaining width for its own
        //    genome batches. Results come back in task-index order, so
        //    the outcome is identical to the sequential loop. All fronts
        //    share one evaluation cache over the module: different tasks
        //    probe largely the same configurations, so a configuration
        //    any task compiled is free for every other task (per-entry
        //    once-locks keep the sharing race-free and deterministic).
        //    Each search is seeded with the configured catalogue
        //    pipeline's genome (an app name selects the tuned per-app
        //    pipeline), so the FPA starts from the tuned point instead
        //    of the genome-space corners whenever it is representable.
        let default_pipeline = cfg
            .pipelines
            .resolve(&cfg.default_pipeline)
            .map_err(|e| WorkflowError::Compile(format!("default pipeline: {e}")))?;
        let default = CompilerConfig {
            pipeline: default_pipeline,
            ..CompilerConfig::balanced()
        };
        let seeds: Vec<Vec<f64>> = default.to_genome().into_iter().collect();
        let inner = pool.split_across(model.tasks.len());
        let disk =
            match &cfg.store_dir {
                Some(dir) => Some(DiskStore::open(dir).map_err(|e| {
                    WorkflowError::Compile(format!("evaluation store `{dir}`: {e}"))
                })?),
                None => None,
            };
        let cache = match &disk {
            Some(disk) => EvalCache::with_store(&ir, &cfg.cycle_model, &cfg.energy_model, disk),
            None => EvalCache::new(&ir, &cfg.cycle_model, &cfg.energy_model),
        };
        let fronts = pool.par_map(&model.tasks, |i, task| {
            pareto_search_with_cache_seeded(
                &inner,
                &cache,
                &task.function,
                cfg.fpa,
                cfg.seed.wrapping_add(i as u64),
                &seeds,
            )
        });
        let mut search = SearchStats {
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            disk_hits: cache.disk_hits(),
            disk_misses: cache.disk_misses(),
            ..SearchStats::default()
        };
        let mut variants: HashMap<String, Vec<TaskVariant>> = HashMap::new();
        for (task, front) in model.tasks.iter().zip(fronts) {
            search.evaluations += front.stats.evaluations;
            search.generations += front.stats.generations;
            if front.variants.is_empty() {
                return Err(WorkflowError::Compile(format!(
                    "no analysable variant for task `{}` (unbounded loops?)",
                    task.name
                )));
            }
            variants.insert(task.name.clone(), front.variants);
        }

        // 3b. Opt-in measurement: every front variant simulated on the
        //     pre-decoded engine over deterministic seeded inputs, so the
        //     outcome carries observed-vs-IPET evidence next to the
        //     static bounds. Tasks with array parameters are skipped (no
        //     scalar input vectors can drive them).
        let mut measurements: Vec<TaskMeasurement> = Vec::new();
        if let Some(mc) = cfg.measure {
            for (ti, task) in model.tasks.iter().enumerate() {
                let func = ast.function(&task.function).expect("function exists");
                if func.params.iter().any(|p| p.is_array) {
                    continue;
                }
                let arg_count = func.params.len();
                let mut per_variant = Vec::new();
                for (vi, v) in variants[&task.name].iter().enumerate() {
                    let decoded =
                        DecodedProgram::with_models(&v.program, &cfg.cycle_model, &cfg.truth)
                            .map_err(|e| {
                                WorkflowError::Compile(format!(
                                    "measure: task `{}` variant {vi}: {e}",
                                    task.name
                                ))
                            })?;
                    let inputs = seeded_inputs(
                        cfg.seed ^ 0x3EA5_0000 ^ (((ti as u64) << 32) | vi as u64),
                        mc.runs,
                        arg_count,
                        mc.input_lo,
                        mc.input_hi,
                    );
                    let mut observed_cycles = 0u64;
                    let mut observed_energy = 0.0f64;
                    // Explicit watchdog: the variant's own IPET bound.
                    // By IPET soundness no run may exceed it, so a
                    // `CycleLimit` trap here is a genuine analysis or
                    // simulator defect surfacing — not a tuning knob.
                    for (run, r) in simulate_batch_budgeted(
                        pool,
                        &decoded,
                        &task.function,
                        &inputs,
                        v.metrics.wcet_cycles,
                    )
                    .into_iter()
                    .enumerate()
                    {
                        let r = r.map_err(|e| {
                            WorkflowError::Compile(format!(
                                "measure: task `{}` variant {vi} run {run}: {e}",
                                task.name
                            ))
                        })?;
                        observed_cycles = observed_cycles.max(r.cycles);
                        observed_energy = observed_energy.max(r.energy_pj);
                    }
                    let ipet = v.metrics.wcet_cycles;
                    per_variant.push(VariantMeasurement {
                        variant: vi,
                        ipet_cycles: ipet,
                        observed_max_cycles: observed_cycles,
                        observed_over_ipet: observed_cycles as f64 / ipet as f64,
                        observed_max_energy_pj: observed_energy,
                        runs: inputs.len(),
                    });
                }
                measurements.push(TaskMeasurement {
                    task: task.name.clone(),
                    function: task.function.clone(),
                    variants: per_variant,
                });
            }
        }

        // 4. Coordination: multi-version selection under the deadlines,
        //    with re-execution slack reserved for `reliability(k)` tasks
        //    and the degradation ladder as the schedulability fallback.
        let coord_tasks: Vec<CoordTask> = model
            .tasks
            .iter()
            .map(|t| {
                // Step 2 ladderised every `security(ct)` task's function
                // before the searches (erroring on residual leaks), so
                // each of its variants is a hardened build: rung 1.
                let level = if t.security == Some(SecurityReq::ConstantTime) {
                    1
                } else {
                    0
                };
                let options = variants[&t.name]
                    .iter()
                    .enumerate()
                    .map(|(vi, v)| ExecOption {
                        label: format!("v{vi}"),
                        core: "cpu0".into(),
                        time_us: v.metrics.wcet_cycles as f64 / cfg.clock_mhz,
                        energy_uj: v.metrics.wcec_pj / 1e6,
                        security_level: level,
                    })
                    .collect();
                let mut ct = CoordTask::new(t.name.clone(), options);
                ct.after = t.after.clone();
                ct.deadline_us = t.deadline.map(|d| d.as_us());
                ct.reexecutions = t.reexecutions;
                ct.security_floor = t.security_floor;
                ct
            })
            .collect();
        let (_, provisional, _) = schedule_with_degradation(&model, &coord_tasks)?;

        // 5. Final build: every task keeps its selected variant's config.
        let mut chosen: HashMap<String, CompilerConfig> = HashMap::new();
        let mut chosen_by_task: HashMap<String, CompilerConfig> = HashMap::new();
        for task in &model.tasks {
            let entry = provisional.entry(&task.name).expect("scheduled");
            let vi: usize = entry
                .option
                .trim_start_matches('v')
                .parse()
                .expect("vN label");
            let config = variants[&task.name][vi].config.clone();
            chosen.insert(task.function.clone(), config.clone());
            chosen_by_task.insert(task.name.clone(), config);
        }
        // Non-task functions build under the configured catalogue
        // pipeline (a name like "o2"/"camera_pill", or a literal pass
        // list) with the balanced codegen knobs — the same `default`
        // configuration whose genome seeded the searches in step 3.
        // The per-function pipelines of the final build fan out over
        // the pool (unique bodies deduplicated; byte-identical at any
        // width).
        let program = compile_module_per_function_on(pool, &ir, &chosen, &default)
            .map_err(|e| WorkflowError::Compile(e.to_string()))?;

        // 6. Re-analyse the final binary (callees may now differ from the
        //    per-variant estimates) and re-validate the schedule with the
        //    final numbers. The IPET bounds come through the search
        //    cache's per-function memo: every function of the final
        //    build whose compiled form already appeared in some searched
        //    variant is a replay, not a re-analysis.
        let memo = cache.analysis_memo();
        let wcet = analyze_program_cached(&program, &cfg.cycle_model, &memo.wcet)
            .map_err(|e| WorkflowError::Compile(e.to_string()))?;
        let energy = analyze_program_energy_cached(
            &program,
            &cfg.energy_model,
            &cfg.cycle_model,
            &memo.energy,
        )
        .map_err(|e| WorkflowError::Compile(e.to_string()))?;
        let final_tasks: Vec<CoordTask> = model
            .tasks
            .iter()
            .map(|t| {
                let cycles = wcet.wcet_cycles(&t.function).expect("analysed");
                let pj = energy.wcec_pj(&t.function).expect("analysed");
                let level = if t.security == Some(SecurityReq::ConstantTime) {
                    1
                } else {
                    0
                };
                let mut ct = CoordTask::new(
                    t.name.clone(),
                    vec![ExecOption {
                        label: "final".into(),
                        core: "cpu0".into(),
                        time_us: cycles as f64 / cfg.clock_mhz,
                        energy_uj: pj / 1e6,
                        security_level: level,
                    }],
                );
                ct.after = t.after.clone();
                ct.deadline_us = t.deadline.map(|d| d.as_us());
                ct.reexecutions = t.reexecutions;
                ct.security_floor = t.security_floor;
                ct
            })
            .collect();
        let (final_set, schedule, rung) = schedule_with_degradation(&model, &final_tasks)?;

        // 7. SecurityAnalyser: measured leakage of secure tasks on the
        //    final binary.
        let mut leakage_reports: HashMap<String, LeakageReport> = HashMap::new();
        for task in &model.tasks {
            if task.security != Some(SecurityReq::ConstantTime) {
                continue;
            }
            let func = ast.function(&task.function).expect("function exists");
            if func.params.iter().any(|p| p.is_array) {
                return Err(WorkflowError::Security(format!(
                    "task `{}`: leakage assessment requires scalar parameters",
                    task.name
                )));
            }
            let arg_count = func.params.len();
            let secret_idx = func
                .params
                .iter()
                .position(|p| task.secrets.contains(&p.name))
                .ok_or_else(|| {
                    WorkflowError::Security(format!(
                        "task `{}` has a security requirement but no secret parameter",
                        task.name
                    ))
                })?;
            let report = assess_leakage(
                &program,
                &task.function,
                arg_count.max(1),
                SecretSpec {
                    arg_index: secret_idx,
                    class0: 0x0F0F_0F0F,
                    class1: -0x6543_2110,
                },
                cfg.leakage_traces,
                0..4096,
                cfg.seed ^ 0x5EC0_0001,
            )
            .map_err(|e| WorkflowError::Security(e.to_string()))?;
            leakage_reports.insert(task.name.clone(), report);
        }

        // 8. Contract system: prove every budget, emit the certificate.
        //    The scheduled finish counts the re-execution slack — the
        //    deadline claim holds even when every recovery run executes —
        //    and each task's evidence records the degradation rung the
        //    coordinator settled on. At rung 2 the proof runs against
        //    the effective model (degraded deadlines substituted), so
        //    the certificate certifies the contract actually deployed.
        let mut evidence: HashMap<String, TaskEvidence> = HashMap::new();
        for task in &model.tasks {
            let cycles = wcet.wcet_cycles(&task.function).expect("analysed");
            let pj = energy.wcec_pj(&task.function).expect("analysed");
            let finish = schedule
                .entry(&task.name)
                .map(|e| e.finish_us + e.recovery_us);
            evidence.insert(
                task.name.clone(),
                TaskEvidence {
                    wcet_us: cycles as f64 / cfg.clock_mhz,
                    wcec_pj: pj,
                    residual_branches: ladder_reports.get(&task.name).map(|r| r.residual),
                    leaks: leakage_reports.get(&task.name).map(|r| r.leaks()),
                    finish_us: finish,
                    degradation_rung: rung.as_u8(),
                },
            );
        }
        let effective_model = if rung == DegradationRung::DegradedDeadline {
            let mut m = model.clone();
            for t in &mut m.tasks {
                if let Some(d) = t.degraded_deadline {
                    t.deadline = Some(d);
                }
            }
            m
        } else {
            model.clone()
        };
        let certificate = prove("teamplay-system", &effective_model, &evidence)
            .map_err(WorkflowError::Contract)?;

        // 9. Coordination glue, recording each task's selected pipeline
        //    so the deployed runtime carries its variants' provenance.
        let task_pipelines: BTreeMap<String, String> = chosen_by_task
            .iter()
            .map(|(task, config)| (task.clone(), config.pipeline.to_string()))
            .collect();
        let glue = generate_parallel_glue_with_pipelines(&final_set, &schedule, &task_pipelines)
            .map_err(WorkflowError::Glue)?;

        let tasks = model
            .tasks
            .iter()
            .map(|t| {
                let ev = &evidence[&t.name];
                TaskReport {
                    name: t.name.clone(),
                    function: t.function.clone(),
                    selected_config: chosen_by_task[&t.name].clone(),
                    variants_offered: variants[&t.name].len(),
                    wcet_us: ev.wcet_us,
                    wcec_uj: ev.wcec_pj / 1e6,
                    ladder: ladder_reports.get(&t.name).copied(),
                    leakage: leakage_reports.get(&t.name).copied(),
                }
            })
            .collect();

        Ok(PredictableOutcome {
            program,
            model,
            schedule,
            certificate,
            evidence,
            tasks,
            glue,
            degradation: rung,
            search,
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_contracts::verify_certificate;

    fn pill_workflow() -> PredictableWorkflow {
        let mut cfg = WorkflowConfig::pg32();
        cfg.fpa = FpaConfig::tiny();
        cfg.leakage_traces = 24;
        PredictableWorkflow::new(cfg)
    }

    #[test]
    fn camera_pill_pipeline_certifies_end_to_end() {
        let outcome = pill_workflow()
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("workflow succeeds");
        assert_eq!(outcome.tasks.len(), 4);
        // The certificate re-verifies against the emitted evidence.
        verify_certificate(&outcome.certificate, &outcome.evidence).expect("certificate checks");
        // Secure task was hardened and measured clean.
        let encrypt = outcome
            .tasks
            .iter()
            .find(|t| t.name == "encrypt")
            .expect("encrypt");
        assert!(encrypt.ladder.expect("hardened").fully_hardened());
        assert!(!encrypt.leakage.expect("measured").leaks());
        // Glue mentions every task, and records its selected pipeline.
        for t in &outcome.tasks {
            assert!(
                outcome.glue.contains(&format!("task_{}", t.name)),
                "{}",
                outcome.glue
            );
            assert!(
                outcome.glue.contains(&format!(
                    "tp_set_pipeline(\"{}\");",
                    t.selected_config.pipeline
                )),
                "pipeline of `{}` missing from glue:\n{}",
                t.name,
                outcome.glue
            );
        }
        // Schedule respects the pipeline deadline.
        assert!(outcome.schedule.makespan_us <= 40_000.0);
        // The frame has ample slack, so the full nominal contract holds:
        // no degradation rung was taken, and every task's evidence says so.
        assert_eq!(outcome.degradation, DegradationRung::Full);
        for ev in outcome.evidence.values() {
            assert_eq!(ev.degradation_rung, 0);
        }
        // `reliability(1)` on encrypt reserved one re-execution slot.
        let encrypt_entry = outcome.schedule.entry("encrypt").expect("scheduled");
        assert!(encrypt_entry.recovery_us > 0.0);
    }

    #[test]
    fn per_task_fronts_share_one_eval_cache() {
        let outcome = pill_workflow()
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("workflow succeeds");
        let s = &outcome.search;
        // Four tasks, each a full FPA budget.
        let fpa = FpaConfig::tiny();
        assert_eq!(
            s.evaluations,
            4 * fpa.population * (1 + fpa.iterations),
            "{s:?}"
        );
        assert_eq!(s.generations, 4 * fpa.iterations, "{s:?}");
        // Sharing compiles strictly less than the evaluation budget.
        assert!(s.cache_misses < s.evaluations, "{s:?}");
        // Probes from the searches plus one per reconstructed variant.
        let offered: usize = outcome.tasks.iter().map(|t| t.variants_offered).sum();
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.evaluations + offered,
            "{s:?}"
        );
    }

    #[test]
    fn shared_cache_compiles_less_than_per_task_caches() {
        use teamplay_compiler::{pareto_search_with_cache, EvalCache};
        // The ROADMAP follow-up, measured: four tasks of one module
        // searched against one shared cache compile strictly fewer
        // distinct configurations than the same searches with a cache
        // each — tasks revisit each other's configurations.
        let ir =
            teamplay_minic::compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("front-end");
        let cfg = WorkflowConfig::pg32();
        let pool = minipool::global();
        let shared = EvalCache::new(&ir, &cfg.cycle_model, &cfg.energy_model);
        let mut individual_misses = 0usize;
        for (i, func) in ["capture", "compress", "encrypt", "transmit"]
            .iter()
            .enumerate()
        {
            let seed = cfg.seed.wrapping_add(i as u64);
            let own = EvalCache::new(&ir, &cfg.cycle_model, &cfg.energy_model);
            pareto_search_with_cache(pool, &own, func, FpaConfig::tiny(), seed);
            individual_misses += own.misses();
            pareto_search_with_cache(pool, &shared, func, FpaConfig::tiny(), seed);
        }
        assert!(
            shared.misses() < individual_misses,
            "shared {} vs individual {}",
            shared.misses(),
            individual_misses
        );
    }

    #[test]
    fn seeded_search_covers_the_tuned_pipeline_at_generation_zero() {
        use teamplay_compiler::{pareto_search_with_cache_seeded, EvalCache};
        // The ROADMAP follow-up from PR 3: seeding the FPA with the
        // app's recommended pipeline genome makes the generation-0 front
        // weakly dominate the tuned point — the search starts *at* the
        // tuned configuration rather than having to rediscover it.
        let ir =
            teamplay_minic::compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("front-end");
        let cfg = WorkflowConfig::pg32();
        let tuned = CompilerConfig {
            pipeline: cfg.pipelines.resolve("camera_pill").expect("registered"),
            ..CompilerConfig::balanced()
        };
        let genome = tuned
            .to_genome()
            .expect("camera_pill pipeline is representable");
        let cache = EvalCache::new(&ir, &cfg.cycle_model, &cfg.energy_model);
        let tuned_metrics = *cache
            .evaluate(&tuned)
            .expect("compiles")
            .1
            .of("compress")
            .expect("task");
        let gen0 = FpaConfig {
            iterations: 0,
            ..FpaConfig::tiny()
        };
        let front = pareto_search_with_cache_seeded(
            minipool::global(),
            &cache,
            "compress",
            gen0,
            cfg.seed,
            &[genome],
        );
        assert!(
            front.variants.iter().any(|v| {
                v.metrics.wcet_cycles <= tuned_metrics.wcet_cycles
                    && v.metrics.wcec_pj <= tuned_metrics.wcec_pj
                    && v.metrics.code_halfwords <= tuned_metrics.code_halfwords
            }),
            "generation-0 front {:?} misses the tuned point {tuned_metrics:?}",
            front.variants.iter().map(|v| v.metrics).collect::<Vec<_>>()
        );
    }

    #[test]
    fn default_pipeline_resolves_through_the_catalog() {
        // A catalogue name and a literal pipeline string both work; an
        // unresolvable spec is a compile-stage error.
        let mut cfg = WorkflowConfig::pg32();
        cfg.fpa = FpaConfig::tiny();
        cfg.leakage_traces = 24;
        cfg.default_pipeline = "camera_pill".to_string();
        PredictableWorkflow::new(cfg.clone())
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("app-named default pipeline works");
        cfg.default_pipeline = "const_fold,dce".to_string();
        PredictableWorkflow::new(cfg.clone())
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("literal default pipeline works");
        cfg.default_pipeline = "not_a_pass_or_name".to_string();
        match PredictableWorkflow::new(cfg).run(teamplay_apps::camera_pill::SOURCE) {
            Err(WorkflowError::Compile(msg)) => {
                assert!(msg.contains("default pipeline"), "{msg}")
            }
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn measure_step_reports_observed_within_ipet_per_variant() {
        let mut cfg = WorkflowConfig::pg32();
        cfg.fpa = FpaConfig::tiny();
        cfg.leakage_traces = 24;
        cfg.measure = Some(MeasureConfig::standard());
        let outcome = PredictableWorkflow::new(cfg)
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("workflow succeeds");
        // All four pill tasks take scalar (or no) parameters, so every
        // task's whole front is measured.
        assert_eq!(outcome.measurements.len(), outcome.tasks.len());
        for (tm, report) in outcome.measurements.iter().zip(&outcome.tasks) {
            assert_eq!(tm.task, report.name);
            assert_eq!(tm.variants.len(), report.variants_offered);
            for vm in &tm.variants {
                assert!(
                    vm.observed_max_cycles <= vm.ipet_cycles,
                    "task `{}` variant {}: observed {} over IPET {}",
                    tm.task,
                    vm.variant,
                    vm.observed_max_cycles,
                    vm.ipet_cycles
                );
                assert!(vm.observed_over_ipet > 0.0 && vm.observed_over_ipet <= 1.0);
                assert!(vm.observed_max_energy_pj > 0.0);
                assert_eq!(vm.runs, MeasureConfig::standard().runs);
            }
        }
        // Off by default: the same workflow without the flag reports
        // nothing (and remains deterministic either way).
        let mut off = WorkflowConfig::pg32();
        off.fpa = FpaConfig::tiny();
        off.leakage_traces = 24;
        let silent = PredictableWorkflow::new(off)
            .run(teamplay_apps::camera_pill::SOURCE)
            .expect("workflow succeeds");
        assert!(silent.measurements.is_empty());
        assert_eq!(outcome.certificate, silent.certificate);
    }

    #[test]
    fn missing_task_annotations_are_rejected() {
        let err = pill_workflow().run("int f() { return 0; }").unwrap_err();
        assert!(matches!(err, WorkflowError::NoTasks));
    }

    #[test]
    fn impossible_budget_fails_the_contract_with_feedback() {
        let src = r#"
            /*@ task busy period(10ms) deadline(10ms) wcet_budget(1us) energy_budget(1pJ) @*/
            void busy() {
                int s = 0;
                for (int i = 0; i < 1000; i = i + 1) { s = s + i; }
                __out(1, s);
                return;
            }
        "#;
        match pill_workflow().run(src) {
            Err(WorkflowError::Contract(e)) => {
                assert!(!e.violations.is_empty());
                let text = e.to_string();
                assert!(text.contains("busy"), "{text}");
            }
            other => panic!("expected contract failure, got {other:?}"),
        }
    }

    #[test]
    fn unschedulable_deadline_is_detected() {
        let src = r#"
            /*@ task heavy period(1ms) deadline(5us) @*/
            void heavy() {
                int s = 0;
                for (int i = 0; i < 5000; i = i + 1) { s = s + i * i; }
                __out(1, s);
                return;
            }
        "#;
        match pill_workflow().run(src) {
            Err(WorkflowError::Unschedulable(_)) => {}
            other => panic!("expected unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_loops_are_reported_as_compile_failure() {
        let src = r#"
            /*@ task spin deadline(10ms) @*/
            void spin(int n) {
                int s = 0;
                while (n > 0) { n = n - 1; s = s + 1; }
                __out(1, s);
                return;
            }
        "#;
        match pill_workflow().run(src) {
            Err(WorkflowError::Compile(msg)) => assert!(msg.contains("spin"), "{msg}"),
            other => panic!("expected compile failure, got {other:?}"),
        }
    }

    #[test]
    fn secure_task_with_unconvertible_branching_is_rejected() {
        let src = r#"
            /*@ task leaky security(ct) secret(k) deadline(10ms) @*/
            void leaky(int k) {
                int s = 0;
                /*@ loop bound(64) @*/
                while (k > 0) { k = k - 1; s = s + 1; }
                __out(1, s);
                return;
            }
        "#;
        match pill_workflow().run(src) {
            Err(WorkflowError::ResidualLeakRisk { task, report }) => {
                assert_eq!(task, "leaky");
                assert!(report.residual >= 1);
            }
            other => panic!("expected residual risk, got {other:?}"),
        }
    }

    #[test]
    fn workflow_is_deterministic() {
        let src = teamplay_apps::camera_pill::SOURCE;
        let a = pill_workflow().run(src).expect("run a");
        let b = pill_workflow().run(src).expect("run b");
        assert_eq!(a.certificate, b.certificate);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn infeasible_reliability_degrades_to_rung_one() {
        // k = 100000 re-executions cannot fit any 10 ms deadline, but the
        // task itself schedules comfortably once the reservations are
        // dropped: the ladder lands on rung 1 and records it everywhere.
        let src = r#"
            /*@ task heavy period(20ms) deadline(10ms) reliability(100000) @*/
            void heavy() {
                int s = 0;
                for (int i = 0; i < 5000; i = i + 1) { s = s + i * i; }
                __out(1, s);
                return;
            }
        "#;
        let outcome = pill_workflow().run(src).expect("rung 1 schedules");
        assert_eq!(outcome.degradation, DegradationRung::NoReexecution);
        for ev in outcome.evidence.values() {
            assert_eq!(ev.degradation_rung, 1);
        }
        // The reservations really were dropped, and the relaxed schedule
        // still proves the contract.
        let entry = outcome.schedule.entry("heavy").expect("scheduled");
        assert_eq!(entry.recovery_us.to_bits(), 0.0f64.to_bits());
        verify_certificate(&outcome.certificate, &outcome.evidence).expect("certificate checks");
    }

    #[test]
    fn degraded_deadline_rescues_an_unschedulable_task() {
        // The nominal 5 µs deadline is impossible (same workload as
        // `unschedulable_deadline_is_detected`), but the declared
        // degraded-mode deadline of 10 ms is generous: the ladder skips
        // rung 1 (no re-executions declared) and settles on rung 2.
        let src = r#"
            /*@ task heavy period(20ms) deadline(5us) degraded_deadline(10ms) @*/
            void heavy() {
                int s = 0;
                for (int i = 0; i < 5000; i = i + 1) { s = s + i * i; }
                __out(1, s);
                return;
            }
        "#;
        let outcome = pill_workflow().run(src).expect("rung 2 schedules");
        assert_eq!(outcome.degradation, DegradationRung::DegradedDeadline);
        for ev in outcome.evidence.values() {
            assert_eq!(ev.degradation_rung, 2);
        }
        // The certificate was proven against the substituted deadline and
        // re-verifies against the emitted evidence.
        verify_certificate(&outcome.certificate, &outcome.evidence).expect("certificate checks");
        // The schedule misses 5 µs but meets the degraded 10 ms deadline.
        let entry = outcome.schedule.entry("heavy").expect("scheduled");
        assert!(entry.reserved_until_us() > 5.0);
        assert!(entry.reserved_until_us() <= 10_000.0);
    }

    #[test]
    fn ladder_exhaustion_still_reports_unschedulable() {
        // Even the degraded-mode deadline is impossible: the ladder walks
        // every rung and surfaces the final scheduling error.
        let src = r#"
            /*@ task heavy period(20ms) deadline(5us) reliability(1) degraded_deadline(6us) @*/
            void heavy() {
                int s = 0;
                for (int i = 0; i < 5000; i = i + 1) { s = s + i * i; }
                __out(1, s);
                return;
            }
        "#;
        match pill_workflow().run(src) {
            Err(WorkflowError::Unschedulable(_)) => {}
            other => panic!("expected unschedulable, got {other:?}"),
        }
    }
}
