//! # teamplay — the integrated TeamPlay toolchain
//!
//! The top of the reproduction: the two end-to-end workflows of the DATE
//! 2023 paper, wiring every subsystem together exactly as Figs. 1 and 2
//! draw them.
//!
//! * [`predictable`] — the workflow for predictable architectures
//!   (Fig. 1): annotated Mini-C → CSL extraction → ladderisation of
//!   secret-guarded code → multi-criteria compilation (FPA Pareto search
//!   with WCET/energy analyser plug-ins) → multi-version selection and
//!   schedulability by the coordination layer → leakage assessment →
//!   contract proof with a verifiable [`teamplay_contracts::Certificate`]
//!   → glue code. The output is a "certified, coordinated binary".
//! * [`complex`] — the workflow for complex architectures (Fig. 2):
//!   CSL-style task structure → sequential instrumented build → dynamic
//!   profiling on the platform simulator → multi-version energy-aware
//!   scheduling → parallel glue code.
//!
//! ```no_run
//! use teamplay::predictable::{PredictableWorkflow, WorkflowConfig};
//!
//! let source = r#"
//!     /*@ task blink period(10ms) deadline(10ms) wcet_budget(1ms) energy_budget(200uJ) @*/
//!     void blink() { __out(1, 1); return; }
//! "#;
//! let outcome = PredictableWorkflow::new(WorkflowConfig::pg32()).run(source)?;
//! println!("{}", outcome.certificate.to_json());
//! # Ok::<(), teamplay::predictable::WorkflowError>(())
//! ```

pub mod advisor;
pub mod complex;
pub mod predictable;

pub use advisor::{advise, Advice, Confidence};
pub use complex::{ComplexOutcome, ComplexWorkflow};
pub use predictable::{
    DegradationRung, MeasureConfig, PredictableOutcome, PredictableWorkflow, TaskMeasurement,
    TaskReport, VariantMeasurement, WorkflowConfig, WorkflowError,
};
