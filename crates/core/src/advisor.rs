//! Developer feedback for failed contracts — the Transparency Challenge.
//!
//! Paper Section III-A: "Clear, human-understandable feedback needs to be
//! provided in order to allow the developer to take actions should the
//! application code fail to satisfy some of the constraints." The advisor
//! turns a [`WorkflowError`] into concrete, ranked suggestions: which
//! knob to turn, which annotation to add, which budget is closest to
//! feasible.

use crate::predictable::WorkflowError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How actionable a suggestion is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Confidence {
    /// Might help, worth trying.
    Possible,
    /// Directly addresses the failure's cause.
    Direct,
}

/// One actionable suggestion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Advice {
    /// The affected task (empty for toolchain-wide advice).
    pub task: String,
    /// What to do, in imperative form.
    pub action: String,
    /// How confident the advisor is.
    pub confidence: Confidence,
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.confidence {
            Confidence::Direct => "!",
            Confidence::Possible => "?",
        };
        if self.task.is_empty() {
            write!(f, "[{tag}] {}", self.action)
        } else {
            write!(f, "[{tag}] {}: {}", self.task, self.action)
        }
    }
}

/// Produce ranked advice for a failed workflow run. Direct advice comes
/// first. An empty result means the failure needs human investigation
/// (e.g. an internal compile error).
pub fn advise(error: &WorkflowError) -> Vec<Advice> {
    let mut advice = Vec::new();
    match error {
        WorkflowError::NoTasks => {
            advice.push(Advice {
                task: String::new(),
                action: "annotate at least one function with `/*@ task <name> ... @*/`".into(),
                confidence: Confidence::Direct,
            });
        }
        WorkflowError::Frontend(e) => {
            advice.push(Advice {
                task: String::new(),
                action: format!("fix the source error first: {e}"),
                confidence: Confidence::Direct,
            });
        }
        WorkflowError::Csl(e) => {
            advice.push(Advice {
                task: String::new(),
                action: format!("fix the contract annotation: {e}"),
                confidence: Confidence::Direct,
            });
        }
        WorkflowError::ResidualLeakRisk { task, report } => {
            advice.push(Advice {
                task: task.clone(),
                action: format!(
                    "{} secret-dependent branch(es) could not be if-converted; rewrite \
                     secret-guarded loops with fixed trip counts and keep branch arms free \
                     of stores/calls so ladderisation applies",
                    report.residual
                ),
                confidence: Confidence::Direct,
            });
            advice.push(Advice {
                task: task.clone(),
                action: "alternatively drop `security(ct)` if the data is not actually secret"
                    .into(),
                confidence: Confidence::Possible,
            });
        }
        WorkflowError::Compile(msg) => {
            if msg.contains("loop") || msg.contains("bound") || msg.contains("variant") {
                advice.push(Advice {
                    task: String::new(),
                    action: "add `/*@ loop bound(n) @*/` to every data-dependent loop; only \
                             counted loops are inferred automatically"
                        .into(),
                    confidence: Confidence::Direct,
                });
            }
            if msg.contains("recursion") {
                advice.push(Advice {
                    task: String::new(),
                    action: "remove recursion — the static analyses require a call tree".into(),
                    confidence: Confidence::Direct,
                });
            }
            if msg.contains("parameters") {
                advice.push(Advice {
                    task: String::new(),
                    action: "reduce the function to at most 6 parameters (pass arrays instead)"
                        .into(),
                    confidence: Confidence::Direct,
                });
            }
        }
        WorkflowError::Unschedulable(e) => {
            advice.push(Advice {
                task: String::new(),
                action: format!(
                    "the fastest variants still miss the deadline ({e}); split long tasks, \
                     relax the `deadline(...)` clause, or raise the core clock"
                ),
                confidence: Confidence::Direct,
            });
            advice.push(Advice {
                task: String::new(),
                action: "declare a fallback contract — `degraded_deadline(t)` lets the \
                         degradation ladder relax the deadline instead of failing, and the \
                         ladder drops `reliability(k)` reservations before giving up"
                    .into(),
                confidence: Confidence::Possible,
            });
        }
        WorkflowError::Glue(e) => {
            advice.push(Advice {
                task: String::new(),
                action: format!(
                    "internal schedule/task-set mismatch at glue generation ({e}); this is a \
                     toolchain defect — report it with the failing source"
                ),
                confidence: Confidence::Direct,
            });
        }
        WorkflowError::Security(msg) => {
            advice.push(Advice {
                task: String::new(),
                action: format!("make the secure task measurable: {msg}"),
                confidence: Confidence::Direct,
            });
        }
        WorkflowError::Contract(e) => {
            for v in &e.violations {
                let over = if v.budget > 0.0 {
                    format!("{:.0} % over budget", (v.analysed / v.budget - 1.0) * 100.0)
                } else {
                    "over budget".to_string()
                };
                let knob = if v.property.contains("WCET") || v.property.contains("time") {
                    "try a faster variant (more inlining / register pinning) or relax the \
                     `wcet_budget`"
                } else if v.property.contains("energy") {
                    "try the energy-saver configuration (shift-add multiplies, pinning) or \
                     relax the `energy_budget`"
                } else {
                    "harden the task or relax the contract"
                };
                advice.push(Advice {
                    task: v.task.clone(),
                    action: format!("{}: {over} — {knob}", v.property),
                    confidence: Confidence::Direct,
                });
            }
            for t in &e.missing_evidence {
                advice.push(Advice {
                    task: t.clone(),
                    action: "no analysis evidence was produced; check earlier warnings".into(),
                    confidence: Confidence::Possible,
                });
            }
        }
    }
    advice.sort_by_key(|a| std::cmp::Reverse(a.confidence));
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictable::{PredictableWorkflow, WorkflowConfig};
    use teamplay_compiler::FpaConfig;

    fn quick() -> PredictableWorkflow {
        let mut cfg = WorkflowConfig::pg32();
        cfg.fpa = FpaConfig::tiny();
        PredictableWorkflow::new(cfg)
    }

    #[test]
    fn advises_on_missing_tasks() {
        let err = quick().run("int f() { return 0; }").unwrap_err();
        let advice = advise(&err);
        assert!(advice.iter().any(|a| a.action.contains("task")));
        assert_eq!(advice[0].confidence, Confidence::Direct);
    }

    #[test]
    fn advises_on_budget_violations_with_overrun_percent() {
        let src = r#"
            /*@ task busy deadline(10ms) wcet_budget(1us) @*/
            void busy() {
                int s = 0;
                for (int i = 0; i < 500; i = i + 1) { s = s + i; }
                __out(1, s);
                return;
            }
        "#;
        let err = quick().run(src).unwrap_err();
        let advice = advise(&err);
        assert!(!advice.is_empty());
        let text = advice
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("busy"), "{text}");
        assert!(text.contains("% over budget"), "{text}");
        assert!(text.contains("wcet_budget"), "{text}");
    }

    #[test]
    fn advises_on_unbounded_loops() {
        let src = r#"
            /*@ task spin deadline(10ms) @*/
            void spin(int n) {
                int s = 0;
                while (n > 0) { n = n - 1; s = s + 1; }
                __out(1, s);
                return;
            }
        "#;
        let err = quick().run(src).unwrap_err();
        let advice = advise(&err);
        assert!(
            advice.iter().any(|a| a.action.contains("loop bound")),
            "{advice:?}"
        );
    }

    #[test]
    fn advises_on_residual_leak_risk() {
        let src = r#"
            /*@ task leaky security(ct) secret(k) deadline(10ms) @*/
            void leaky(int k) {
                int s = 0;
                /*@ loop bound(64) @*/
                while (k > 0) { k = k - 1; s = s + 1; }
                __out(1, s);
                return;
            }
        "#;
        let err = quick().run(src).unwrap_err();
        let advice = advise(&err);
        assert!(advice
            .iter()
            .any(|a| a.task == "leaky" && a.action.contains("if-converted")));
        assert!(advice.iter().any(|a| a.confidence == Confidence::Possible));
    }

    #[test]
    fn advises_on_unschedulable_deadline() {
        let src = r#"
            /*@ task heavy deadline(5us) @*/
            void heavy() {
                int s = 0;
                for (int i = 0; i < 5000; i = i + 1) { s = s + i * i; }
                __out(1, s);
                return;
            }
        "#;
        let err = quick().run(src).unwrap_err();
        let advice = advise(&err);
        assert!(
            advice.iter().any(|a| a.action.contains("deadline")),
            "{advice:?}"
        );
    }

    #[test]
    fn display_formats_with_confidence_tags() {
        let a = Advice {
            task: "t".into(),
            action: "do the thing".into(),
            confidence: Confidence::Direct,
        };
        assert_eq!(a.to_string(), "[!] t: do the thing");
    }
}
