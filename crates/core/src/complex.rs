//! The TeamPlay workflow for complex architectures (paper Fig. 2).
//!
//! Complex platforms cannot be statically analysed, so the toolchain
//! first generates a *sequential* instrumented build, measures it with
//! the dynamic profiler, and only then lets the coordination layer map
//! the application onto the parallel platform using the measured
//! multi-version costs.

use serde::{Deserialize, Serialize};
use std::fmt;
use teamplay_coord::{
    generate_parallel_glue, generate_sequential_glue, schedule_energy_aware, CoordTask, Schedule,
    ScheduleError, TaskSet,
};
use teamplay_profiler::{exec_options_from_profile, profile_tasks, ProfileReport};
use teamplay_sim::{ComplexPlatform, WorkItem};

/// One task of a complex-platform application: a measured workload plus
/// its dependencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexTask {
    /// Task name.
    pub name: String,
    /// The workload the profiler measures.
    pub work: WorkItem,
    /// Names of tasks that must complete first.
    pub after: Vec<String>,
}

/// The Fig. 2 workflow driver.
#[derive(Debug, Clone)]
pub struct ComplexWorkflow {
    /// The platform to profile and schedule on.
    pub platform: ComplexPlatform,
    /// Profiling runs per (task, core, operating point).
    pub runs: usize,
    /// Safety margin applied to p95 execution times.
    pub margin: f64,
    /// Profiling seed (simulator jitter).
    pub seed: u64,
}

/// Outcome of the complex workflow.
#[derive(Debug, Clone)]
pub struct ComplexOutcome {
    /// First-pass sequential instrumentation harness.
    pub sequential_glue: String,
    /// The dynamic profile (PowProfiler output).
    pub profile: ProfileReport,
    /// The energy-aware schedule.
    pub schedule: Schedule,
    /// Second-pass parallel runtime glue.
    pub parallel_glue: String,
    /// Pipeline energy per frame (µJ).
    pub frame_energy_uj: f64,
}

/// Complex-workflow failures.
#[derive(Debug)]
pub enum ComplexError {
    /// Task-set construction failed (cycles, unknown cores…).
    TaskSet(String),
    /// No mapping meets the frame deadline.
    Unschedulable(ScheduleError),
    /// Glue generation found the schedule and task set inconsistent.
    Glue(teamplay_coord::GlueError),
}

impl fmt::Display for ComplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexError::TaskSet(msg) => write!(f, "task set: {msg}"),
            ComplexError::Unschedulable(e) => write!(f, "coordination: {e}"),
            ComplexError::Glue(e) => write!(f, "coordination: {e}"),
        }
    }
}

impl std::error::Error for ComplexError {}

impl ComplexWorkflow {
    /// A workflow on the given platform with sensible defaults
    /// (24 profiling runs, 20 % p95 margin).
    pub fn new(platform: ComplexPlatform) -> ComplexWorkflow {
        ComplexWorkflow {
            platform,
            runs: 24,
            margin: 1.2,
            seed: 0xD2073,
        }
    }

    /// Run the two-pass workflow for the given application and frame
    /// deadline.
    ///
    /// # Errors
    /// See [`ComplexError`].
    pub fn run(
        &self,
        tasks: &[ComplexTask],
        deadline_us: f64,
    ) -> Result<ComplexOutcome, ComplexError> {
        // First pass: sequential instrumented harness (the thing the
        // profiler "runs").
        let work: Vec<(String, WorkItem)> =
            tasks.iter().map(|t| (t.name.clone(), t.work)).collect();
        let seq_set = TaskSet::new(
            tasks
                .iter()
                .map(|t| {
                    let mut ct = CoordTask::new(
                        t.name.clone(),
                        vec![teamplay_coord::ExecOption {
                            label: "seq".into(),
                            core: self.platform.cores[0].name.clone(),
                            time_us: 1.0,
                            energy_uj: 0.0,
                            security_level: 0,
                        }],
                    );
                    ct.after = t.after.clone();
                    ct
                })
                .collect(),
            self.platform.cores.iter().map(|c| c.name.clone()).collect(),
            f64::INFINITY,
        )
        .map_err(|e| ComplexError::TaskSet(e.to_string()))?;
        let sequential_glue = generate_sequential_glue(&seq_set);

        // Dynamic profiling on the platform simulator.
        let profile = profile_tasks(&self.platform, &work, self.runs, self.seed);

        // Second pass: multi-version scheduling from the measured costs.
        let coord_tasks: Vec<CoordTask> = tasks
            .iter()
            .map(|t| {
                let options = exec_options_from_profile(&profile, &t.name, self.margin);
                let mut ct = CoordTask::new(t.name.clone(), options);
                ct.after = t.after.clone();
                ct
            })
            .collect();
        let set = TaskSet::new(
            coord_tasks,
            self.platform.cores.iter().map(|c| c.name.clone()).collect(),
            deadline_us,
        )
        .map_err(|e| ComplexError::TaskSet(e.to_string()))?;
        let schedule = schedule_energy_aware(&set).map_err(ComplexError::Unschedulable)?;
        let parallel_glue = generate_parallel_glue(&set, &schedule).map_err(ComplexError::Glue)?;
        let frame_energy_uj = schedule.total_energy_uj;

        Ok(ComplexOutcome {
            sequential_glue,
            profile,
            schedule,
            parallel_glue,
            frame_energy_uj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sar_tasks() -> Vec<ComplexTask> {
        teamplay_apps::uav::sar_pipeline()
            .into_iter()
            .map(|(name, work, after)| ComplexTask { name, work, after })
            .collect()
    }

    #[test]
    fn sar_pipeline_completes_both_passes() {
        let wf = ComplexWorkflow::new(ComplexPlatform::tk1());
        let outcome = wf
            .run(&sar_tasks(), teamplay_apps::uav::FRAME_PERIOD_US)
            .expect("workflow");
        assert!(outcome
            .sequential_glue
            .contains("tp_measure_begin(\"detect\")"));
        assert!(outcome.parallel_glue.contains("tp_thread_create"));
        assert!(outcome.schedule.makespan_us <= teamplay_apps::uav::FRAME_PERIOD_US);
        assert!(outcome.frame_energy_uj > 0.0);
    }

    #[test]
    fn tight_deadline_forces_faster_costlier_mapping() {
        let wf = ComplexWorkflow::new(ComplexPlatform::tk1());
        let relaxed = wf.run(&sar_tasks(), 500_000.0).expect("relaxed");
        let tight = wf.run(&sar_tasks(), 235_000.0).expect("tight");
        assert!(tight.schedule.makespan_us <= 235_000.0);
        assert!(
            tight.frame_energy_uj >= relaxed.frame_energy_uj,
            "meeting a tighter deadline cannot cost less energy: {} vs {}",
            tight.frame_energy_uj,
            relaxed.frame_energy_uj
        );
    }

    #[test]
    fn impossible_deadline_is_unschedulable() {
        let wf = ComplexWorkflow::new(ComplexPlatform::tk1());
        match wf.run(&sar_tasks(), 100.0) {
            Err(ComplexError::Unschedulable(_)) => {}
            other => panic!("expected unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn nano_platform_is_slower_but_works() {
        // The deadline must be genuinely generous: the Nano's critical
        // path sits near 400 ms, so a 400 ms deadline flips with the
        // profiling jitter stream.
        let wf = ComplexWorkflow::new(ComplexPlatform::nano());
        let nano = wf.run(&sar_tasks(), 450_000.0).expect("nano");
        let wf_tk1 = ComplexWorkflow::new(ComplexPlatform::tk1());
        let tk1 = wf_tk1.run(&sar_tasks(), 450_000.0).expect("tk1");
        // With a generous deadline both schedule; the Nano's energy
        // envelope is smaller even if it is slower.
        assert!(nano.schedule.makespan_us > 0.0 && tk1.schedule.makespan_us > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = ComplexWorkflow::new(ComplexPlatform::tk1());
        let a = wf
            .run(&sar_tasks(), teamplay_apps::uav::FRAME_PERIOD_US)
            .expect("a");
        let b = wf
            .run(&sar_tasks(), teamplay_apps::uav::FRAME_PERIOD_US)
            .expect("b");
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.profile, b.profile);
    }
}
