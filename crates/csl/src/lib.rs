//! # teamplay-csl — the Contract Specification Language
//!
//! CSL (paper ref \[1\]) is how ETS properties become *first-class citizens
//! of the source program*: `/*@ ... @*/` annotations attach timing,
//! energy and security contracts to code, and describe the application's
//! task structure for the coordination layer. This crate owns the
//! annotation grammar and the extraction of the task model:
//!
//! ```text
//! /*@ task capture period(40ms) deadline(40ms)
//!       wcet_budget(5ms) energy_budget(3mJ)
//!       on(core0) @*/
//! void capture_frame() { ... }
//!
//! /*@ task encrypt after(capture) security(ct) secret(key)
//!       wcet_budget(2ms) energy_budget(1500uJ) @*/
//! void encrypt_frame(int key) { ... }
//! ```
//!
//! The CSL layer gathers the **points of interest** (annotated
//! functions), their ETS budgets, and the task dependency graph
//! (Fig. 1/2, "CSL compiler"). Downstream, `teamplay-compiler` optimises
//! each task, `teamplay-coord` schedules the graph, and
//! `teamplay-contracts` proves the budgets.

pub mod clause;
pub mod model;

pub use clause::{parse_clauses, ClauseParseError, CslClause, EnergyValue, SecurityReq, TimeValue};
pub use model::{extract_model, CslError, CslModel, TaskSpec};
