//! CSL clause grammar.
//!
//! An annotation payload is a sequence of whitespace-separated clauses;
//! parenthesised clause arguments may not contain spaces. Quantities
//! carry units: time in `us`/`ms`/`s` (stored as microseconds), energy in
//! `pj`/`nj`/`uj`/`mj`/`j` (stored as picojoules).
//!
//! Security clauses come in two strengths:
//!
//! * `security(ct)` (aliases `constant_time`, `leakfree`) — the task's
//!   *code* must be constant-time with respect to its `secret(...)`
//!   parameters; the workflow ladderises the function and measures the
//!   residual leakage.
//! * `security_floor(n)` — the task's *placement* must use an execution
//!   option of countermeasure rung ≥ `n` (`0` = unhardened, `1` =
//!   ladderised). The coordination layer filters below-floor options
//!   before scheduling, so the floor binds even when a tuned Pareto
//!   front offers cheaper unhardened variants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A time quantity in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TimeValue(pub f64);

impl TimeValue {
    /// Parse `"5ms"`, `"250us"`, `"1s"`.
    ///
    /// # Errors
    /// Returns the offending text when the number or unit is malformed.
    pub fn parse(text: &str) -> Result<TimeValue, ClauseParseError> {
        let (num, unit) = split_unit(text);
        let value: f64 = num
            .parse()
            .map_err(|_| ClauseParseError::BadQuantity(text.to_string()))?;
        let scale = match unit {
            "us" => 1.0,
            "ms" => 1e3,
            "s" => 1e6,
            _ => return Err(ClauseParseError::BadUnit(text.to_string())),
        };
        if value.is_nan() || value < 0.0 {
            return Err(ClauseParseError::BadQuantity(text.to_string()));
        }
        Ok(TimeValue(value * scale))
    }

    /// Microseconds.
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// Milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 / 1e3
    }
}

impl fmt::Display for TimeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{}s", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{}ms", self.0 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An energy quantity in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct EnergyValue(pub f64);

impl EnergyValue {
    /// Parse `"3mJ"`, `"1500uJ"`, `"2nJ"`, `"150pJ"` (unit case
    /// insensitive).
    ///
    /// # Errors
    /// Returns the offending text when the number or unit is malformed.
    pub fn parse(text: &str) -> Result<EnergyValue, ClauseParseError> {
        let (num, unit) = split_unit(text);
        let value: f64 = num
            .parse()
            .map_err(|_| ClauseParseError::BadQuantity(text.to_string()))?;
        let scale = match unit.to_ascii_lowercase().as_str() {
            "pj" => 1.0,
            "nj" => 1e3,
            "uj" => 1e6,
            "mj" => 1e9,
            "j" => 1e12,
            _ => return Err(ClauseParseError::BadUnit(text.to_string())),
        };
        if value.is_nan() || value < 0.0 {
            return Err(ClauseParseError::BadQuantity(text.to_string()));
        }
        Ok(EnergyValue(value * scale))
    }

    /// Picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for EnergyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{}mJ", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{}uJ", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{}nJ", self.0 / 1e3)
        } else {
            write!(f, "{}pJ", self.0)
        }
    }
}

fn split_unit(text: &str) -> (&str, &str) {
    let split = text
        .find(|c: char| c.is_ascii_alphabetic())
        .unwrap_or(text.len());
    (&text[..split], &text[split..])
}

/// Security requirement levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecurityReq {
    /// The task must be constant-time/power with respect to its secrets
    /// (enforced via ladderisation + leakage assessment).
    ConstantTime,
}

/// One parsed CSL clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CslClause {
    /// `task <name>` — marks a task entry point.
    Task(String),
    /// `period(10ms)`.
    Period(TimeValue),
    /// `deadline(10ms)`.
    Deadline(TimeValue),
    /// `wcet_budget(2ms)`.
    WcetBudget(TimeValue),
    /// `energy_budget(3mJ)`.
    EnergyBudget(EnergyValue),
    /// `security(ct)`.
    Security(SecurityReq),
    /// `security_floor(n)` — minimum countermeasure rung the scheduler
    /// may place: every execution option offered for the task must carry
    /// `security_level ≥ n` (rung 0 = no hardening, rung 1 =
    /// ladderised). Options below the floor are filtered out at task-set
    /// construction, so a below-floor variant can never be scheduled.
    SecurityFloor(u32),
    /// `secret(param)`.
    Secret(String),
    /// `after(a, b, ...)` — dependency edges.
    After(Vec<String>),
    /// `reliability(k)` — the task re-executes up to `k` times on fault
    /// detection; the scheduler must reserve slack for every recovery
    /// run inside the deadline.
    Reliability(u32),
    /// `degraded_deadline(48ms)` — the relaxed deadline the task may
    /// fall back to in degraded mode when the nominal contract is
    /// unschedulable.
    DegradedDeadline(TimeValue),
    /// `loop bound(n)` — owned by the front-end; carried through
    /// untouched.
    LoopBound(u32),
}

/// Clause parsing errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClauseParseError {
    /// A clause keyword that the grammar does not know.
    UnknownClause(String),
    /// A malformed number.
    BadQuantity(String),
    /// A malformed or missing unit.
    BadUnit(String),
    /// Malformed parentheses/arguments.
    Malformed(String),
}

impl fmt::Display for ClauseParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClauseParseError::UnknownClause(s) => write!(f, "unknown CSL clause `{s}`"),
            ClauseParseError::BadQuantity(s) => write!(f, "malformed quantity `{s}`"),
            ClauseParseError::BadUnit(s) => write!(f, "unknown unit in `{s}`"),
            ClauseParseError::Malformed(s) => write!(f, "malformed clause `{s}`"),
        }
    }
}

impl std::error::Error for ClauseParseError {}

/// Split an annotation payload into raw clause tokens: a word optionally
/// followed by a parenthesised argument (which may contain commas but not
/// nested parens).
fn tokenize(payload: &str) -> Result<Vec<(String, Option<String>)>, ClauseParseError> {
    let mut out = Vec::new();
    let bytes = payload.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'(' {
            i += 1;
        }
        let word = payload[start..i].to_string();
        if word.is_empty() {
            return Err(ClauseParseError::Malformed(payload.to_string()));
        }
        let arg = if i < bytes.len() && bytes[i] == b'(' {
            let close = payload[i..]
                .find(')')
                .ok_or_else(|| ClauseParseError::Malformed(payload.to_string()))?;
            let inner = payload[i + 1..i + close].to_string();
            i += close + 1;
            Some(inner)
        } else {
            None
        };
        out.push((word, arg));
    }
    Ok(out)
}

/// Parse a full annotation payload into clauses.
///
/// # Errors
/// See [`ClauseParseError`]; unknown keywords are rejected so typos in
/// contracts cannot silently weaken them.
pub fn parse_clauses(payload: &str) -> Result<Vec<CslClause>, ClauseParseError> {
    let tokens = tokenize(payload)?;
    let mut clauses = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    while let Some((word, arg)) = iter.next() {
        let need =
            |arg: Option<String>| arg.ok_or_else(|| ClauseParseError::Malformed(word_err(&word)));
        fn word_err(w: &str) -> String {
            format!("{w}: missing argument")
        }
        let clause = match word.as_str() {
            "task" => {
                // `task name` — the name is the next bare token.
                match arg {
                    Some(name) => CslClause::Task(name),
                    None => {
                        let Some((name, None)) = iter.next() else {
                            return Err(ClauseParseError::Malformed("task: missing name".into()));
                        };
                        CslClause::Task(name)
                    }
                }
            }
            "period" => CslClause::Period(TimeValue::parse(need(arg)?.trim())?),
            "deadline" => CslClause::Deadline(TimeValue::parse(need(arg)?.trim())?),
            "wcet_budget" => CslClause::WcetBudget(TimeValue::parse(need(arg)?.trim())?),
            "energy_budget" => CslClause::EnergyBudget(EnergyValue::parse(need(arg)?.trim())?),
            "security" => {
                let level = need(arg)?;
                match level.trim() {
                    "ct" | "constant_time" | "leakfree" => {
                        CslClause::Security(SecurityReq::ConstantTime)
                    }
                    other => {
                        return Err(ClauseParseError::UnknownClause(format!(
                            "security({other})"
                        )))
                    }
                }
            }
            "security_floor" => {
                let n: u32 = need(arg)?
                    .trim()
                    .parse()
                    .map_err(|_| ClauseParseError::BadQuantity("security_floor".into()))?;
                CslClause::SecurityFloor(n)
            }
            "secret" => CslClause::Secret(need(arg)?.trim().to_string()),
            "reliability" => {
                let k: u32 = need(arg)?
                    .trim()
                    .parse()
                    .map_err(|_| ClauseParseError::BadQuantity("reliability".into()))?;
                CslClause::Reliability(k)
            }
            "degraded_deadline" => {
                CslClause::DegradedDeadline(TimeValue::parse(need(arg)?.trim())?)
            }
            "after" => {
                let list = need(arg)?;
                let deps: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if deps.is_empty() {
                    return Err(ClauseParseError::Malformed("after()".into()));
                }
                CslClause::After(deps)
            }
            "loop" => {
                // `loop bound(n)` — two tokens.
                let Some((kw, barg)) = iter.next() else {
                    return Err(ClauseParseError::Malformed("loop: missing bound".into()));
                };
                if kw != "bound" {
                    return Err(ClauseParseError::UnknownClause(format!("loop {kw}")));
                }
                let n: u32 = barg
                    .ok_or_else(|| ClauseParseError::Malformed("loop bound: missing".into()))?
                    .trim()
                    .parse()
                    .map_err(|_| ClauseParseError::BadQuantity("loop bound".into()))?;
                CslClause::LoopBound(n)
            }
            other => return Err(ClauseParseError::UnknownClause(other.to_string())),
        };
        clauses.push(clause);
    }
    Ok(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_units_parse_and_scale() {
        assert_eq!(TimeValue::parse("250us").expect("us").as_us(), 250.0);
        assert_eq!(TimeValue::parse("5ms").expect("ms").as_us(), 5000.0);
        assert_eq!(TimeValue::parse("1s").expect("s").as_us(), 1e6);
        assert_eq!(TimeValue::parse("1.5ms").expect("frac").as_us(), 1500.0);
        assert!(TimeValue::parse("5min").is_err());
        assert!(TimeValue::parse("ms").is_err());
        assert!(TimeValue::parse("-3ms").is_err());
    }

    #[test]
    fn energy_units_parse_and_scale() {
        assert_eq!(EnergyValue::parse("3mJ").expect("mJ").as_pj(), 3e9);
        assert_eq!(EnergyValue::parse("1500uJ").expect("uJ").as_pj(), 1.5e9);
        assert_eq!(EnergyValue::parse("2nJ").expect("nJ").as_pj(), 2000.0);
        assert_eq!(EnergyValue::parse("7pj").expect("pj").as_pj(), 7.0);
        assert!(EnergyValue::parse("3kWh").is_err());
    }

    #[test]
    fn display_round_trips_sensible_units() {
        assert_eq!(TimeValue::parse("5ms").expect("ms").to_string(), "5ms");
        assert_eq!(EnergyValue::parse("3mJ").expect("mJ").to_string(), "3mJ");
        assert_eq!(
            EnergyValue::parse("1500uJ").expect("uJ").to_string(),
            "1.5mJ"
        );
    }

    #[test]
    fn full_task_annotation_parses() {
        let clauses = parse_clauses(
            "task encrypt after(capture, fetch) period(40ms) deadline(40ms) \
             wcet_budget(2ms) energy_budget(1500uJ) security(ct) secret(key)",
        )
        .expect("parse");
        assert_eq!(clauses[0], CslClause::Task("encrypt".into()));
        assert_eq!(
            clauses[1],
            CslClause::After(vec!["capture".into(), "fetch".into()])
        );
        assert!(matches!(clauses[4], CslClause::WcetBudget(t) if t.as_ms() == 2.0));
        assert!(matches!(clauses[5], CslClause::EnergyBudget(e) if e.as_uj() == 1500.0));
        assert_eq!(clauses[6], CslClause::Security(SecurityReq::ConstantTime));
        assert_eq!(clauses[7], CslClause::Secret("key".into()));
    }

    #[test]
    fn task_name_as_bare_word() {
        let clauses = parse_clauses("task capture period(10ms)").expect("parse");
        assert_eq!(clauses[0], CslClause::Task("capture".into()));
    }

    #[test]
    fn loop_bound_clause() {
        let clauses = parse_clauses("loop bound(64)").expect("parse");
        assert_eq!(clauses, vec![CslClause::LoopBound(64)]);
    }

    #[test]
    fn reliability_and_degraded_deadline_clauses() {
        let clauses =
            parse_clauses("task encrypt reliability(2) degraded_deadline(48ms)").expect("parse");
        assert_eq!(clauses[1], CslClause::Reliability(2));
        assert!(matches!(clauses[2], CslClause::DegradedDeadline(t) if t.as_ms() == 48.0));
        assert!(parse_clauses("reliability(two)").is_err());
        assert!(parse_clauses("reliability").is_err());
        assert!(parse_clauses("degraded_deadline(5min)").is_err());
    }

    #[test]
    fn unknown_clause_rejected() {
        assert!(matches!(
            parse_clauses("tusk capture"),
            Err(ClauseParseError::UnknownClause(_))
        ));
        assert!(parse_clauses("security(rot13)").is_err());
    }

    #[test]
    fn security_floor_clause() {
        let clauses = parse_clauses("task encrypt security(ct) security_floor(1) secret(key)")
            .expect("parse");
        assert_eq!(clauses[1], CslClause::Security(SecurityReq::ConstantTime));
        assert_eq!(clauses[2], CslClause::SecurityFloor(1));
        assert_eq!(
            parse_clauses("security_floor(0)").expect("rung 0 is legal"),
            vec![CslClause::SecurityFloor(0)]
        );
        assert!(parse_clauses("security_floor(one)").is_err());
        assert!(parse_clauses("security_floor(-1)").is_err());
        assert!(parse_clauses("security_floor").is_err());
    }

    #[test]
    fn malformed_parens_rejected() {
        assert!(parse_clauses("period(10ms").is_err());
        assert!(parse_clauses("after()").is_err());
        assert!(parse_clauses("period").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn clause_parser_never_panics(payload in "\\PC{0,120}") {
            let _ = parse_clauses(&payload);
        }

        #[test]
        fn time_value_round_trip_us(v in 0.0f64..1e9) {
            let t = TimeValue::parse(&format!("{v}us")).expect("parse");
            prop_assert!((t.as_us() - v).abs() < 1e-6 * v.max(1.0));
        }
    }
}
