//! Task-model extraction from annotated Mini-C programs.
//!
//! The CSL layer of the toolchain (Fig. 1/2) scans the annotated source,
//! collects the points of interest and produces the task graph handed to
//! the compiler, the contract system and the coordination layer.

use crate::clause::{
    parse_clauses, ClauseParseError, CslClause, EnergyValue, SecurityReq, TimeValue,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use teamplay_minic::ast::Program;

/// A task extracted from an annotated function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task name (from the `task` clause).
    pub name: String,
    /// The Mini-C function implementing the task.
    pub function: String,
    /// Release period, if periodic.
    pub period: Option<TimeValue>,
    /// Relative deadline.
    pub deadline: Option<TimeValue>,
    /// Contracted WCET budget.
    pub wcet_budget: Option<TimeValue>,
    /// Contracted energy budget per activation.
    pub energy_budget: Option<EnergyValue>,
    /// Security requirement, if any.
    pub security: Option<SecurityReq>,
    /// Minimum countermeasure rung the scheduler may place
    /// (`security_floor(n)`; 0 — the default — accepts any option).
    pub security_floor: u32,
    /// Parameters holding secrets.
    pub secrets: Vec<String>,
    /// Names of tasks that must complete first.
    pub after: Vec<String>,
    /// Re-executions reserved on fault detection (`reliability(k)`;
    /// 0 = no fault tolerance contracted).
    pub reexecutions: u32,
    /// Relaxed deadline the task may degrade to when the nominal
    /// contract is unschedulable.
    pub degraded_deadline: Option<TimeValue>,
}

/// Extraction errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CslError {
    /// A clause failed to parse, with its function for context.
    Clause {
        /// Function whose annotation is malformed.
        function: String,
        /// Underlying error.
        error: ClauseParseError,
    },
    /// Two tasks share a name.
    DuplicateTask(String),
    /// An `after` clause names an unknown task.
    UnknownDependency {
        /// The dependent task.
        task: String,
        /// The missing dependency.
        missing: String,
    },
    /// The dependency graph has a cycle through this task.
    CyclicDependencies(String),
    /// A `secret` clause names a parameter the function does not have.
    UnknownSecret {
        /// The task.
        task: String,
        /// The missing parameter.
        param: String,
    },
}

impl fmt::Display for CslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CslError::Clause { function, error } => {
                write!(f, "in annotations of `{function}`: {error}")
            }
            CslError::DuplicateTask(name) => write!(f, "duplicate task `{name}`"),
            CslError::UnknownDependency { task, missing } => {
                write!(f, "task `{task}` depends on unknown task `{missing}`")
            }
            CslError::CyclicDependencies(task) => {
                write!(f, "cyclic task dependencies through `{task}`")
            }
            CslError::UnknownSecret { task, param } => {
                write!(
                    f,
                    "task `{task}` declares unknown secret parameter `{param}`"
                )
            }
        }
    }
}

impl std::error::Error for CslError {}

/// The extracted CSL model: tasks plus their dependency graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CslModel {
    /// All tasks in annotation order.
    pub tasks: Vec<TaskSpec>,
}

impl CslModel {
    /// Look up a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Task names in a topological order of the dependency graph
    /// (dependencies first). The model is validated acyclic on
    /// extraction.
    pub fn topological_order(&self) -> Vec<&str> {
        let mut indegree: HashMap<&str, usize> = self
            .tasks
            .iter()
            .map(|t| (t.name.as_str(), t.after.len()))
            .collect();
        let mut order: Vec<&str> = Vec::with_capacity(self.tasks.len());
        let mut ready: Vec<&str> = self
            .tasks
            .iter()
            .filter(|t| t.after.is_empty())
            .map(|t| t.name.as_str())
            .collect();
        while let Some(next) = ready.pop() {
            order.push(next);
            for t in &self.tasks {
                if t.after.iter().any(|d| d == next) {
                    let e = indegree.get_mut(t.name.as_str()).expect("task indexed");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(t.name.as_str());
                    }
                }
            }
        }
        order
    }

    /// Direct successors of a task in the dependency graph.
    pub fn successors(&self, name: &str) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| t.after.iter().any(|d| d == name))
            .map(|t| t.name.as_str())
            .collect()
    }
}

/// Extract the CSL task model from a type-checked program.
///
/// # Errors
/// See [`CslError`] — malformed clauses, duplicate/unknown tasks,
/// dependency cycles and unknown secret parameters are all rejected.
pub fn extract_model(program: &Program) -> Result<CslModel, CslError> {
    let mut tasks: Vec<TaskSpec> = Vec::new();
    for func in program.functions() {
        let mut clauses = Vec::new();
        for ann in &func.annotations {
            let parsed = parse_clauses(&ann.text).map_err(|error| CslError::Clause {
                function: func.name.clone(),
                error,
            })?;
            clauses.extend(parsed);
        }
        let Some(name) = clauses.iter().find_map(|c| match c {
            CslClause::Task(n) => Some(n.clone()),
            _ => None,
        }) else {
            continue; // annotated but not a task (e.g. only `secret`)
        };
        let mut spec = TaskSpec {
            name,
            function: func.name.clone(),
            period: None,
            deadline: None,
            wcet_budget: None,
            energy_budget: None,
            security: None,
            security_floor: 0,
            secrets: Vec::new(),
            after: Vec::new(),
            reexecutions: 0,
            degraded_deadline: None,
        };
        for c in clauses {
            match c {
                CslClause::Task(_) | CslClause::LoopBound(_) => {}
                CslClause::Period(t) => spec.period = Some(t),
                CslClause::Deadline(t) => spec.deadline = Some(t),
                CslClause::WcetBudget(t) => spec.wcet_budget = Some(t),
                CslClause::EnergyBudget(e) => spec.energy_budget = Some(e),
                CslClause::Security(s) => spec.security = Some(s),
                CslClause::SecurityFloor(n) => spec.security_floor = n,
                CslClause::Secret(p) => spec.secrets.push(p),
                CslClause::After(deps) => spec.after.extend(deps),
                CslClause::Reliability(k) => spec.reexecutions = k,
                CslClause::DegradedDeadline(t) => spec.degraded_deadline = Some(t),
            }
        }
        for s in &spec.secrets {
            if !func.params.iter().any(|p| &p.name == s) {
                return Err(CslError::UnknownSecret {
                    task: spec.name,
                    param: s.clone(),
                });
            }
        }
        if tasks.iter().any(|t| t.name == spec.name) {
            return Err(CslError::DuplicateTask(spec.name));
        }
        tasks.push(spec);
    }

    // Validate dependencies.
    let names: HashSet<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
    for t in &tasks {
        for d in &t.after {
            if !names.contains(d.as_str()) {
                return Err(CslError::UnknownDependency {
                    task: t.name.clone(),
                    missing: d.clone(),
                });
            }
        }
    }
    let model = CslModel { tasks };
    if model.topological_order().len() != model.tasks.len() {
        let name = model
            .tasks
            .first()
            .map(|t| t.name.clone())
            .unwrap_or_default();
        return Err(CslError::CyclicDependencies(name));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::parse_and_check;

    const PIPELINE: &str = "
        /*@ task capture period(40ms) deadline(40ms) wcet_budget(5ms) energy_budget(3mJ) @*/
        void capture() { return; }

        /*@ task compress after(capture) wcet_budget(10ms) energy_budget(4mJ) @*/
        void compress() { return; }

        /*@ task encrypt after(compress) security(ct) secret(key) wcet_budget(2ms) energy_budget(1500uJ) @*/
        void encrypt(int key) { return; }

        /*@ task transmit after(encrypt) deadline(40ms) energy_budget(8mJ) @*/
        void transmit() { return; }

        int helper(int x) { return x + 1; }
    ";

    fn model(src: &str) -> Result<CslModel, CslError> {
        extract_model(&parse_and_check(src).expect("front-end"))
    }

    #[test]
    fn extracts_the_full_pipeline() {
        let m = model(PIPELINE).expect("extract");
        assert_eq!(m.tasks.len(), 4);
        let encrypt = m.task("encrypt").expect("encrypt");
        assert_eq!(encrypt.function, "encrypt");
        assert_eq!(encrypt.secrets, vec!["key".to_string()]);
        assert_eq!(encrypt.security, Some(SecurityReq::ConstantTime));
        assert_eq!(encrypt.after, vec!["compress".to_string()]);
        assert!(encrypt.wcet_budget.expect("budget").as_ms() == 2.0);
        assert!(
            m.task("helper").is_none(),
            "unannotated functions are not tasks"
        );
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let m = model(PIPELINE).expect("extract");
        let order = m.topological_order();
        let pos = |n: &str| order.iter().position(|x| *x == n).expect("present");
        assert!(pos("capture") < pos("compress"));
        assert!(pos("compress") < pos("encrypt"));
        assert!(pos("encrypt") < pos("transmit"));
    }

    #[test]
    fn successors_follow_edges() {
        let m = model(PIPELINE).expect("extract");
        assert_eq!(m.successors("capture"), vec!["compress"]);
        assert!(m.successors("transmit").is_empty());
    }

    #[test]
    fn reliability_and_degraded_deadline_reach_the_spec() {
        let src = "/*@ task a reliability(2) degraded_deadline(48ms) deadline(40ms) @*/
                   void a() { return; }
                   /*@ task b @*/ void b() { return; }";
        let m = model(src).expect("extract");
        let a = m.task("a").expect("a");
        assert_eq!(a.reexecutions, 2);
        assert_eq!(a.degraded_deadline.expect("degraded").as_ms(), 48.0);
        let b = m.task("b").expect("b");
        assert_eq!(b.reexecutions, 0, "reliability defaults to none");
        assert!(b.degraded_deadline.is_none());
    }

    #[test]
    fn security_floor_reaches_the_spec_and_defaults_to_zero() {
        let src = "/*@ task enc security(ct) security_floor(1) secret(key) @*/
                   void enc(int key) { return; }
                   /*@ task plain @*/ void plain() { return; }";
        let m = model(src).expect("extract");
        assert_eq!(m.task("enc").expect("enc").security_floor, 1);
        assert_eq!(m.task("plain").expect("plain").security_floor, 0);
    }

    #[test]
    fn duplicate_task_rejected() {
        let src = "/*@ task t @*/ void a() { return; } /*@ task t @*/ void b() { return; }";
        assert!(matches!(model(src), Err(CslError::DuplicateTask(_))));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let src = "/*@ task a after(ghost) @*/ void a() { return; }";
        assert!(matches!(
            model(src),
            Err(CslError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn cyclic_dependencies_rejected() {
        let src = "/*@ task a after(b) @*/ void fa() { return; }
                   /*@ task b after(a) @*/ void fb() { return; }";
        assert!(matches!(model(src), Err(CslError::CyclicDependencies(_))));
    }

    #[test]
    fn unknown_secret_rejected() {
        let src = "/*@ task a secret(nokey) @*/ void a(int key) { return; }";
        assert!(matches!(model(src), Err(CslError::UnknownSecret { .. })));
    }

    #[test]
    fn malformed_clause_names_the_function() {
        let src = "/*@ task a period(10 parsecs) @*/ void a() { return; }";
        match model(src) {
            Err(CslError::Clause { function, .. }) => assert_eq!(function, "a"),
            other => panic!("expected clause error, got {other:?}"),
        }
    }

    #[test]
    fn annotation_without_task_clause_is_not_a_task() {
        let src = "/*@ secret(key) @*/ int f(int key) { return key; }";
        let m = model(src).expect("extract");
        assert!(m.tasks.is_empty());
    }
}
