//! Simulation throughput benchmark: pre-decoded engine vs the reference
//! interpreter, in simulated cycles per second.
//!
//! Every measurement-heavy mode of the toolchain (bound validation,
//! energy-model fitting, the predictable workflow's measure step) is
//! gated on simulator throughput, so this bench records — per app kernel
//! under its tuned pipeline — how fast each engine retires simulated
//! cycles:
//!
//! * **reference** — [`teamplay_sim::Machine`], the CFG-walking
//!   interpreter that defines the semantics;
//! * **pre-decoded** — [`teamplay_sim::DecodedProgram`] +
//!   [`teamplay_sim::DecodedEngine`], the direct-threaded engine whose
//!   results are bit-identical to the reference (asserted here on every
//!   kernel before anything is timed);
//! * **batched** — [`teamplay_sim::simulate_batch_budgeted`] fanning
//!   seeded input vectors across the global `minipool` under an explicit
//!   watchdog budget (the kernel's IPET bound).
//!
//! The run writes `BENCH_sim.json` at the repository root (validated in
//! CI by `support/ci/validate_bench.py`), then registers a Criterion
//! timing for the pre-decoded engine itself. Run with
//! `cargo bench --bench sim_throughput`.

use criterion::Criterion;
use serde::Serialize;
use std::time::{Duration, Instant};
use teamplay_compiler::{generate_program, CodegenOpts, PassManager};
use teamplay_isa::{CycleModel, Program};
use teamplay_minic::compile_to_ir;
use teamplay_sim::{seeded_inputs, simulate_batch_budgeted, DecodedProgram, Machine, NullDevice};
use teamplay_wcet::analyze_program;

/// One kernel's throughput under both engines.
#[derive(Serialize)]
struct KernelThroughput {
    app: String,
    task: String,
    /// Simulated cycles of one fresh-state run.
    cycles_per_run: u64,
    /// Reference interpreter, single thread.
    ref_cycles_per_sec: f64,
    /// Pre-decoded engine, single thread.
    decoded_cycles_per_sec: f64,
    /// `decoded / ref` — the headline single-thread gain.
    speedup: f64,
    /// Pooled `simulate_batch` over seeded inputs.
    batch_cycles_per_sec: f64,
    batch_runs: usize,
    /// Worst observed cycles across the seeded batch.
    observed_max_cycles: u64,
    /// Static IPET bound for the kernel.
    ipet_cycles: u64,
    /// `observed_max / ipet` — tightness evidence, in `(0, 1]`.
    observed_over_ipet: f64,
}

#[derive(Serialize)]
struct Baseline {
    bench: String,
    engine: String,
    pool_threads: usize,
    kernels: Vec<KernelThroughput>,
    /// Worst single-thread speedup across the kernels (the gate).
    min_single_thread_speedup: f64,
}

/// The four kernels under their tuned pipelines, compiled once, with the
/// argument vector used for the timed single-thread runs.
fn compiled_kernels() -> Vec<(String, String, Vec<i32>, Program)> {
    let cat = teamplay_apps::catalog();
    [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
            vec![],
        ),
        (
            "spacewire",
            teamplay_apps::spacewire::SOURCE,
            "crc_frame",
            vec![],
        ),
        (
            "uav",
            teamplay_apps::uav::DETECT_KERNEL_SOURCE,
            "predetect",
            vec![40],
        ),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
            vec![],
        ),
    ]
    .into_iter()
    .map(|(app, src, task, args)| {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        (app.to_string(), task.to_string(), args, program)
    })
    .collect()
}

/// Best wall-clock of several rounds — the single-tenant peak, robust
/// against scheduler noise on shared runners.
fn time_best(mut f: impl FnMut()) -> Duration {
    let mut best: Option<Duration> = None;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        let took = start.elapsed();
        if best.is_none_or(|b| took < b) {
            best = Some(took);
        }
    }
    best.expect("rounds >= 1")
}

fn main() {
    let cm = CycleModel::pg32();
    let pool = minipool::global();
    let kernels = compiled_kernels();
    let mut records = Vec::new();

    for (app, task, args, program) in &kernels {
        let ipet = analyze_program(program, &cm)
            .expect("ipet")
            .wcet_cycles(task)
            .expect("bounded");
        let decoded = DecodedProgram::new(program).expect("decodes");

        // Differential guard: nothing is timed unless the engines agree
        // bit for bit on this kernel.
        let mut machine = Machine::new(program.clone()).expect("loads");
        let mut engine = decoded.engine();
        let want = machine
            .call(task, args, &mut NullDevice::new())
            .expect("reference runs");
        let got = engine
            .call(task, args, &mut NullDevice::new())
            .expect("decoded runs");
        assert_eq!(want, got, "{app}/{task}: engines diverge");
        assert_eq!(want.energy_pj.to_bits(), got.energy_pj.to_bits());

        // Repetitions sized so each timed round simulates a few tens of
        // millions of cycles. Runs go back to back *without* data resets:
        // globals evolve identically under both engines, so the two time
        // the exact same cycle stream (asserted below).
        let reps = (30_000_000 / want.cycles.max(1)).clamp(3, 5_000) as usize;
        let run_stream = |total: &mut u64, m: &mut dyn FnMut() -> u64| {
            *total = 0;
            for _ in 0..reps {
                *total += m();
            }
        };

        let mut ref_cycles = 0u64;
        let ref_time = time_best(|| {
            let mut machine = Machine::new(program.clone()).expect("loads");
            run_stream(&mut ref_cycles, &mut || {
                machine
                    .call(task, args, &mut NullDevice::new())
                    .expect("runs")
                    .cycles
            });
        });
        let mut dec_cycles = 0u64;
        let dec_time = time_best(|| {
            let mut engine = decoded.engine();
            run_stream(&mut dec_cycles, &mut || {
                engine
                    .call(task, args, &mut NullDevice::new())
                    .expect("runs")
                    .cycles
            });
        });
        assert_eq!(ref_cycles, dec_cycles, "{app}/{task}: streams diverge");

        // Pooled batch over seeded inputs (fresh data image per run, so
        // every result is IPET-comparable) under an explicit watchdog:
        // the IPET bound itself, so any run past the proven WCET trips
        // `CycleLimit` here instead of inflating the throughput figures.
        let batch_runs = 256usize;
        let arg_count = args.len();
        let inputs = seeded_inputs(
            0x51B0 + records.len() as u64,
            batch_runs,
            arg_count,
            -64,
            64,
        );
        let results = simulate_batch_budgeted(pool, &decoded, task, &inputs, ipet);
        let observed_max = results
            .iter()
            .map(|r| r.as_ref().expect("batch runs").cycles)
            .max()
            .expect("non-empty batch");
        let batch_cycles: u64 = results
            .iter()
            .map(|r| r.as_ref().expect("batch runs").cycles)
            .sum();
        let batch_time = time_best(|| {
            simulate_batch_budgeted(pool, &decoded, task, &inputs, ipet);
        });

        let per_sec = |cycles: u64, t: Duration| cycles as f64 / t.as_secs_f64().max(1e-9);
        let ref_cps = per_sec(ref_cycles, ref_time);
        let dec_cps = per_sec(dec_cycles, dec_time);
        records.push(KernelThroughput {
            app: app.clone(),
            task: task.clone(),
            cycles_per_run: want.cycles,
            ref_cycles_per_sec: ref_cps,
            decoded_cycles_per_sec: dec_cps,
            speedup: dec_cps / ref_cps,
            batch_cycles_per_sec: per_sec(batch_cycles, batch_time),
            batch_runs,
            observed_max_cycles: observed_max,
            ipet_cycles: ipet,
            observed_over_ipet: observed_max as f64 / ipet as f64,
        });
    }

    let min_speedup = records
        .iter()
        .map(|k| k.speedup)
        .fold(f64::INFINITY, f64::min);
    let baseline = Baseline {
        bench: "sim_throughput".into(),
        engine: "pre_decoded_direct_threaded".into(),
        pool_threads: pool.threads(),
        kernels: records,
        min_single_thread_speedup: min_speedup,
    };
    println!(
        "sim_throughput: {:?}; min single-thread speedup {:.1}x",
        baseline
            .kernels
            .iter()
            .map(|k| format!(
                "{}:{:.1}x ({:.1}M→{:.1}M cyc/s)",
                k.app,
                k.speedup,
                k.ref_cycles_per_sec / 1e6,
                k.decoded_cycles_per_sec / 1e6
            ))
            .collect::<Vec<_>>(),
        baseline.min_single_thread_speedup,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(path, json + "\n").expect("baseline written");

    let decoded_kernels: Vec<(String, Vec<i32>, DecodedProgram)> = kernels
        .iter()
        .map(|(_, task, args, program)| {
            (
                task.clone(),
                args.clone(),
                DecodedProgram::new(program).expect("decodes"),
            )
        })
        .collect();
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    c.bench_function("sim_decoded_four_kernels", |b| {
        b.iter(|| {
            for (task, args, decoded) in &decoded_kernels {
                let mut engine = decoded.engine();
                engine
                    .call(std::hint::black_box(task), args, &mut NullDevice::new())
                    .expect("runs");
            }
        })
    });
    c.final_summary();
}
