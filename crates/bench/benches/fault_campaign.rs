//! Deterministic fault-injection campaigns over the app kernels.
//!
//! Dependable CPS deployments care about *architectural vulnerability*:
//! what fraction of single-event upsets a kernel masks, silently
//! corrupts, traps on, stretches past its timing bound, or turns into a
//! hang. This bench runs a seeded [`teamplay_sim::run_campaign`] against
//! each of the four app kernels under its tuned pipeline and records the
//! per-kernel outcome rates.
//!
//! Every campaign runs under an **explicit watchdog cycle budget**
//! (twice the kernel's static IPET bound — generous for any legitimate
//! run, tiny against a faulted endless loop) and supplies the IPET bound
//! as the timing-violation threshold, so a fault that makes the kernel
//! outlive its proven WCET is reported as a timing violation even when
//! it eventually completes.
//!
//! Determinism contract, asserted here on every kernel before anything
//! is written: the zero-fault control run is bit-identical to the
//! fault-free reference, the serialized campaign is byte-equal at pool
//! widths 1 and 2 (the width-4 leg lives in
//! `tests/fault_campaign_oracle.rs`), and the rates of a non-empty
//! campaign sum to 1.
//!
//! The run writes `BENCH_fault.json` at the repository root (validated
//! in CI by `support/ci/validate_bench.py`), then registers a Criterion
//! timing for one campaign. Run with
//! `cargo bench --bench fault_campaign`.

use criterion::Criterion;
use minipool::Pool;
use serde::Serialize;
use std::time::Duration;
use teamplay_compiler::{generate_program, CodegenOpts, PassManager};
use teamplay_isa::{CycleModel, Program};
use teamplay_minic::compile_to_ir;
use teamplay_sim::{run_campaign, CampaignConfig, RecordingDevice};
use teamplay_wcet::analyze_program;

/// One kernel's campaign summary.
#[derive(Serialize)]
struct KernelVulnerability {
    app: String,
    task: String,
    /// Injections classified.
    injections: usize,
    /// Fault-free reference cycles.
    reference_cycles: u64,
    /// Static IPET bound — the timing-violation threshold.
    ipet_cycles: u64,
    /// Watchdog budget every run executed under.
    watchdog_cycles: u64,
    /// Fraction with no architecturally visible effect.
    masked_rate: f64,
    /// Fraction that silently corrupted results.
    sdc_rate: f64,
    /// Fraction that trapped (bad address, call-depth overflow…).
    trapped_rate: f64,
    /// Fraction that completed past the IPET bound.
    timing_rate: f64,
    /// Fraction that tripped the watchdog.
    hang_rate: f64,
    /// The zero-fault control reproduced the reference bit-identically.
    control_masked: bool,
    /// Serialized campaign byte-equal at pool widths 1 and 2.
    pool_width_invariant: bool,
}

#[derive(Serialize)]
struct Baseline {
    bench: String,
    seed: u64,
    injections_per_kernel: usize,
    kernels: Vec<KernelVulnerability>,
}

/// The four kernels under their tuned pipelines, compiled once, with the
/// argument vector the campaigns replay.
fn compiled_kernels() -> Vec<(String, String, Vec<i32>, Program)> {
    let cat = teamplay_apps::catalog();
    [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
            vec![],
        ),
        (
            "spacewire",
            teamplay_apps::spacewire::SOURCE,
            "crc_frame",
            vec![],
        ),
        (
            "uav",
            teamplay_apps::uav::DETECT_KERNEL_SOURCE,
            "predetect",
            vec![40],
        ),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
            vec![],
        ),
    ]
    .into_iter()
    .map(|(app, src, task, args)| {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        (app.to_string(), task.to_string(), args, program)
    })
    .collect()
}

const SEED: u64 = 0x5EED_FA17;
const INJECTIONS: usize = 512;

fn main() {
    let cm = CycleModel::pg32();
    let pool = minipool::global();
    let kernels = compiled_kernels();
    let mut records = Vec::new();

    for (i, (app, task, args, program)) in kernels.iter().enumerate() {
        let ipet = analyze_program(program, &cm)
            .expect("ipet")
            .wcet_cycles(task)
            .expect("bounded");
        let config = CampaignConfig {
            seed: SEED.wrapping_add(i as u64),
            injections: INJECTIONS,
            watchdog_cycles: ipet * 2,
            ipet_bound_cycles: Some(ipet),
        };

        let result = run_campaign(pool, program, task, args, &config, RecordingDevice::new);
        assert!(
            result.control_masked,
            "{app}/{task}: zero-fault control diverged from the reference"
        );
        let rates_sum: f64 = result.stats.rates().iter().sum();
        assert!(
            (rates_sum - 1.0).abs() < 1e-12,
            "{app}/{task}: rates sum to {rates_sum}"
        );

        // Pool-width determinism: the serialized campaign must be
        // byte-equal however wide the fleet is.
        let narrow = run_campaign(
            &Pool::new(1),
            program,
            task,
            args,
            &config,
            RecordingDevice::new,
        );
        let wide = run_campaign(
            &Pool::new(2),
            program,
            task,
            args,
            &config,
            RecordingDevice::new,
        );
        let pool_width_invariant = serde_json::to_string(&result).expect("serializes")
            == serde_json::to_string(&narrow).expect("serializes")
            && serde_json::to_string(&narrow).expect("serializes")
                == serde_json::to_string(&wide).expect("serializes");
        assert!(
            pool_width_invariant,
            "{app}/{task}: campaign depends on pool width"
        );

        let [masked, sdc, trapped, timing, hang] = result.stats.rates();
        records.push(KernelVulnerability {
            app: app.clone(),
            task: task.clone(),
            injections: result.stats.total(),
            reference_cycles: result.reference_cycles,
            ipet_cycles: ipet,
            watchdog_cycles: config.watchdog_cycles,
            masked_rate: masked,
            sdc_rate: sdc,
            trapped_rate: trapped,
            timing_rate: timing,
            hang_rate: hang,
            control_masked: result.control_masked,
            pool_width_invariant,
        });
    }

    let baseline = Baseline {
        bench: "fault_campaign".into(),
        seed: SEED,
        injections_per_kernel: INJECTIONS,
        kernels: records,
    };
    println!(
        "fault_campaign: {:?}",
        baseline
            .kernels
            .iter()
            .map(|k| format!(
                "{}/{}: masked {:.2} sdc {:.2} trap {:.2} timing {:.2} hang {:.2}",
                k.app,
                k.task,
                k.masked_rate,
                k.sdc_rate,
                k.trapped_rate,
                k.timing_rate,
                k.hang_rate
            ))
            .collect::<Vec<_>>()
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(path, json + "\n").expect("baseline written");

    // Criterion timing: one full campaign on the smallest kernel.
    let (app, task, args, program) = &kernels[2];
    let ipet = analyze_program(program, &cm)
        .expect("ipet")
        .wcet_cycles(task)
        .expect("bounded");
    let config = CampaignConfig {
        seed: SEED,
        injections: 128,
        watchdog_cycles: ipet * 2,
        ipet_bound_cycles: Some(ipet),
    };
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    c.bench_function(&format!("fault_campaign_{app}_{task}"), |b| {
        b.iter(|| {
            run_campaign(
                pool,
                std::hint::black_box(program),
                task,
                args,
                &config,
                RecordingDevice::new,
            )
        })
    });
    c.final_summary();
}
