//! WCET/WCEC tightness benchmark: structural-vs-IPET bound ratios per
//! application kernel, plus analysis throughput (analyses/second) with
//! and without the per-function content-hash memo.
//!
//! `analyze_program` runs once per compiled variant — thousands of times
//! per multi-objective search — so it is the hottest analysis path in
//! the repository. This bench records two things the CI gate then
//! guards:
//!
//! * **tightness** — for each app kernel under its tuned pipeline, the
//!   ratio `IPET / structural` for both the cycle and the energy bound
//!   (must sit in `(0, 1]`, with at least one kernel strictly below 1);
//! * **throughput** — full-program analyses per second, uncached vs
//!   through a warm [`teamplay_wcet::AnalysisCache`] (the replay path
//!   the driver's `EvalCache` rides).
//!
//! The run writes `BENCH_wcet.json` at the repository root (validated in
//! CI by `support/ci/validate_bench.py`), then registers a Criterion
//! timing for the IPET analysis itself. Run with
//! `cargo bench --bench wcet_tightness`.

use criterion::Criterion;
use serde::Serialize;
use std::time::{Duration, Instant};
use teamplay_compiler::{generate_program, CodegenOpts, PassManager};
use teamplay_energy::{analyze_program_energy, analyze_program_energy_structural, IsaEnergyModel};
use teamplay_isa::{CycleModel, Program};
use teamplay_minic::compile_to_ir;
use teamplay_wcet::{
    analyze_program, analyze_program_cached, analyze_program_structural, AnalysisCache,
};

/// One kernel's bounds under both engines.
#[derive(Serialize)]
struct KernelTightness {
    app: String,
    task: String,
    structural_cycles: u64,
    ipet_cycles: u64,
    /// `ipet / structural` — in `(0, 1]`, lower is tighter.
    tightness_ratio: f64,
    structural_wcec_pj: f64,
    ipet_wcec_pj: f64,
    wcec_tightness_ratio: f64,
}

#[derive(Serialize)]
struct Baseline {
    bench: String,
    engine: String,
    kernels: Vec<KernelTightness>,
    /// Whole-program IPET analyses per second, fresh every time.
    analyses_per_sec_uncached: f64,
    /// Same analyses through a warm per-function memo.
    analyses_per_sec_memoized: f64,
    memo_speedup: f64,
}

/// The four kernels under their tuned pipelines, compiled once.
fn compiled_kernels() -> Vec<(String, String, Program)> {
    let cat = teamplay_apps::catalog();
    [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
        ),
        ("spacewire", teamplay_apps::spacewire::SOURCE, "crc_frame"),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE, "predetect"),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
        ),
    ]
    .into_iter()
    .map(|(app, src, task)| {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        (app.to_string(), task.to_string(), program)
    })
    .collect()
}

fn main() {
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let kernels = compiled_kernels();

    let tightness: Vec<KernelTightness> = kernels
        .iter()
        .map(|(app, task, program)| {
            let ipet = analyze_program(program, &cm)
                .expect("ipet")
                .wcet_cycles(task)
                .expect("bounded");
            let structural = analyze_program_structural(program, &cm)
                .expect("structural")
                .wcet_cycles(task)
                .expect("bounded");
            let ipet_pj = analyze_program_energy(program, &em, &cm)
                .expect("wcec")
                .wcec_pj(task)
                .expect("bounded");
            let structural_pj = analyze_program_energy_structural(program, &em, &cm)
                .expect("structural wcec")
                .wcec_pj(task)
                .expect("bounded");
            KernelTightness {
                app: app.clone(),
                task: task.clone(),
                structural_cycles: structural,
                ipet_cycles: ipet,
                tightness_ratio: ipet as f64 / structural as f64,
                structural_wcec_pj: structural_pj,
                ipet_wcec_pj: ipet_pj,
                wcec_tightness_ratio: ipet_pj / structural_pj,
            }
        })
        .collect();

    // Throughput: whole-program analyses over all four kernels, best of
    // three timed rounds.
    const ROUNDS: usize = 3;
    const REPS: usize = 50;
    let time_best = |mut f: Box<dyn FnMut()>| -> Duration {
        let mut best: Option<Duration> = None;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            f();
            let took = start.elapsed();
            if best.is_none_or(|b| took < b) {
                best = Some(took);
            }
        }
        best.expect("rounds >= 1")
    };
    let programs: Vec<&Program> = kernels.iter().map(|(_, _, p)| p).collect();
    let uncached = {
        let programs = programs.clone();
        let cm = cm.clone();
        time_best(Box::new(move || {
            for _ in 0..REPS {
                for p in &programs {
                    analyze_program(std::hint::black_box(p), &cm).expect("analyses");
                }
            }
        }))
    };
    let memoized = {
        let programs = programs.clone();
        let cm = cm.clone();
        let cache = AnalysisCache::new();
        for p in &programs {
            analyze_program_cached(p, &cm, &cache).expect("warms");
        }
        time_best(Box::new(move || {
            for _ in 0..REPS {
                for p in &programs {
                    analyze_program_cached(std::hint::black_box(p), &cm, &cache).expect("replays");
                }
            }
        }))
    };
    let analyses = (REPS * programs.len()) as f64;
    let per_sec = |t: Duration| analyses / t.as_secs_f64().max(1e-9);

    let baseline = Baseline {
        bench: "wcet_tightness".into(),
        engine: "ipet_loop_nest_dp".into(),
        kernels: tightness,
        analyses_per_sec_uncached: per_sec(uncached),
        analyses_per_sec_memoized: per_sec(memoized),
        memo_speedup: memoized.as_secs_f64().max(1e-9).recip() * uncached.as_secs_f64(),
    };
    println!(
        "wcet_tightness: ratios {:?}; {:.0} analyses/s uncached, {:.0} memoized ({:.1}x)",
        baseline
            .kernels
            .iter()
            .map(|k| format!("{}:{:.3}", k.app, k.tightness_ratio))
            .collect::<Vec<_>>(),
        baseline.analyses_per_sec_uncached,
        baseline.analyses_per_sec_memoized,
        baseline.memo_speedup,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wcet.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(path, json + "\n").expect("baseline written");

    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    c.bench_function("wcet_ipet_analyze_four_kernels", |b| {
        b.iter(|| {
            for p in &programs {
                analyze_program(std::hint::black_box(p), &cm).expect("analyses");
            }
        })
    });
    c.final_summary();
}
