//! The evaluation suite: prints every paper table (E0–E5, A1–A3) and then
//! times the toolchain's hot components with Criterion.
//!
//! Run with `cargo bench --workspace`; the printed tables are captured in
//! `EXPERIMENTS.md` at the repository root.

use criterion::{criterion_group, Criterion};
use teamplay_bench::{ablations, experiments};

fn print_experiment_tables() {
    println!("===============================================================");
    println!(" TeamPlay reproduction — evaluation tables (paper Section IV)");
    println!("===============================================================\n");
    println!("{}", experiments::e0_workflows());
    let (_, t) = experiments::e1_camera_pill();
    println!("{t}");
    let (_, t) = experiments::e2_spacewire();
    println!("{t}");
    let (_, t) = experiments::e3_uav();
    println!("{t}");
    let (_, t) = experiments::e4_parking();
    println!("{t}");
    let (_, t) = experiments::e5_security();
    println!("{t}");
    let (_, t) = ablations::a1_fpa_vs_random();
    println!("{t}");
    let (_, t) = ablations::a2_multiversion();
    println!("{t}");
    let (_, t) = ablations::a3_model_fit();
    println!("{t}");
    let (_, t) = ablations::a4_analysis_tightness();
    println!("{t}");
    println!("===============================================================\n");
}

fn bench_toolchain(c: &mut Criterion) {
    use teamplay_compiler::{compile_module, CompilerConfig};
    use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
    use teamplay_isa::CycleModel;
    use teamplay_minic::compile_to_ir;
    use teamplay_sim::Machine;

    let src = teamplay_apps::camera_pill::SOURCE;
    let ir = compile_to_ir(src).expect("parses");
    let program = compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();

    c.bench_function("frontend_compile_to_ir", |b| {
        b.iter(|| compile_to_ir(std::hint::black_box(src)).expect("parses"))
    });
    c.bench_function("compiler_balanced_config", |b| {
        b.iter(|| {
            compile_module(std::hint::black_box(&ir), &CompilerConfig::balanced())
                .expect("compiles")
        })
    });
    c.bench_function("wcet_analysis_pipeline", |b| {
        b.iter(|| {
            teamplay_wcet::analyze_program(std::hint::black_box(&program), &cm).expect("wcet")
        })
    });
    c.bench_function("wcec_analysis_pipeline", |b| {
        b.iter(|| analyze_program_energy(std::hint::black_box(&program), &em, &cm).expect("wcec"))
    });
    c.bench_function("machine_one_frame", |b| {
        let mut machine = Machine::new(program.clone()).expect("loads");
        b.iter(|| {
            machine.reset_data();
            let mut dev = teamplay_apps::camera_pill::frame_device(1);
            for (task, _) in teamplay_apps::camera_pill::TASKS {
                let args: &[i32] = if task == "encrypt" { &[7] } else { &[] };
                machine.call(task, args, &mut dev).expect("runs");
            }
        })
    });
}

fn bench_pass_pipelines(c: &mut Criterion) {
    use teamplay_compiler::PassManager;
    use teamplay_minic::compile_to_ir;

    let ir = compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("parses");
    for (name, pipeline) in [
        ("o1", "const_fold,copy_prop,dce"),
        ("o2", "inline(40),strength_reduce,const_fold,copy_prop,dce"),
        ("o3", "inline(80),strength_reduce,const_fold,copy_prop,dce"),
    ] {
        c.bench_function(&format!("pass_pipeline_{name}"), |b| {
            b.iter(|| {
                let mut module = std::hint::black_box(&ir).clone();
                let mut pm = PassManager::from_str(pipeline).expect("pipeline resolves");
                pm.run(&mut module);
                module
            })
        });
    }
}

fn bench_scheduling(c: &mut Criterion) {
    use teamplay_coord::{schedule_energy_aware, CoordTask, ExecOption, TaskSet};

    let tasks: Vec<CoordTask> = (0..8)
        .map(|i| {
            let mut t = CoordTask::new(
                format!("t{i}"),
                vec![
                    ExecOption {
                        label: "fast".into(),
                        core: format!("c{}", i % 2),
                        time_us: 10.0 + i as f64,
                        energy_uj: 100.0,
                        security_level: 0,
                    },
                    ExecOption {
                        label: "green".into(),
                        core: format!("c{}", i % 2),
                        time_us: 25.0 + i as f64,
                        energy_uj: 40.0,
                        security_level: 0,
                    },
                ],
            );
            if i > 0 {
                t.after.push(format!("t{}", i - 1));
            }
            t
        })
        .collect();
    let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 250.0).expect("set");
    c.bench_function("scheduler_multiversion_8_tasks", |b| {
        b.iter(|| schedule_energy_aware(std::hint::black_box(&set)).expect("schedulable"))
    });
}

fn bench_security(c: &mut Criterion) {
    use teamplay_security::metrics::{indiscernibility, ks_distance, welch_t};

    let a: Vec<f64> = (0..512).map(|i| (i % 37) as f64).collect();
    let b2: Vec<f64> = (0..512).map(|i| 3.0 + (i % 41) as f64).collect();
    c.bench_function("leakage_metrics_512_traces", |b| {
        b.iter(|| {
            let t = welch_t(std::hint::black_box(&a), std::hint::black_box(&b2));
            let k = ks_distance(&a, &b2);
            let i = indiscernibility(&a, &b2);
            (t, k, i)
        })
    });
}

criterion_group! {
    name = suite;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_toolchain, bench_pass_pipelines, bench_scheduling, bench_security
}

fn main() {
    print_experiment_tables();
    suite();
    criterion::Criterion::default().final_summary();
}
