//! Scheduler-quality baseline: makespan, energy and feasibility rate of
//! the HEFT upward-rank/insertion scheduler on randomized instance
//! families, plus its energy gap to the branch-and-bound optimum where
//! the option space is exhaustively searchable.
//!
//! Three DAG families (chains, fork-joins, random DAGs), each at a
//! *loose* deadline (1.6× the fastest serial sum — everything fits, the
//! scheduler should sit on the energy floor) and a *tight* one (1.02×
//! for chains, whose critical path is the serial sum itself; 0.7–0.78×
//! for the parallel shapes, where only parallel and gap-filling
//! placements fit) — so the witness chain and upgrade loop are
//! exercised and some instances are genuinely infeasible.
//!
//! Everything is seeded, so the emitted `BENCH_sched.json` is identical
//! across runs and machines; CI re-runs the bench and validates the
//! fields the same way `BENCH_search.json` is validated. A run also
//! re-measures the A2 ablation so the heuristic-vs-optimal gap has a
//! recorded trajectory across PRs. Run with
//! `cargo bench --bench sched_quality`.

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Duration;
use teamplay_coord::{
    schedule_branch_and_bound, schedule_energy_aware, CoordTask, ExecOption, TaskSet,
};

const INSTANCES_PER_FAMILY: usize = 24;

#[derive(Clone, Copy)]
enum Shape {
    Chain,
    ForkJoin,
    RandomDag,
}

/// One random two-core instance: 5–8 tasks, 2–4 options per task with
/// correlated time/energy (faster costs more), edges per `shape`.
fn instance(shape: Shape, seed: u64, slack: f64) -> TaskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let cores = vec!["c0".to_string(), "c1".to_string()];
    let n = rng.gen_range(5..9);
    let mut tasks = Vec::new();
    for i in 0..n {
        let n_opts = rng.gen_range(2..5);
        let base_t = rng.gen_range(5.0..20.0);
        let base_e = base_t * rng.gen_range(6.0..10.0);
        let options: Vec<ExecOption> = (0..n_opts)
            .map(|o| {
                // Option o slows down and greens up relative to option 0.
                let stretch = 1.0 + o as f64 * rng.gen_range(0.4..0.9);
                ExecOption {
                    label: format!("o{o}"),
                    core: cores[rng.gen_range(0..cores.len())].clone(),
                    time_us: base_t * stretch,
                    energy_uj: base_e / stretch,
                    security_level: 0,
                }
            })
            .collect();
        let mut t = CoordTask::new(format!("t{i}"), options);
        match shape {
            Shape::Chain => {
                if i > 0 {
                    t.after.push(format!("t{}", i - 1));
                }
            }
            Shape::ForkJoin => {
                // t0 forks to the middle tasks; the last joins them all.
                if i > 0 && i < n - 1 {
                    t.after.push("t0".to_string());
                } else if i == n - 1 {
                    for d in 1..n - 1 {
                        t.after.push(format!("t{d}"));
                    }
                }
            }
            Shape::RandomDag => {
                for d in 0..i {
                    if rng.gen_bool(0.3) {
                        t.after.push(format!("t{d}"));
                    }
                }
            }
        }
        tasks.push(t);
    }
    let fast_sum: f64 = tasks
        .iter()
        .map(|t| {
            t.options
                .iter()
                .map(|o| o.time_us)
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    TaskSet::new(tasks, cores, fast_sum * slack).expect("generated sets are valid")
}

#[derive(Serialize)]
struct FamilyStats {
    name: String,
    instances: usize,
    /// Instances the heuristic scheduled.
    feasible: usize,
    feasibility_rate: f64,
    mean_makespan_us: f64,
    mean_energy_uj: f64,
    /// Mean heuristic/optimal energy overhead over the feasible
    /// instances, percent (the two solvers agree on feasibility — the
    /// run asserts it — so every feasible instance is compared).
    mean_optimal_gap_pct: f64,
}

fn run_family(name: &str, shape: Shape, slack: f64, seed_base: u64) -> FamilyStats {
    let mut feasible = 0usize;
    let mut makespans = 0.0f64;
    let mut energies = 0.0f64;
    let mut gap = 0.0f64;
    for i in 0..INSTANCES_PER_FAMILY {
        let set = instance(shape, seed_base.wrapping_add(i as u64), slack);
        let h = schedule_energy_aware(&set);
        let o = schedule_branch_and_bound(&set);
        assert_eq!(
            h.is_ok(),
            o.is_ok(),
            "feasibility oracle violated on {name}/{i}"
        );
        let (Ok(h), Ok(o)) = (h, o) else { continue };
        h.validate(&set).expect("heuristic schedule validates");
        feasible += 1;
        makespans += h.makespan_us;
        energies += h.total_energy_uj;
        gap += (h.total_energy_uj / o.total_energy_uj - 1.0) * 100.0;
    }
    FamilyStats {
        name: name.to_string(),
        instances: INSTANCES_PER_FAMILY,
        feasible,
        feasibility_rate: feasible as f64 / INSTANCES_PER_FAMILY as f64,
        mean_makespan_us: if feasible > 0 {
            makespans / feasible as f64
        } else {
            0.0
        },
        mean_energy_uj: if feasible > 0 {
            energies / feasible as f64
        } else {
            0.0
        },
        mean_optimal_gap_pct: if feasible > 0 {
            gap / feasible as f64
        } else {
            0.0
        },
    }
}

#[derive(Serialize)]
struct Baseline {
    bench: String,
    scheduler: String,
    families: Vec<FamilyStats>,
    /// A2 ablation re-measured under this scheduler: multi-version
    /// saving and heuristic-vs-optimal gap (percent).
    a2_mean_saving_pct: f64,
    a2_mean_gap_pct: f64,
}

fn main() {
    // Tight slacks differ per shape: a chain's critical path *is* its
    // fastest serial sum (no placement can beat 1.0×), while fork-join
    // and random DAGs only fit sub-1.0 deadlines through parallel and
    // gap-filling placement.
    let families = vec![
        run_family("chain_loose", Shape::Chain, 1.6, 0x5C4ED001),
        run_family("chain_tight", Shape::Chain, 1.02, 0x5C4ED002),
        run_family("fork_join_loose", Shape::ForkJoin, 1.6, 0x5C4ED003),
        run_family("fork_join_tight", Shape::ForkJoin, 0.78, 0x5C4ED004),
        run_family("random_dag_loose", Shape::RandomDag, 1.6, 0x5C4ED005),
        run_family("random_dag_tight", Shape::RandomDag, 0.7, 0x5C4ED006),
    ];
    let ((a2_saving, a2_gap), _table) = teamplay_bench::ablations::a2_multiversion();
    let baseline = Baseline {
        bench: "sched_quality".into(),
        scheduler: "heft_upward_rank_insertion".into(),
        families,
        a2_mean_saving_pct: a2_saving,
        a2_mean_gap_pct: a2_gap,
    };
    for f in &baseline.families {
        println!(
            "sched_quality: {:<18} feasible {:>2}/{:<2} mean makespan {:>7.1}µs \
             mean energy {:>8.1}µJ gap-to-optimal {:>5.2}%",
            f.name,
            f.feasible,
            f.instances,
            f.mean_makespan_us,
            f.mean_energy_uj,
            f.mean_optimal_gap_pct
        );
    }
    println!(
        "sched_quality: A2 multi-version saving {a2_saving:.1}%, heuristic-vs-optimal gap \
         {a2_gap:.2}%"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(path, json + "\n").expect("baseline written");

    // Criterion timing of the production scheduler on a representative
    // tight random DAG (witness chain + upgrade loop + downgrade sweep).
    let set = instance(Shape::RandomDag, 0x5C4ED0BE1, 0.7);
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    c.bench_function("sched_heft_random_dag", |b| {
        b.iter(|| schedule_energy_aware(std::hint::black_box(&set)))
    });
    c.final_summary();
}
