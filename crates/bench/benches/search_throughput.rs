//! Search-throughput benchmark: genomes evaluated per second for the FPA
//! variant search on the camera-pill module with `FpaConfig::standard()`.
//!
//! Two code paths are timed, both running the *same* batched FPA (same
//! seed, same trajectory), so the delta isolates exactly this PR's two
//! optimisations:
//!
//! * **sequential uncached** — a 1-thread pool, every genome compiled +
//!   analysed from scratch, and the archive recompiled a second time per
//!   Pareto point (the double evaluation the cached driver eliminates);
//! * **memoized + parallel** — `pareto_search_on` with the process-wide
//!   pool width: configuration-keyed caching plus batched parallel
//!   evaluation.
//!
//! The run also replays the trajectory once against a memoized cache to
//! record the *phase-ordering space*: how many distinct decoded
//! pipelines (order-sensitive) and configurations the 208-evaluation
//! budget explores under the permutation genome.
//!
//! The run also records the `dataflow` section: every kernel's frozen
//! pre-dataflow tuned pipeline against its current recommended one
//! (with `gvn`/`load_fwd` where they pay), so CI can assert the new
//! passes never pessimise a tuned build and strictly improve at least
//! one.
//!
//! The run writes `BENCH_search.json` at the repository root so later PRs
//! have a perf trajectory (CI asserts the JSON parses and carries the
//! phase-ordering fields), then registers a Criterion timing for the
//! optimized path. Run with `cargo bench --bench search_throughput`.

use criterion::Criterion;
use minipool::Pool;
use serde::Serialize;
use std::time::{Duration, Instant};
use teamplay_compiler::{
    compile_many, evaluate_module, pareto_search_on, CompileJob, CompilerConfig, DiskStore,
    EvalCache, FpaConfig, MultiObjectiveFpa, ParetoPoint, TaskVariant,
};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::CycleModel;
use teamplay_minic::{compile_to_ir, ir::IrModule};

const TASK: &str = "compress";
const SEED: u64 = 0xBEEF;

/// The baseline: the batched FPA without the memoized-parallel driver
/// optimisations — sequential pool, uncached `evaluate_module`, archive
/// points recompiled (mirroring the pre-PR-2 `pareto_front_for` loop).
fn baseline_front(
    ir: &IrModule,
    cm: &CycleModel,
    em: &IsaEnergyModel,
) -> (Vec<TaskVariant>, usize) {
    let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
    let outcome = fpa.run_on(&Pool::new(1), CompilerConfig::GENOME_DIMS, SEED, |genome| {
        let config = CompilerConfig::from_genome(genome);
        let (_, metrics) = evaluate_module(ir, &config, cm, em).ok()?;
        let m = metrics.of(TASK)?;
        Some(vec![
            m.wcet_cycles as f64,
            m.wcec_pj,
            m.code_halfwords as f64,
        ])
    });
    let evaluations = outcome.stats.evaluations;
    let mut variants: Vec<TaskVariant> = Vec::new();
    for ParetoPoint { genome, .. } in outcome.archive {
        let config = CompilerConfig::from_genome(&genome);
        if variants.iter().any(|v| v.config == config) {
            continue;
        }
        let Ok((program, metrics)) = evaluate_module(ir, &config, cm, em) else {
            continue;
        };
        let m = *metrics.of(TASK).expect("task analysed");
        variants.push(TaskVariant {
            config,
            metrics: m,
            program: std::sync::Arc::new(program),
            security: None,
        });
    }
    variants.sort_by_key(|v| v.metrics.wcet_cycles);
    (variants, evaluations)
}

/// Best-of-`runs` wall-clock for `f`.
fn time_best<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<Duration> = None;
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let r = f();
        let took = start.elapsed();
        if best.is_none_or(|b| took < b) {
            best = Some(took);
        }
        last = Some(r);
    }
    (best.expect("runs >= 1"), last.expect("runs >= 1"))
}

/// How much of the phase-ordering space one search budget actually
/// touches: the same FPA trajectory's genomes, decoded and deduplicated.
#[derive(Serialize)]
struct PhaseOrdering {
    genome_dims: usize,
    evaluations: usize,
    /// Distinct decoded pass *pipelines* (order-sensitive strings).
    distinct_pipelines: usize,
    /// Distinct full configurations (pipeline + codegen knobs) — the
    /// eval cache's key space, equal to its miss count.
    distinct_configs: usize,
}

/// Replay the exact search trajectory (same seed, memoized evaluation,
/// so genuinely the genomes the timed runs saw) and count the distinct
/// phenotypes the budget explored.
fn phase_ordering_space(ir: &IrModule, cm: &CycleModel, em: &IsaEnergyModel) -> PhaseOrdering {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    let cache = EvalCache::new(ir, cm, em);
    let pipelines = Mutex::new(BTreeSet::new());
    let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
    let outcome = fpa.run_on(&Pool::new(1), CompilerConfig::GENOME_DIMS, SEED, |genome| {
        let config = CompilerConfig::from_genome(genome);
        pipelines
            .lock()
            .expect("lock")
            .insert(config.pipeline.to_string());
        let (_, metrics) = cache.evaluate(&config)?;
        let m = metrics.of(TASK)?;
        Some(vec![
            m.wcet_cycles as f64,
            m.wcec_pj,
            m.code_halfwords as f64,
        ])
    });
    PhaseOrdering {
        genome_dims: CompilerConfig::GENOME_DIMS,
        evaluations: outcome.stats.evaluations,
        distinct_pipelines: pipelines.into_inner().expect("lock").len(),
        distinct_configs: cache.misses(),
    }
}

/// Batched `compile_many` throughput over the persistent store: the
/// same job fleet run cold (empty store) and warm (fully populated,
/// fresh caches — a new process's view).
#[derive(Serialize)]
struct BatchThroughput {
    /// Jobs submitted (with duplicates, as a client fleet would).
    jobs: usize,
    /// Jobs actually searched after content-hash dedup.
    unique_jobs: usize,
    /// `(jobs - unique_jobs) / jobs`.
    dedup_rate: f64,
    cold_secs: f64,
    cold_modules_per_sec: f64,
    warm_secs: f64,
    warm_modules_per_sec: f64,
    /// Warm-over-cold throughput ratio (≥ 1 when the store pays off).
    warm_over_cold: f64,
    /// Disk traffic of the warm batch: every distinct configuration
    /// must be answered from the store…
    warm_disk_hits: usize,
    /// …and none compiled (0 by the warm-start contract).
    warm_disk_misses: usize,
}

/// Time the batched front-end cold and warm over one temp-dir store.
fn batch_throughput(cm: &CycleModel, em: &IsaEnergyModel, pool: &Pool) -> BatchThroughput {
    let apps: Vec<(&str, &str, &str)> = vec![
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
        ),
        ("spacewire", teamplay_apps::spacewire::SOURCE, "crc_frame"),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE, "predetect"),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
        ),
    ];
    // Three copies of each module: a 12-job batch, 4 unique.
    let jobs: Vec<CompileJob> = apps
        .iter()
        .flat_map(|(app, src, task)| {
            (0..3).map(move |copy| CompileJob {
                id: format!("{app}#{copy}"),
                ir: compile_to_ir(src).expect("front-end"),
                tasks: vec![task.to_string()],
                fpa: FpaConfig::tiny(),
                seed: SEED,
            })
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("teamplay-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).expect("store opens");

    // Cold is necessarily a single run — a second pass would be warm.
    let cold_start = Instant::now();
    let (_, cold) = compile_many(pool, &jobs, cm, em, Some(&store));
    let cold_time = cold_start.elapsed();

    // Warm reruns are idempotent (the store stays fully populated), so
    // take the best of three like the other timings.
    let (warm_time, warm) = time_best(3, || {
        let store = DiskStore::open(&dir).expect("store reopens");
        let (_, stats) = compile_many(pool, &jobs, cm, em, Some(&store));
        stats
    });
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(warm.search.disk_misses, 0, "warm batch must not compile");
    let mps = |t: Duration| jobs.len() as f64 / t.as_secs_f64().max(1e-9);
    BatchThroughput {
        jobs: cold.jobs,
        unique_jobs: cold.unique_jobs,
        dedup_rate: cold.dedup_rate,
        cold_secs: cold_time.as_secs_f64(),
        cold_modules_per_sec: mps(cold_time),
        warm_secs: warm_time.as_secs_f64(),
        warm_modules_per_sec: mps(warm_time),
        warm_over_cold: cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
        warm_disk_hits: warm.search.disk_hits,
        warm_disk_misses: warm.search.disk_misses,
    }
}

/// The 3-D (time/energy/leakage) secure search on the camera-pill
/// crypto task: per-rung front composition and best leakage scores.
/// Mirrors the rig of `tests/security_search_oracle.rs`, so the CI rule
/// `rung1_min_leakage < rung0_min_leakage` restates the oracle's
/// "the ladder strictly cuts leakage" at baseline level.
#[derive(Serialize)]
struct SecuritySearch {
    task: String,
    secure_genome_dims: usize,
    evaluations: usize,
    variants: usize,
    rung0_variants: usize,
    rung1_variants: usize,
    rung0_min_leakage: f64,
    rung1_min_leakage: f64,
    secs: f64,
}

/// Run the secure search once and summarise its front per rung.
fn security_search(
    ir: &IrModule,
    cm: &CycleModel,
    em: &IsaEnergyModel,
    pool: &Pool,
) -> SecuritySearch {
    use teamplay_compiler::{ladderised_ir, pareto_search_secure_on, LeakageRig};
    use teamplay_security::SecretSpec;
    let (hard, reports) = ladderised_ir(ir);
    assert!(reports["encrypt"].fully_hardened(), "{reports:?}");
    let rig = LeakageRig {
        arg_count: 1,
        secret: SecretSpec {
            arg_index: 0,
            class0: -123,
            class1: 77,
        },
        traces_per_class: 8,
        public_lo: 0,
        public_hi: 256,
        seed: 11,
    };
    let start = Instant::now();
    let front = pareto_search_secure_on(
        pool,
        ir,
        &hard,
        "encrypt",
        cm,
        em,
        FpaConfig::tiny(),
        0xA11CE,
        &rig,
    );
    let secs = start.elapsed().as_secs_f64();
    let of_rung = |rung: u32| {
        front
            .variants
            .iter()
            .filter_map(|v| v.security.filter(|s| s.rung == rung))
            .collect::<Vec<_>>()
    };
    let (r0, r1) = (of_rung(0), of_rung(1));
    let min_leak = |rs: &[teamplay_compiler::VariantSecurity]| {
        rs.iter().map(|s| s.leakage).fold(f64::INFINITY, f64::min)
    };
    assert!(
        !r0.is_empty() && !r1.is_empty(),
        "both rungs must survive on the camera-pill front"
    );
    SecuritySearch {
        task: "encrypt".into(),
        secure_genome_dims: teamplay_compiler::SECURE_GENOME_DIMS,
        evaluations: front.stats.evaluations,
        variants: front.variants.len(),
        rung0_variants: r0.len(),
        rung1_variants: r1.len(),
        rung0_min_leakage: min_leak(&r0),
        rung1_min_leakage: min_leak(&r1),
        secs,
    }
}

/// Tuned-pipeline delta from the dataflow-backed passes, per kernel:
/// the pre-dataflow tuned pipeline (as shipped before `gvn`/`load_fwd`
/// existed) against the current `recommended_pipeline()`, both
/// evaluated under today's compiler, so the delta isolates the pass
/// change rather than unrelated codegen drift.
#[derive(Serialize)]
struct DataflowKernel {
    app: String,
    task: String,
    baseline_pipeline: String,
    pipeline: String,
    baseline_wcet_cycles: u64,
    baseline_wcec_pj: f64,
    baseline_code_halfwords: usize,
    wcet_cycles: u64,
    wcec_pj: f64,
    code_halfwords: usize,
    /// New vector dominates: ≤ everywhere, < somewhere.
    strictly_better: bool,
}

/// The tuned pipelines as of the last pre-dataflow release, frozen as
/// strings so the comparison target cannot silently drift with the
/// apps crate.
const PRE_DATAFLOW_PIPELINES: [(&str, &str); 4] = [
    (
        "camera_pill",
        "inline(24),licm,cse,const_fold,copy_prop,dce",
    ),
    (
        "spacewire",
        "inline(40),licm,cse,unroll(8),strength_reduce,const_fold,copy_prop,dce,block_layout",
    ),
    (
        "uav",
        "inline(24),licm,cse,unroll(64),const_fold,copy_prop,dce,block_layout",
    ),
    (
        "parking",
        "licm,cse,strength_reduce,const_fold,copy_prop,dce,block_layout",
    ),
];

/// Evaluate every kernel under its frozen pre-dataflow pipeline and its
/// current recommended one.
fn dataflow_deltas(cm: &CycleModel, em: &IsaEnergyModel) -> Vec<DataflowKernel> {
    let kernels = [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
        ),
        ("spacewire", teamplay_apps::spacewire::SOURCE, "crc_frame"),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE, "predetect"),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
        ),
    ];
    let recommended: std::collections::HashMap<&str, &str> =
        teamplay_apps::recommended_pipelines().into_iter().collect();
    kernels
        .iter()
        .map(|(app, src, task)| {
            let ir = compile_to_ir(src).expect("kernel compiles");
            let eval = |pipeline: &str| {
                let config = CompilerConfig {
                    pipeline: pipeline.parse().expect("pipeline parses"),
                    mul_shift_add: false,
                    pinned_regs: 0,
                };
                let (_, metrics) = evaluate_module(&ir, &config, cm, em).expect("evaluates");
                *metrics.of(task).expect("task analysed")
            };
            let baseline_pipeline = PRE_DATAFLOW_PIPELINES
                .iter()
                .find(|(a, _)| a == app)
                .expect("frozen baseline per app")
                .1;
            let pipeline = recommended[app];
            let (base, new) = (eval(baseline_pipeline), eval(pipeline));
            let no_worse = new.wcet_cycles <= base.wcet_cycles
                && new.wcec_pj <= base.wcec_pj
                && new.code_halfwords <= base.code_halfwords;
            let somewhere_better = new.wcet_cycles < base.wcet_cycles
                || new.wcec_pj < base.wcec_pj
                || new.code_halfwords < base.code_halfwords;
            DataflowKernel {
                app: (*app).into(),
                task: (*task).into(),
                baseline_pipeline: baseline_pipeline.into(),
                pipeline: pipeline.into(),
                baseline_wcet_cycles: base.wcet_cycles,
                baseline_wcec_pj: base.wcec_pj,
                baseline_code_halfwords: base.code_halfwords,
                wcet_cycles: new.wcet_cycles,
                wcec_pj: new.wcec_pj,
                code_halfwords: new.code_halfwords,
                strictly_better: no_worse && somewhere_better,
            }
        })
        .collect()
}

#[derive(Serialize)]
struct Baseline {
    bench: String,
    fpa: String,
    task: String,
    threads: usize,
    evaluations: usize,
    cache_misses: usize,
    variants: usize,
    sequential_uncached_secs: f64,
    sequential_uncached_genomes_per_sec: f64,
    optimized_secs: f64,
    optimized_genomes_per_sec: f64,
    speedup: f64,
    phase_ordering: PhaseOrdering,
    batch: BatchThroughput,
    security: SecuritySearch,
    dataflow: Vec<DataflowKernel>,
}

fn main() {
    let ir = compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("parses");
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let pool = minipool::global();

    let (base_time, (base_variants, evaluations)) = time_best(3, || baseline_front(&ir, &cm, &em));
    let (opt_time, front) = time_best(3, || {
        pareto_search_on(pool, &ir, TASK, &cm, &em, FpaConfig::standard(), SEED)
    });
    assert_eq!(
        base_variants.len(),
        front.variants.len(),
        "memoized+parallel search changed the front"
    );

    let phase_ordering = phase_ordering_space(&ir, &cm, &em);
    let batch = batch_throughput(&cm, &em, pool);
    let security = security_search(&ir, &cm, &em, pool);
    let dataflow = dataflow_deltas(&cm, &em);

    let gps = |evals: usize, t: Duration| evals as f64 / t.as_secs_f64().max(1e-9);
    let speedup = base_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9);
    let baseline = Baseline {
        bench: "search_throughput".into(),
        fpa: "standard".into(),
        task: TASK.into(),
        threads: pool.threads(),
        evaluations,
        cache_misses: front.stats.cache_misses,
        variants: front.variants.len(),
        sequential_uncached_secs: base_time.as_secs_f64(),
        sequential_uncached_genomes_per_sec: gps(evaluations, base_time),
        optimized_secs: opt_time.as_secs_f64(),
        optimized_genomes_per_sec: gps(evaluations, opt_time),
        speedup,
        phase_ordering,
        batch,
        security,
        dataflow,
    };
    println!(
        "search_throughput: sequential {:.0} genomes/s, memoized+parallel {:.0} genomes/s \
         ({speedup:.2}x, {} threads, {} distinct compiles for {} evaluations; \
         phase-ordering space: {} distinct pipelines / {} distinct configs)",
        baseline.sequential_uncached_genomes_per_sec,
        baseline.optimized_genomes_per_sec,
        baseline.threads,
        baseline.cache_misses,
        baseline.evaluations,
        baseline.phase_ordering.distinct_pipelines,
        baseline.phase_ordering.distinct_configs,
    );
    println!(
        "batch: {} jobs ({} unique, {:.0}% dedup) — cold {:.1} modules/s, \
         warm {:.1} modules/s ({:.2}x, {} disk hits / {} compiles)",
        baseline.batch.jobs,
        baseline.batch.unique_jobs,
        baseline.batch.dedup_rate * 100.0,
        baseline.batch.cold_modules_per_sec,
        baseline.batch.warm_modules_per_sec,
        baseline.batch.warm_over_cold,
        baseline.batch.warm_disk_hits,
        baseline.batch.warm_disk_misses,
    );
    for k in &baseline.dataflow {
        println!(
            "dataflow: {:12} {:10} wcet {} -> {} ({}), wcec {:.0} -> {:.0}, size {} -> {}",
            k.app,
            k.task,
            k.baseline_wcet_cycles,
            k.wcet_cycles,
            if k.strictly_better {
                "strictly better"
            } else {
                "no worse"
            },
            k.baseline_wcec_pj,
            k.wcec_pj,
            k.baseline_code_halfwords,
            k.code_halfwords,
        );
    }
    println!(
        "security: {} variants ({} rung0 / {} rung1) — min leakage rung0 {:.3e}, \
         rung1 {:.3e} in {:.1}s",
        baseline.security.variants,
        baseline.security.rung0_variants,
        baseline.security.rung1_variants,
        baseline.security.rung0_min_leakage,
        baseline.security.rung1_min_leakage,
        baseline.security.secs,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(path, json + "\n").expect("baseline written");

    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    c.bench_function("search_throughput_standard", |b| {
        b.iter(|| {
            pareto_search_on(
                pool,
                std::hint::black_box(&ir),
                TASK,
                &cm,
                &em,
                FpaConfig::standard(),
                SEED,
            )
        })
    });
    c.final_summary();
}
