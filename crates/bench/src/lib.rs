//! # teamplay-bench — the evaluation harness
//!
//! One function per experiment of the paper's evaluation (Section IV) and
//! per design-choice ablation, each returning a structured result *and*
//! rendering the paper-vs-measured table. `cargo bench` prints every
//! table (via `benches/criterion_suite.rs`) and then times the toolchain
//! components with Criterion; the `EXPERIMENTS.md` at the repository root
//! records a captured run.
//!
//! | id | paper claim | function |
//! |----|-------------|----------|
//! | E0a/E0b | Fig. 1 / Fig. 2 workflows run end-to-end | [`experiments::e0_workflows`] |
//! | E1 | camera pill: 18 % perf / 19 % energy | [`experiments::e1_camera_pill`] |
//! | E2 | SpaceWire: 52 % energy, deadlines met | [`experiments::e2_spacewire`] |
//! | E3 | UAV: 18 % energy ⇒ ≈ +4 min flight | [`experiments::e3_uav`] |
//! | E4 | DL: variant table + parity with hand-tuned | [`experiments::e4_parking`] |
//! | E5 | security metrics + ladderisation on synthetic M0 benchmarks | [`experiments::e5_security`] |
//! | A1 | FPA vs random search | [`ablations::a1_fpa_vs_random`] |
//! | A2 | multi-version vs single-version scheduling | [`ablations::a2_multiversion`] |
//! | A3 | energy-model fit vs trace count | [`ablations::a3_model_fit`] |

pub mod ablations;
pub mod experiments;

/// Render a percentage improvement `(base - new) / base`.
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100.0, 82.0), 18.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }
}
