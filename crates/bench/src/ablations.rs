//! Design-choice ablations (A1–A3): the studies DESIGN.md calls out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teamplay_apps::camera_pill;
use teamplay_compiler::{evaluate_module, CompilerConfig, FpaConfig, MultiObjectiveFpa};
use teamplay_coord::{
    schedule_branch_and_bound, schedule_energy_aware, CoordTask, ExecOption, TaskSet,
};
use teamplay_energy::fitting::{evaluate as evaluate_fit, fit_isa_model, FitSample};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;
use teamplay_sim::Machine;

/// A1 — FPA vs uniform random search at equal evaluation budget.
///
/// Returns `(fpa_front_size, random_front_size, fpa_best_energy,
/// random_best_energy)` and the rendered table.
pub fn a1_fpa_vs_random() -> ((usize, usize, f64, f64), String) {
    let ir = compile_to_ir(camera_pill::SOURCE).expect("parses");
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let task = "compress";

    let eval = |genome: &[f64]| -> Option<Vec<f64>> {
        let config = CompilerConfig::from_genome(genome);
        let (_, metrics) = evaluate_module(&ir, &config, &cm, &em).ok()?;
        let m = metrics.of(task)?;
        Some(vec![
            m.wcet_cycles as f64,
            m.wcec_pj,
            m.code_halfwords as f64,
        ])
    };

    let fpa_cfg = FpaConfig::standard();
    let fpa = MultiObjectiveFpa::new(fpa_cfg);
    let fpa_out = fpa.run(CompilerConfig::GENOME_DIMS, 42, eval);

    // Random search with the same number of evaluations.
    let mut rng = StdRng::seed_from_u64(42);
    let mut random_front: Vec<Vec<f64>> = Vec::new();
    for _ in 0..fpa_out.stats.evaluations {
        let genome: Vec<f64> = (0..CompilerConfig::GENOME_DIMS)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        if let Some(obj) = eval(&genome) {
            if !random_front
                .iter()
                .any(|p| teamplay_compiler::fpa::dominates(p, &obj) || *p == obj)
            {
                random_front.retain(|p| !teamplay_compiler::fpa::dominates(&obj, p));
                random_front.push(obj);
            }
        }
    }

    let best_energy = |objs: &[Vec<f64>]| objs.iter().map(|o| o[1]).fold(f64::INFINITY, f64::min);
    let fpa_objs: Vec<Vec<f64>> = fpa_out
        .archive
        .iter()
        .map(|p| p.objectives.clone())
        .collect();
    let fpa_best = best_energy(&fpa_objs);
    let rnd_best = best_energy(&random_front);

    let mut out = String::new();
    out.push_str("## A1 — FPA vs random search (equal evaluation budget)\n\n");
    out.push_str(
        "| search | evaluations | Pareto points | best energy (µJ) |\n|---|---|---|---|\n",
    );
    out.push_str(&format!(
        "| FPA (ref [5]) | {} | {} | {:.2} |\n",
        fpa_out.stats.evaluations,
        fpa_out.archive.len(),
        fpa_best / 1e6
    ));
    out.push_str(&format!(
        "| uniform random | {} | {} | {:.2} |\n\n",
        fpa_out.stats.evaluations,
        random_front.len(),
        rnd_best / 1e6
    ));
    (
        (
            fpa_out.archive.len(),
            random_front.len(),
            fpa_best,
            rnd_best,
        ),
        out,
    )
}

/// A2 — multi-version scheduling vs single-version (fastest-only), and
/// the heuristic's gap to the branch-and-bound optimum, over random DAGs.
///
/// Returns `(mean_saving_pct, mean_gap_pct)` and the table.
pub fn a2_multiversion() -> ((f64, f64), String) {
    let mut rng = StdRng::seed_from_u64(7);
    let cores = vec!["c0".to_string(), "c1".to_string()];
    let mut savings = Vec::new();
    let mut gaps = Vec::new();
    let mut out = String::new();
    out.push_str("## A2 — multi-version vs single-version scheduling (refs [20][21])\n\n");
    out.push_str("| DAG | single-version energy | multi-version energy | saving | heuristic/optimal |\n|---|---|---|---|---|\n");

    for dag in 0..6 {
        // Random fork-join DAG of 6 tasks with 2 versions per task.
        let n = 6;
        let mut tasks = Vec::new();
        for i in 0..n {
            let fast_t = rng.gen_range(5.0..20.0);
            let fast_e = fast_t * rng.gen_range(6.0..10.0);
            let slow_t = fast_t * rng.gen_range(1.8..2.6);
            let slow_e = fast_e * rng.gen_range(0.35..0.6);
            let core = cores[i % 2].clone();
            let mut t = CoordTask::new(
                format!("t{i}"),
                vec![
                    ExecOption {
                        label: "fast".into(),
                        core: core.clone(),
                        time_us: fast_t,
                        energy_uj: fast_e,
                        security_level: 0,
                    },
                    ExecOption {
                        label: "green".into(),
                        core,
                        time_us: slow_t,
                        energy_uj: slow_e,
                        security_level: 0,
                    },
                ],
            );
            if i > 0 {
                // Chain/fork mix: depend on a random earlier task.
                let dep = rng.gen_range(0..i);
                t.after.push(format!("t{dep}"));
            }
            tasks.push(t);
        }
        // Deadline with moderate slack: 1.6× the all-fast critical path
        // estimate.
        let fast_sum: f64 = tasks.iter().map(|t| t.options[0].time_us).sum();
        let deadline = fast_sum * 1.1;

        let multi_set = TaskSet::new(tasks.clone(), cores.clone(), deadline).expect("set");
        let single_set = TaskSet::new(
            tasks
                .iter()
                .map(|t| {
                    let mut s = t.clone();
                    s.options.truncate(1); // fastest only
                    s
                })
                .collect(),
            cores.clone(),
            deadline,
        )
        .expect("set");

        let multi = schedule_energy_aware(&multi_set).expect("multi schedulable");
        let single = schedule_energy_aware(&single_set).expect("single schedulable");
        let optimal = schedule_branch_and_bound(&multi_set).expect("optimal");
        let saving =
            (single.total_energy_uj - multi.total_energy_uj) / single.total_energy_uj * 100.0;
        let gap = multi.total_energy_uj / optimal.total_energy_uj;
        savings.push(saving);
        gaps.push((gap - 1.0) * 100.0);
        out.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.1} % | {:.3} |\n",
            dag, single.total_energy_uj, multi.total_energy_uj, saving, gap
        ));
    }
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    out.push_str(&format!(
        "\nmean multi-version saving {mean_saving:.1} %, mean heuristic-vs-optimal gap {mean_gap:.2} %\n\n"
    ));
    ((mean_saving, mean_gap), out)
}

/// Build a random PG32 microbenchmark with a distinct instruction-class
/// mix — the characterisation methodology of ref \[8\], which profiles the
/// target with class-exercising kernels rather than whole applications.
fn random_microbench(rng: &mut StdRng) -> teamplay_isa::Program {
    use teamplay_isa::{AluOp, Block, BlockId, Function, Insn, Operand, Program, Reg, DATA_BASE};
    let mut insns = Vec::new();
    insns.push(Insn::MovImm32 {
        rd: Reg::R1,
        imm: DATA_BASE as i32,
    });
    let n_groups = rng.gen_range(3..9);
    for _ in 0..n_groups {
        let kind = rng.gen_range(0..8);
        let reps = rng.gen_range(1..40);
        for _ in 0..reps {
            let insn = match kind {
                0 => Insn::Alu {
                    op: AluOp::Add,
                    rd: Reg::R2,
                    rn: Reg::R2,
                    src: Operand::Imm(3),
                },
                1 => Insn::Alu {
                    op: AluOp::Mul,
                    rd: Reg::R2,
                    rn: Reg::R2,
                    src: Operand::Imm(5),
                },
                2 => Insn::Alu {
                    op: AluOp::Div,
                    rd: Reg::R2,
                    rn: Reg::R2,
                    src: Operand::Imm(3),
                },
                3 => Insn::Ldr {
                    rd: Reg::R3,
                    base: Reg::R1,
                    offset: Operand::Imm(0),
                },
                4 => Insn::Str {
                    rs: Reg::R3,
                    base: Reg::R1,
                    offset: Operand::Imm(4),
                },
                5 => Insn::Out {
                    rs: Reg::R2,
                    port: 1,
                },
                6 => Insn::Nop,
                _ => Insn::Push {
                    regs: vec![Reg::R4, Reg::R5],
                },
            };
            insns.push(insn.clone());
            if matches!(insn, Insn::Push { .. }) {
                insns.push(Insn::Pop {
                    regs: vec![Reg::R4, Reg::R5],
                });
            }
        }
    }
    let mut p = Program::new();
    p.globals.insert("scratch".into(), vec![0; 8]);
    // A few chained blocks so the Branch class is exercised too.
    let blocks = vec![
        Block {
            insns,
            terminator: teamplay_isa::Terminator::Branch(BlockId(1)),
        },
        Block {
            insns: vec![Insn::Nop],
            terminator: teamplay_isa::Terminator::Return,
        },
    ];
    p.add_function(Function {
        name: "bench".into(),
        blocks,
        loop_bounds: Default::default(),
        frame_size: 0,
    });
    p
}

/// A3 — energy-model fitting accuracy vs trace count (ref \[8\]). Samples
/// come from simulator runs of class-exercising microbenchmarks with
/// measurement noise.
///
/// Returns `(trace_counts, mape_pct)` series and the table.
pub fn a3_model_fit() -> ((Vec<usize>, Vec<f64>), String) {
    let mut rng = StdRng::seed_from_u64(31337);
    let mut noise = teamplay_energy::fitting::noise_rng(99);
    let mut pool: Vec<FitSample> = Vec::new();
    for _ in 0..640 {
        let program = random_microbench(&mut rng);
        let mut machine = Machine::new(program).expect("loads");
        let r = machine
            .call("bench", &[], &mut teamplay_sim::NullDevice::new())
            .expect("microbench runs");
        let sample = FitSample {
            class_counts: r.class_counts,
            cycles: r.cycles,
            energy_pj: r.energy_pj,
        }
        .with_noise(0.02, &mut noise);
        pool.push(sample);
    }
    let (eval_set, train_pool) = pool.split_at(120);

    let counts = vec![16, 32, 64, 128, 256, train_pool.len()];
    let mut mapes = Vec::new();
    let mut out = String::new();
    out.push_str("## A3 — energy-model fitting accuracy vs trace count (ref [8])\n\n");
    out.push_str("| traces | MAPE | max APE |\n|---|---|---|\n");
    for &n in &counts {
        let n = n.min(train_pool.len());
        let model = fit_isa_model(&train_pool[..n]).expect("fit");
        let q = evaluate_fit(&model, eval_set);
        mapes.push(q.mape * 100.0);
        out.push_str(&format!(
            "| {n} | {:.2} % | {:.2} % |\n",
            q.mape * 100.0,
            q.max_ape * 100.0
        ));
    }
    out.push_str(
        "\nfitting converges to a few-percent MAPE, matching ref [8]'s reported accuracy class\n\n",
    );
    ((counts, mapes), out)
}

/// A4 — analysis tightness: how far above measurement the static WCET
/// and WCEC bounds sit (the overestimation factor industrial static
/// analysis lives with).
///
/// Returns `(wcet_ratio, wcec_ratio)` per task and the table.
pub fn a4_analysis_tightness() -> (Vec<(String, f64, f64)>, String) {
    use teamplay_energy::analyze_program_energy;
    use teamplay_wcet::analyze_program;

    let ir = compile_to_ir(camera_pill::SOURCE).expect("parses");
    let program =
        teamplay_compiler::compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let wcet = analyze_program(&program, &cm).expect("wcet");
    let wcec = analyze_program_energy(&program, &em, &cm).expect("wcec");
    let mut machine = Machine::new(program).expect("loads");

    let mut rows = Vec::new();
    let mut out = String::new();
    out.push_str(
        "## A4 — static-analysis tightness (bound / worst observed)

",
    );
    out.push_str(
        "| task | WCET bound | worst cycles | ratio | WCEC bound (µJ) | worst energy (µJ) | ratio |
|---|---|---|---|---|---|---|
",
    );
    for (task, _) in camera_pill::TASKS {
        let mut worst_cycles = 0u64;
        let mut worst_energy = 0.0f64;
        for seed in 0..24u32 {
            machine.reset_data();
            let mut dev = camera_pill::frame_device(seed);
            let args: &[i32] = if task == "encrypt" {
                &[seed as i32 * 131 + 7]
            } else {
                &[]
            };
            let r = machine.call(task, args, &mut dev).expect("task runs");
            worst_cycles = worst_cycles.max(r.cycles);
            worst_energy = worst_energy.max(r.energy_pj);
        }
        let bound_c = wcet.wcet_cycles(task).expect("bounded");
        let bound_e = wcec.wcec_pj(task).expect("bounded");
        let rc = bound_c as f64 / worst_cycles as f64;
        let re = bound_e / worst_energy;
        out.push_str(&format!(
            "| {task} | {bound_c} | {worst_cycles} | {rc:.2} | {:.1} | {:.1} | {re:.2} |
",
            bound_e / 1e6,
            worst_energy / 1e6
        ));
        rows.push((task.to_string(), rc, re));
    }
    out.push_str(
        "
bounds are safe (ratio ≥ 1) and within the tightness class of structural IPET analyses

",
    );
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_bounds_are_safe_and_not_absurd() {
        let (rows, table) = a4_analysis_tightness();
        for (task, rc, re) in rows {
            assert!(rc >= 1.0, "{task}: unsafe WCET bound! {table}");
            assert!(re >= 1.0, "{task}: unsafe WCEC bound! {table}");
            assert!(rc < 6.0, "{task}: WCET bound uselessly loose ({rc:.2})");
            assert!(re < 6.0, "{task}: WCEC bound uselessly loose ({re:.2})");
        }
    }

    #[test]
    fn a1_fpa_not_worse_than_random() {
        let ((fpa_n, _rnd_n, fpa_best, rnd_best), table) = a1_fpa_vs_random();
        assert!(fpa_n >= 2, "{table}");
        assert!(
            fpa_best <= rnd_best * 1.05,
            "FPA best {fpa_best} vs random {rnd_best}"
        );
    }

    #[test]
    fn a2_multiversion_saves_energy_and_heuristic_is_near_optimal() {
        let ((saving, gap), table) = a2_multiversion();
        assert!(saving > 5.0, "multi-version must save energy: {table}");
        // The HEFT upward-rank/insertion scheduler measures a 1.71 %
        // mean gap on these DAGs (recorded in BENCH_sched.json); the
        // bound leaves headroom but must not regress toward the old
        // 20 % ceiling.
        assert!(gap < 5.0, "heuristic too far from optimal: {gap}% {table}");
    }

    #[test]
    fn a3_fit_improves_with_traces() {
        let ((_, mapes), table) = a3_model_fit();
        let first = mapes.first().copied().expect("series");
        let last = mapes.last().copied().expect("series");
        assert!(last <= first + 0.5, "more traces should not hurt: {table}");
        // The ISA-class model has ~5 % irreducible error on mixed
        // microbenchmarks (within-class cost variation the linear model
        // cannot see), so the converged bound must leave headroom above it.
        assert!(
            last < 7.0,
            "converged MAPE should be a few percent: {table}"
        );
    }
}
