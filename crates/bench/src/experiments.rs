//! The Section IV experiments (E0–E5).

use crate::improvement_pct;
use teamplay::complex::{ComplexTask, ComplexWorkflow};
use teamplay::predictable::{PredictableWorkflow, WorkflowConfig};
use teamplay_apps::{camera_pill, parking, spacewire, uav};
use teamplay_compiler::{compile_module, pareto_front_for, CompilerConfig, FpaConfig};
use teamplay_contracts::verify_certificate;
use teamplay_coord::freq::gr712_levels;
use teamplay_coord::{
    dvfs_options, schedule_branch_and_bound, schedule_energy_aware, CoordTask, ExecOption, TaskSet,
};
use teamplay_csl::extract_model;
use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
use teamplay_isa::CycleModel;
use teamplay_minic::{compile_to_ir, parse_and_check};
use teamplay_security::ladder::secret_params_of;
use teamplay_security::{assess_leakage, ladderise, SecretSpec};
use teamplay_sim::{Battery, ComplexPlatform, Machine};
use teamplay_wcet::analyze_program;

/// The "traditional toolchain" baseline the experiments compare
/// against: the preset's codegen knobs with the pipeline selected from
/// the catalogue *by name* — the same string-based selection the
/// workflow's default build uses, and a single source of truth for the
/// knobs ([`CompilerConfig::traditional`]).
fn traditional_baseline() -> CompilerConfig {
    CompilerConfig {
        pipeline: teamplay_apps::catalog().resolve("o1").expect("catalogued"),
        ..CompilerConfig::traditional()
    }
}

/// Measure one full camera-pill frame (4 tasks) on a machine.
fn pill_frame_cost(machine: &mut Machine, seed: u32, key: i32) -> (u64, f64) {
    machine.reset_data();
    let mut dev = camera_pill::frame_device(seed);
    let mut cycles = 0u64;
    let mut energy = 0.0;
    for (task, _) in camera_pill::TASKS {
        let args: &[i32] = if task == "encrypt" { &[key] } else { &[] };
        let r = machine.call(task, args, &mut dev).expect("task runs");
        cycles += r.cycles;
        energy += r.energy_pj;
    }
    (cycles, energy)
}

/// E0: both workflow figures run end-to-end (Fig. 1 and Fig. 2).
pub fn e0_workflows() -> String {
    let mut out = String::new();
    out.push_str("## E0 — workflow figures as executable pipelines\n\n");

    let mut cfg = WorkflowConfig::pg32();
    cfg.fpa = FpaConfig::tiny();
    cfg.leakage_traces = 24;
    let fig1 = PredictableWorkflow::new(cfg)
        .run(camera_pill::SOURCE)
        .expect("Fig. 1 workflow completes");
    verify_certificate(&fig1.certificate, &fig1.evidence).expect("certificate verifies");
    out.push_str(&format!(
        "Fig. 1 (predictable): {} tasks compiled, scheduled (makespan {:.0}µs), \
         certificate with {} obligations VERIFIED\n",
        fig1.tasks.len(),
        fig1.schedule.makespan_us,
        fig1.certificate.obligation_count(),
    ));

    let tasks: Vec<ComplexTask> = uav::sar_pipeline()
        .into_iter()
        .map(|(name, work, after)| ComplexTask { name, work, after })
        .collect();
    let fig2 = ComplexWorkflow::new(ComplexPlatform::tk1())
        .run(&tasks, uav::FRAME_PERIOD_US)
        .expect("Fig. 2 workflow completes");
    out.push_str(&format!(
        "Fig. 2 (complex): {} profiles measured, schedule makespan {:.0}µs, \
         frame energy {:.0}µJ, glue generated ({} bytes)\n\n",
        fig2.profile.profiles.len(),
        fig2.schedule.makespan_us,
        fig2.frame_energy_uj,
        fig2.parallel_glue.len(),
    ));
    out
}

/// Result of E1.
#[derive(Debug, Clone, Copy)]
pub struct E1Result {
    /// Performance improvement over the traditional toolchain (%).
    pub perf_improvement_pct: f64,
    /// Energy improvement (%).
    pub energy_improvement_pct: f64,
}

/// E1 — camera pill (paper: 18 % performance, 19 % energy improvement).
pub fn e1_camera_pill() -> (E1Result, String) {
    let ir = compile_to_ir(camera_pill::SOURCE).expect("pipeline parses");
    // Baseline: the traditional single-objective toolchain.
    let baseline = compile_module(&ir, &traditional_baseline()).expect("baseline compiles");
    let mut base_machine = Machine::new(baseline).expect("baseline loads");
    let (base_cycles, base_energy) = pill_frame_cost(&mut base_machine, 1, 0x5EED);

    // TeamPlay: the full Fig. 1 workflow (per-task Pareto selection).
    let mut cfg = WorkflowConfig::pg32();
    cfg.fpa = FpaConfig::standard();
    cfg.leakage_traces = 24;
    let outcome = PredictableWorkflow::new(cfg)
        .run(camera_pill::SOURCE)
        .expect("workflow completes");
    let mut tp_machine = Machine::new(outcome.program.clone()).expect("teamplay loads");
    let (tp_cycles, tp_energy) = pill_frame_cost(&mut tp_machine, 1, 0x5EED);

    let result = E1Result {
        perf_improvement_pct: improvement_pct(base_cycles as f64, tp_cycles as f64),
        energy_improvement_pct: improvement_pct(base_energy, tp_energy),
    };
    let mut out = String::new();
    out.push_str("## E1 — camera pill (Section IV-A)\n\n");
    out.push_str("| toolchain | frame cycles | frame energy (µJ) |\n|---|---|---|\n");
    out.push_str(&format!(
        "| traditional | {} | {:.1} |\n",
        base_cycles,
        base_energy / 1e6
    ));
    out.push_str(&format!(
        "| TeamPlay | {} | {:.1} |\n\n",
        tp_cycles,
        tp_energy / 1e6
    ));
    out.push_str(&format!(
        "measured: {:.1} % performance, {:.1} % energy improvement (paper: 18 %, 19 %)\n\n",
        result.perf_improvement_pct, result.energy_improvement_pct
    ));
    (result, out)
}

/// Result of E2.
#[derive(Debug, Clone, Copy)]
pub struct E2Result {
    /// Energy improvement over max-frequency baseline (%).
    pub energy_improvement_pct: f64,
    /// Deadline satisfied by the optimised schedule.
    pub deadlines_met: bool,
}

/// E2 — SpaceWire downlink (paper: 52 % energy, all deadlines met).
pub fn e2_spacewire() -> (E2Result, String) {
    let ir = compile_to_ir(spacewire::SOURCE).expect("pipeline parses");
    let cm = CycleModel::leon3();
    let em = IsaEnergyModel::leon3_datasheet();
    let model = extract_model(&parse_and_check(spacewire::SOURCE).expect("front-end"))
        .expect("CSL extracts");
    let levels = gr712_levels();

    // Baseline: traditional compiler, always at the nominal frequency.
    let baseline = compile_module(&ir, &traditional_baseline()).expect("compiles");
    let base_wcet = analyze_program(&baseline, &cm).expect("wcet");
    let base_energy_report = analyze_program_energy(&baseline, &em, &cm).expect("wcec");
    let nominal = *levels.last().expect("levels");
    let mut base_time_us = 0.0;
    let mut base_energy_uj = 0.0;
    for task in spacewire::TASKS {
        let cycles = base_wcet.wcet_cycles(task).expect("bounded");
        let dyn_uj = base_energy_report.wcec_uj(task).expect("bounded");
        let opts = dvfs_options("base", "cpu0", cycles, dyn_uj, &[nominal]);
        base_time_us += opts[0].time_us;
        base_energy_uj += opts[0].energy_uj;
    }

    // TeamPlay: per-task Pareto variants × DVFS levels, scheduled under
    // the 100 ms frame deadline. The per-task searches are independent,
    // so they fan out over the global pool (index-ordered results keep
    // the experiment deterministic); each search gets a slice of the
    // remaining width so the nested batches don't oversubscribe cores,
    // and all four share one evaluation cache over the module so a
    // configuration any task compiled is free for the rest.
    let pool = minipool::global();
    let inner = pool.split_across(model.tasks.len());
    let eval_cache = teamplay_compiler::EvalCache::new(&ir, &cm, &em);
    let fronts = pool.par_map(&model.tasks, |_, spec| {
        teamplay_compiler::pareto_search_with_cache(
            &inner,
            &eval_cache,
            &spec.function,
            FpaConfig::standard(),
            0x5AC3,
        )
        .variants
    });
    let mut coord_tasks = Vec::new();
    for (spec, variants) in model.tasks.iter().zip(fronts) {
        let mut options: Vec<ExecOption> = Vec::new();
        for (vi, v) in variants.iter().enumerate() {
            options.extend(dvfs_options(
                &format!("v{vi}"),
                "cpu0",
                v.metrics.wcet_cycles,
                v.metrics.wcec_pj / 1e6,
                &levels,
            ));
        }
        let mut ct = CoordTask::new(spec.name.clone(), options);
        ct.after = spec.after.clone();
        ct.deadline_us = spec.deadline.map(|d| d.as_us());
        coord_tasks.push(ct);
    }
    let set = TaskSet::new(
        coord_tasks,
        vec!["cpu0".into()],
        spacewire::FRAME_DEADLINE_US,
    )
    .expect("task set");
    let schedule = schedule_energy_aware(&set).expect("schedulable");
    schedule.validate(&set).expect("valid schedule");

    let result = E2Result {
        energy_improvement_pct: improvement_pct(base_energy_uj, schedule.total_energy_uj),
        deadlines_met: schedule.makespan_us <= spacewire::FRAME_DEADLINE_US,
    };
    let mut out = String::new();
    out.push_str("## E2 — SpaceWire downlink (Section IV-B)\n\n");
    out.push_str("| approach | frame time (µs) | frame energy (µJ) |\n|---|---|---|\n");
    out.push_str(&format!(
        "| traditional @ 100 MHz | {base_time_us:.0} | {base_energy_uj:.1} |\n"
    ));
    out.push_str(&format!(
        "| TeamPlay (variants × DVFS) | {:.0} | {:.1} |\n\n",
        schedule.makespan_us, schedule.total_energy_uj
    ));
    for e in &schedule.entries {
        out.push_str(&format!(
            "  {} -> {} (finish {:.0}µs)\n",
            e.task, e.option, e.finish_us
        ));
    }
    out.push_str(&format!(
        "\nmeasured: {:.1} % energy improvement, deadlines met: {} (paper: 52 %, all met)\n\n",
        result.energy_improvement_pct, result.deadlines_met
    ));
    (result, out)
}

/// Result of E3.
#[derive(Debug, Clone, Copy)]
pub struct E3Result {
    /// Software energy improvement (%).
    pub energy_improvement_pct: f64,
    /// Flight minutes gained.
    pub minutes_gained: f64,
    /// Software power of the optimised mapping (W).
    pub software_power_w: f64,
}

/// E3 — UAV search and rescue (paper: 18 % energy ⇒ ≈ +4 min flight;
/// PA: mechanical ≈ 28 W, software 2–11 W).
pub fn e3_uav() -> (E3Result, String) {
    let platform = ComplexPlatform::tk1();
    let tasks: Vec<ComplexTask> = uav::sar_pipeline()
        .into_iter()
        .map(|(name, work, after)| ComplexTask { name, work, after })
        .collect();
    let wf = ComplexWorkflow::new(platform.clone());

    // Baseline: the pre-TeamPlay port — the human mapping already uses
    // the right accelerators, but every core races at its maximum
    // frequency and no energy-aware version selection happens.
    let profile = teamplay_profiler::profile_tasks(
        &platform,
        &tasks
            .iter()
            .map(|t| (t.name.clone(), t.work))
            .collect::<Vec<_>>(),
        wf.runs,
        wf.seed,
    );
    let max_op_label = |core: &str| {
        let c = platform.core(core).expect("profiled core exists");
        format!("#op{}", c.ops.len() - 1)
    };
    let naive_tasks: Vec<CoordTask> = tasks
        .iter()
        .map(|t| {
            let options =
                teamplay_profiler::exec_options_from_profile(&profile, &t.name, wf.margin)
                    .into_iter()
                    .filter(|o| o.label.ends_with(&max_op_label(&o.core)))
                    .collect();
            let mut ct = CoordTask::new(t.name.clone(), options);
            ct.after = t.after.clone();
            ct
        })
        .collect();
    let naive_set = TaskSet::new(
        naive_tasks,
        platform.cores.iter().map(|c| c.name.clone()).collect(),
        uav::FRAME_PERIOD_US,
    )
    .expect("naive set");
    let naive = schedule_energy_aware(&naive_set).expect("naive schedulable");

    // TeamPlay: the full complex workflow.
    let outcome = wf.run(&tasks, uav::FRAME_PERIOD_US).expect("workflow");

    let battery = Battery::sar_drone();
    let idle_w = 0.8; // sensors, memory, radio keep-alive
    let base_est = uav::mission_estimate(&battery, naive.total_energy_uj, idle_w);
    let tp_est = uav::mission_estimate(&battery, outcome.frame_energy_uj, idle_w);

    let result = E3Result {
        energy_improvement_pct: improvement_pct(naive.total_energy_uj, outcome.frame_energy_uj),
        minutes_gained: tp_est.endurance_min - base_est.endurance_min,
        software_power_w: tp_est.software_power_w,
    };
    let mut out = String::new();
    out.push_str("## E3 — UAV search and rescue (Section IV-C)\n\n");
    out.push_str(
        "| mapping | frame energy (µJ) | software power (W) | total power (W) | flight (min) | coverage (km²) |\n|---|---|---|---|---|---|\n",
    );
    out.push_str(&format!(
        "| pre-TeamPlay (all cores @ fmax) | {:.0} | {:.2} | {:.2} | {:.1} | {:.1} |\n",
        naive.total_energy_uj,
        base_est.software_power_w,
        base_est.total_power_w,
        base_est.endurance_min,
        uav::coverage_km2(base_est.endurance_min),
    ));
    out.push_str(&format!(
        "| TeamPlay | {:.0} | {:.2} | {:.2} | {:.1} | {:.1} |\n\n",
        outcome.frame_energy_uj,
        tp_est.software_power_w,
        tp_est.total_power_w,
        tp_est.endurance_min,
        uav::coverage_km2(tp_est.endurance_min),
    ));
    out.push_str(&format!(
        "measured: {:.1} % software-energy improvement, +{:.1} min flight \
         (paper: 18 %, ≈ +4 min); mechanical power {} W, software {:.1} W \
         (paper envelope 2–11 W)\n\n",
        result.energy_improvement_pct,
        result.minutes_gained,
        uav::MECHANICAL_POWER_W,
        result.software_power_w,
    ));
    (result, out)
}

/// Result of E4.
#[derive(Debug, Clone)]
pub struct E4Result {
    /// `(wcet_us, energy_uj, halfwords)` per compiler variant of the
    /// conv layer.
    pub variants: Vec<(f64, f64, usize)>,
    /// TeamPlay vs hand-optimised energy ratio on the TK1 leg.
    pub coordination_vs_hand_ratio: f64,
}

/// E4 — deep-learning deployment (paper: the compiler offers variants
/// with different energy/WCET characteristics; coordination matches the
/// hand-optimised version).
pub fn e4_parking() -> (E4Result, String) {
    // M0 leg: Pareto variants of the convolution layer.
    let ir = compile_to_ir(parking::CONV_KERNEL_SOURCE).expect("kernel parses");
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let variants = pareto_front_for(&ir, "conv_layer", &cm, &em, FpaConfig::standard(), 0xD1);
    let clock = camera_pill::CLOCK_MHZ;
    let rows: Vec<(f64, f64, usize)> = variants
        .iter()
        .map(|v| {
            (
                v.metrics.wcet_cycles as f64 / clock,
                v.metrics.wcec_pj / 1e6,
                v.metrics.code_halfwords,
            )
        })
        .collect();

    // TK1 leg: CNN pipeline scheduled by the coordination layer vs the
    // hand-optimised mapping (exhaustive optimum as the expert stand-in).
    let platform = ComplexPlatform::tk1();
    let cnn: Vec<ComplexTask> = vec![
        ComplexTask {
            name: "conv1".into(),
            work: teamplay_sim::WorkItem {
                ref_mcycles: 90.0,
                gpu_speedup: 9.0,
                utilisation: 1.0,
            },
            after: vec![],
        },
        ComplexTask {
            name: "conv2".into(),
            work: teamplay_sim::WorkItem {
                ref_mcycles: 60.0,
                gpu_speedup: 8.0,
                utilisation: 1.0,
            },
            after: vec!["conv1".into()],
        },
        ComplexTask {
            name: "dense".into(),
            work: teamplay_sim::WorkItem {
                ref_mcycles: 14.0,
                gpu_speedup: 2.0,
                utilisation: 0.9,
            },
            after: vec!["conv2".into()],
        },
        ComplexTask {
            name: "report".into(),
            work: teamplay_sim::WorkItem {
                ref_mcycles: 3.0,
                gpu_speedup: 0.4,
                utilisation: 0.5,
            },
            after: vec!["dense".into()],
        },
    ];
    let profile = teamplay_profiler::profile_tasks(
        &platform,
        &cnn.iter()
            .map(|t| (t.name.clone(), t.work))
            .collect::<Vec<_>>(),
        24,
        7,
    );
    let coord_tasks: Vec<CoordTask> = cnn
        .iter()
        .map(|t| {
            let options = teamplay_profiler::exec_options_from_profile(&profile, &t.name, 1.2);
            let mut ct = CoordTask::new(t.name.clone(), options);
            ct.after = t.after.clone();
            ct
        })
        .collect();
    let deadline_us = 150_000.0;
    let set = TaskSet::new(
        coord_tasks,
        platform.cores.iter().map(|c| c.name.clone()).collect(),
        deadline_us,
    )
    .expect("set");
    let teamplay_sched = schedule_energy_aware(&set).expect("heuristic");
    let hand = schedule_branch_and_bound(&set).expect("optimal");
    let ratio = teamplay_sched.total_energy_uj / hand.total_energy_uj;

    let result = E4Result {
        variants: rows.clone(),
        coordination_vs_hand_ratio: ratio,
    };
    let mut out = String::new();
    out.push_str("## E4 — parking CNN (Section IV-D)\n\n");
    out.push_str("Per-layer compiler variants (conv_layer, Cortex-M0 leg):\n\n");
    out.push_str("| variant | WCET (µs) | energy (µJ) | size (halfwords) |\n|---|---|---|---|\n");
    for (i, (t, e, s)) in rows.iter().enumerate() {
        out.push_str(&format!("| v{i} | {t:.1} | {e:.2} | {s} |\n"));
    }
    out.push_str(&format!(
        "\nTK1 leg: TeamPlay coordination energy / hand-optimised energy = {ratio:.3} \
         (paper: \"performs similarly\")\n\n"
    ));
    (result, out)
}

/// Result of E5 for one benchmark.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Benchmark name.
    pub name: String,
    /// Time-channel t-statistic before hardening.
    pub t_before: f64,
    /// Time-channel t-statistic after ladderisation.
    pub t_after: f64,
    /// Indiscernibility before / after.
    pub ind_before: f64,
    /// Indiscernibility after.
    pub ind_after: f64,
    /// WCET overhead of hardening (%).
    pub overhead_pct: f64,
}

/// E5 — security validation on synthetic PG32 benchmarks (the paper
/// validated its security tools on synthetic Cortex-M0 benchmarks).
pub fn e5_security() -> (Vec<E5Row>, String) {
    let benchmarks: Vec<(&str, &str, usize, SecretSpec)> = vec![
        (
            "modexp (square-and-multiply)",
            "/*@ secret(exp) @*/
             int modexp(int base, int exp, int m) {
                 int result = 1;
                 if (m == 0) { m = 1; }
                 base = base % m;
                 /*@ loop bound(16) @*/
                 for (int i = 0; i < 16; i = i + 1) {
                     if ((exp & 1) != 0) { result = (result * base) % m; }
                     exp = exp >> 1;
                     base = (base * base) % m;
                 }
                 return result;
             }",
            3,
            SecretSpec {
                arg_index: 1,
                class0: 0x0001,
                class1: 0x7FFF,
            },
        ),
        (
            "key-parity round select",
            "/*@ secret(key) @*/
             int round_select(int key, int x) {
                 int r = 0;
                 if ((key & 1) != 0) { r = (x * 13 + key) ^ (x >> 2); } else { r = x + 1; }
                 return r;
             }",
            2,
            SecretSpec {
                arg_index: 0,
                class0: 0x2468,
                class1: 0x1357,
            },
        ),
        (
            "threshold gate",
            "/*@ secret(level) @*/
             int gate(int level, int x) {
                 int r = 0;
                 if (level > 128) { r = x * 5 + level * 3 - (x ^ level); } else { r = x; }
                 return r;
             }",
            2,
            SecretSpec {
                arg_index: 0,
                class0: 0,
                class1: 255,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut out = String::new();
    out.push_str("## E5 — side-channel metrics and ladderisation (synthetic M0 benchmarks)\n\n");
    out.push_str(
        "| benchmark | |t| before | ind. before | |t| after | ind. after | WCET overhead |\n|---|---|---|---|---|---|\n",
    );
    for (name, src, arg_count, spec) in benchmarks {
        let func_name = {
            let ir = compile_to_ir(src).expect("parses");
            ir.functions[0].name.clone()
        };
        // Plain build.
        let ir = compile_to_ir(src).expect("parses");
        let plain = compile_module(&ir, &CompilerConfig::traditional()).expect("compiles");
        let before = assess_leakage(&plain, &func_name, arg_count, spec, 48, 0..4096, 11)
            .expect("assess plain");
        // Hardened build.
        let mut ir2 = compile_to_ir(src).expect("parses");
        for f in &mut ir2.functions {
            let secrets = secret_params_of(f);
            let report = ladderise(f, &secrets);
            assert!(report.fully_hardened(), "{name}: {report:?}");
        }
        let hard = compile_module(&ir2, &CompilerConfig::traditional()).expect("compiles");
        let after = assess_leakage(&hard, &func_name, arg_count, spec, 48, 0..4096, 11)
            .expect("assess hardened");
        // Overhead via WCET.
        let cm = CycleModel::pg32();
        let w_plain = analyze_program(&plain, &cm)
            .expect("wcet")
            .wcet_cycles(&func_name)
            .expect("bounded");
        let w_hard = analyze_program(&hard, &cm)
            .expect("wcet")
            .wcet_cycles(&func_name)
            .expect("bounded");
        let overhead = (w_hard as f64 - w_plain as f64) / w_plain as f64 * 100.0;

        out.push_str(&format!(
            "| {} | {:.1} | {:.2} | {:.1} | {:.2} | {:+.1} % |\n",
            name,
            before.time.welch_t.min(9999.0),
            before.time.indiscernibility,
            after.time.welch_t.min(9999.0),
            after.time.indiscernibility,
            overhead,
        ));
        rows.push(E5Row {
            name: name.to_string(),
            t_before: before.time.welch_t,
            t_after: after.time.welch_t,
            ind_before: before.time.indiscernibility,
            ind_after: after.time.indiscernibility,
            overhead_pct: overhead,
        });
    }
    out.push_str(
        "\nladderised code is statistically indistinguishable on both channels; \
         protection costs bounded extra cycles (the paper's ETS trade-off)\n\n",
    );
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_matches_paper() {
        let (r, table) = e1_camera_pill();
        assert!(table.contains("E1"));
        assert!(
            (8.0..40.0).contains(&r.perf_improvement_pct),
            "performance improvement {:.1}% out of the paper's ballpark",
            r.perf_improvement_pct
        );
        assert!(
            (8.0..40.0).contains(&r.energy_improvement_pct),
            "energy improvement {:.1}% out of the paper's ballpark",
            r.energy_improvement_pct
        );
    }

    #[test]
    fn e2_shape_matches_paper() {
        let (r, _) = e2_spacewire();
        assert!(r.deadlines_met, "all deadlines must be met");
        assert!(
            (30.0..70.0).contains(&r.energy_improvement_pct),
            "energy improvement {:.1}% out of the paper's ballpark (52%)",
            r.energy_improvement_pct
        );
    }

    #[test]
    fn e3_shape_matches_paper() {
        let (r, _) = e3_uav();
        assert!((5.0..45.0).contains(&r.energy_improvement_pct), "{r:?}");
        assert!((1.5..8.0).contains(&r.minutes_gained), "{r:?}");
        assert!((2.0..=11.0).contains(&r.software_power_w), "{r:?}");
    }

    #[test]
    fn e4_offers_variants_and_parity() {
        let (r, _) = e4_parking();
        assert!(r.variants.len() >= 2, "need a variant table");
        assert!(
            r.coordination_vs_hand_ratio <= 1.15,
            "coordination should be within 15% of hand-optimised: {}",
            r.coordination_vs_hand_ratio
        );
    }

    #[test]
    fn e5_hardening_closes_the_channel() {
        let (rows, _) = e5_security();
        for row in rows {
            assert!(
                row.t_before > 4.5,
                "{}: expected leak before, t={}",
                row.name,
                row.t_before
            );
            assert!(
                row.t_after <= 4.5,
                "{}: still leaking after, t={}",
                row.name,
                row.t_after
            );
            assert!(row.ind_after < row.ind_before + 1e-9, "{}", row.name);
        }
    }
}
