//! # teamplay-isa — the PG32 predictable instruction set
//!
//! The TeamPlay predictable-architecture workflow (paper Fig. 1) targets
//! deterministic cores such as the ARM Cortex-M0 and the Gaisler LEON3FT,
//! whose per-instruction cycle counts can be derived statically. This crate
//! defines **PG32**, a synthetic 32-bit predictable ISA that plays the role
//! of those cores throughout the reproduction:
//!
//! * [`Insn`] — the instruction set (ALU, memory, control flow, ports),
//! * [`Program`], [`Function`], [`Block`] — CFG-structured assembly,
//! * [`CycleModel`] — the deterministic timing model used by the WCET
//!   analyser and by the cycle simulator,
//! * [`EnergyClass`] — the Tiwari-style instruction taxonomy shared by the
//!   analytical energy model and the simulator's hidden ground-truth model,
//! * [`encode`] — a binary encoding with a lossless decoder, used to give
//!   programs a realistic code-size metric.
//!
//! PG32 is deliberately small but complete: the Mini-C compiler in
//! `teamplay-compiler` emits it, `teamplay-sim` executes it cycle by cycle,
//! and `teamplay-wcet` / `teamplay-energy` analyse it statically.
//!
//! ```
//! use teamplay_isa::{AluOp, CycleModel, Insn, Operand, Reg};
//!
//! let add = Insn::Alu { op: AluOp::Add, rd: Reg::R0, rn: Reg::R1, src: Operand::Imm(4) };
//! let model = CycleModel::pg32();
//! assert_eq!(model.cycles(&add, false), 1);
//! ```

pub mod asm;
pub mod decoded;
pub mod encode;
pub mod energy_class;
pub mod insn;
pub mod layout;
pub mod program;
pub mod timing;

pub use asm::{parse_function, parse_program, render_function, render_program, AsmParseError};
pub use decoded::{decode_program, DecodedFunction, DecodedImage, DecodedOp, RegListRef};
pub use encode::{decode_insn, encode_insn, DecodeInsnError};
pub use energy_class::{EnergyClass, ENERGY_CLASS_COUNT};
pub use insn::{AluOp, Cond, Insn, Operand, Reg};
pub use layout::{DataLayout, DATA_BASE, MEMORY_BYTES, STACK_TOP};
pub use program::{Block, BlockId, Function, Program, Terminator};
pub use timing::CycleModel;
