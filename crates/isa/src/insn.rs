//! PG32 instruction definitions.
//!
//! PG32 is a load/store architecture with sixteen 32-bit registers. It is
//! modelled loosely on the ARMv6-M (Cortex-M0) profile used by the paper's
//! camera-pill and deep-learning use cases: a single-issue in-order core
//! without caches, so every instruction has a fixed, statically known cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A PG32 general-purpose register.
///
/// `R13` is used by convention as the stack pointer, `R14` as the link
/// register. The program counter is not architecturally visible.
///
/// ```
/// use teamplay_isa::Reg;
/// assert_eq!(Reg::SP, Reg::R13);
/// assert_eq!(Reg::from_index(2), Some(Reg::R2));
/// assert_eq!(Reg::R7.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// Conventional stack pointer.
    pub const SP: Reg = Reg::R13;
    /// Conventional link register.
    pub const LR: Reg = Reg::R14;
    /// Scratch register reserved for the code generator.
    pub const SCRATCH: Reg = Reg::R12;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register's index, 0–15.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given index, or `None` if `idx >= 16`.
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R13 => write!(f, "sp"),
            Reg::R14 => write!(f, "lr"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// Arithmetic/logic operations available to [`Insn::Alu`].
///
/// `Mul` and `Div` are the interesting ones for the ETS trade-off study:
/// on PG32 the hardware multiplier is *fast but power-hungry* (single
/// cycle, high energy class), which is exactly the kind of sweet-spot
/// structure the paper's multi-criteria compiler exploits (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (fast multiplier).
    Mul,
    /// Signed division; division by zero yields zero (hardware convention).
    Div,
    /// Signed remainder; remainder by zero yields zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Orr,
    /// Bitwise exclusive or.
    Eor,
    /// Logical shift left (shift amount taken modulo 32).
    Lsl,
    /// Logical shift right (shift amount taken modulo 32).
    Lsr,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Asr,
}

impl AluOp {
    /// Every ALU operation, used by the encoder and by property tests.
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Orr,
        AluOp::Eor,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
    ];

    /// Textual mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Lsl => "lsl",
            AluOp::Lsr => "lsr",
            AluOp::Asr => "asr",
        }
    }

    /// Apply the operation to two 32-bit values, following PG32 semantics
    /// (wrapping arithmetic, zero result on division by zero).
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Orr => a | b,
            AluOp::Eor => a ^ b,
            AluOp::Lsl => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Lsr => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Asr => a >> (b as u32 & 31),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Condition codes for [`crate::Terminator::CondBranch`] and conditional
/// select. Conditions are evaluated against the flags set by [`Insn::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal (`Z`).
    Eq,
    /// Not equal (`!Z`).
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater or equal.
    Ge,
}

impl Cond {
    /// Every condition code.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// The negation of the condition, e.g. `Eq.negate() == Ne`.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Evaluate the condition for a comparison `a ? b`.
    pub fn holds(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// Textual mnemonic suffix, e.g. `"eq"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The flexible second operand of data-processing instructions: either a
/// register or a 16-bit signed immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A signed immediate; the encoder restricts it to 16 bits, larger
    /// constants must be materialised with [`Insn::MovImm32`].
    Imm(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// A PG32 instruction.
///
/// Control transfer between basic blocks is expressed by the block
/// [`crate::Terminator`], not by instructions, so a `Block` body contains
/// only straight-line instructions (including calls, which return).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Insn {
    /// `rd = rn <op> src`.
    Alu {
        op: AluOp,
        rd: Reg,
        rn: Reg,
        src: Operand,
    },
    /// `rd = src` (register move or 16-bit immediate).
    Mov { rd: Reg, src: Operand },
    /// `rd = imm` for a full 32-bit constant (costs an extra fetch cycle).
    MovImm32 { rd: Reg, imm: i32 },
    /// Compare `rn` with `src` and set the flags.
    Cmp { rn: Reg, src: Operand },
    /// Conditional select: `rd = if cond { rt } else { rf }`.
    ///
    /// This is the constant-time primitive used by the ladderisation
    /// hardening pass (paper refs \[11\], \[12\]); its timing never depends
    /// on the condition.
    Csel {
        cond: Cond,
        rd: Reg,
        rt: Reg,
        rf: Reg,
    },
    /// Load a 32-bit word: `rd = mem[base + offset]` (byte-addressed).
    Ldr { rd: Reg, base: Reg, offset: Operand },
    /// Store a 32-bit word: `mem[base + offset] = rs`.
    Str { rs: Reg, base: Reg, offset: Operand },
    /// Push registers onto the stack (ascending register order).
    Push { regs: Vec<Reg> },
    /// Pop registers off the stack (reverse of [`Insn::Push`]).
    Pop { regs: Vec<Reg> },
    /// Call a function by name; returns to the following instruction.
    Call { func: String },
    /// Read a word from an I/O port into `rd` (sensor input).
    In { rd: Reg, port: u8 },
    /// Write a word from `rs` to an I/O port (radio/actuator output).
    Out { rs: Reg, port: u8 },
    /// Do nothing for one cycle.
    Nop,
}

impl Insn {
    /// `true` if this instruction may write to `reg`.
    pub fn writes(&self, reg: Reg) -> bool {
        match self {
            Insn::Alu { rd, .. }
            | Insn::Mov { rd, .. }
            | Insn::MovImm32 { rd, .. }
            | Insn::Csel { rd, .. }
            | Insn::Ldr { rd, .. }
            | Insn::In { rd, .. } => *rd == reg,
            Insn::Pop { regs } => regs.contains(&reg) || reg == Reg::SP,
            Insn::Push { .. } => reg == Reg::SP,
            Insn::Call { .. } => reg == Reg::R0 || reg == Reg::LR,
            _ => false,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Alu { op, rd, rn, src } => write!(f, "{op} {rd}, {rn}, {src}"),
            Insn::Mov { rd, src } => write!(f, "mov {rd}, {src}"),
            Insn::MovImm32 { rd, imm } => write!(f, "mov32 {rd}, #{imm}"),
            Insn::Cmp { rn, src } => write!(f, "cmp {rn}, {src}"),
            Insn::Csel { cond, rd, rt, rf } => write!(f, "csel{cond} {rd}, {rt}, {rf}"),
            Insn::Ldr { rd, base, offset } => write!(f, "ldr {rd}, [{base}, {offset}]"),
            Insn::Str { rs, base, offset } => write!(f, "str {rs}, [{base}, {offset}]"),
            Insn::Push { regs } => {
                write!(f, "push {{")?;
                for (i, r) in regs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "}}")
            }
            Insn::Pop { regs } => {
                write!(f, "pop {{")?;
                for (i, r) in regs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "}}")
            }
            Insn::Call { func } => write!(f, "bl {func}"),
            Insn::In { rd, port } => write!(f, "in {rd}, p{port}"),
            Insn::Out { rs, port } => write!(f, "out {rs}, p{port}"),
            Insn::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn register_display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
    }

    #[test]
    fn alu_eval_wrapping_and_div_by_zero() {
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(AluOp::Div.eval(17, 0), 0);
        assert_eq!(AluOp::Rem.eval(17, 0), 0);
        assert_eq!(AluOp::Div.eval(17, 5), 3);
        assert_eq!(AluOp::Rem.eval(17, 5), 2);
    }

    #[test]
    fn alu_eval_shifts_mask_amount() {
        assert_eq!(AluOp::Lsl.eval(1, 33), 2);
        assert_eq!(AluOp::Lsr.eval(-1, 28), 0xF);
        assert_eq!(AluOp::Asr.eval(-8, 2), -2);
    }

    #[test]
    fn cond_negation_is_involutive_and_exact() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(c.holds(a, b), !c.negate().holds(a, b), "{c:?} {a} {b}");
            }
        }
    }

    #[test]
    fn writes_tracks_destinations() {
        let i = Insn::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            rn: Reg::R1,
            src: Operand::Imm(1),
        };
        assert!(i.writes(Reg::R3));
        assert!(!i.writes(Reg::R1));
        let p = Insn::Push {
            regs: vec![Reg::R4],
        };
        assert!(p.writes(Reg::SP));
        assert!(!p.writes(Reg::R4));
    }

    #[test]
    fn display_formats_are_assembly_like() {
        let i = Insn::Ldr {
            rd: Reg::R0,
            base: Reg::SP,
            offset: Operand::Imm(8),
        };
        assert_eq!(i.to_string(), "ldr r0, [sp, #8]");
        let c = Insn::Csel {
            cond: Cond::Eq,
            rd: Reg::R0,
            rt: Reg::R1,
            rf: Reg::R2,
        };
        assert_eq!(c.to_string(), "cseleq r0, r1, r2");
    }
}
