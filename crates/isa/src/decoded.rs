//! Pre-decoded, index-addressed PG32 programs.
//!
//! CFG-form [`Program`]s are convenient for analysis and compilation but
//! expensive to *execute*: every simulated step re-matches [`Operand`]s,
//! chases `Vec<Block>` indirections and resolves call targets by name.
//! [`decode_program`] performs all of that resolution **once**, lowering a
//! validated program into a single flat [`DecodedOp`] array:
//!
//! * registers become dense `u8` indices,
//! * flexible operands split into register/immediate op variants (no
//!   per-step [`Operand`] match),
//! * block terminators become ordinary ops, so one program counter
//!   addresses the whole program and a branch is just `pc = target`,
//! * branch targets and call targets are **global instruction indices**
//!   (a call pushes `pc + 1`; a return pops it — no per-frame
//!   function/block bookkeeping),
//! * push/pop register lists live in one shared [`DecodedImage::reg_pool`]
//!   so every op stays `Copy` and cache-dense.
//!
//! The decoded form is purely an ISA-level artefact: it carries no cost
//! model. `teamplay-sim` bakes per-op cycle and energy costs on top of it
//! to build its pre-decoded execution engine.

use crate::insn::{AluOp, Cond, Insn, Operand, Reg};
use crate::program::{Program, Terminator};

/// A slice reference into [`DecodedImage::reg_pool`]: the register list of
/// one push/pop instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegListRef {
    /// Offset of the first register in the pool.
    pub start: u32,
    /// Number of registers in the list.
    pub len: u8,
}

/// One dense PG32 operation with every name and operand indirection
/// resolved. Register fields are indices `0..16`; `target` fields are
/// global instruction indices into [`DecodedImage::ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedOp {
    /// `rd = rn <op> rm`.
    AluRR { op: AluOp, rd: u8, rn: u8, rm: u8 },
    /// `rd = rn <op> imm`.
    AluRI { op: AluOp, rd: u8, rn: u8, imm: i32 },
    /// Register move.
    MovR { rd: u8, rm: u8 },
    /// 16-bit immediate move.
    MovI { rd: u8, imm: i32 },
    /// 32-bit constant materialisation (extra fetch cycle).
    MovI32 { rd: u8, imm: i32 },
    /// Compare two registers and latch the flags.
    CmpR { rn: u8, rm: u8 },
    /// Compare a register with an immediate and latch the flags.
    CmpI { rn: u8, imm: i32 },
    /// Conditional select on the latched flags.
    Csel { cond: Cond, rd: u8, rt: u8, rf: u8 },
    /// `rd = mem[base + roff]`.
    LdrR { rd: u8, base: u8, roff: u8 },
    /// `rd = mem[base + imm]`.
    LdrI { rd: u8, base: u8, imm: i32 },
    /// `mem[base + roff] = rs`.
    StrR { rs: u8, base: u8, roff: u8 },
    /// `mem[base + imm] = rs`.
    StrI { rs: u8, base: u8, imm: i32 },
    /// Push the pooled register list (ascending order).
    Push { list: RegListRef },
    /// Pop the pooled register list (reverse of push).
    Pop { list: RegListRef },
    /// Call: push `pc + 1`, jump to the callee's entry index.
    Call { target: u32 },
    /// Port input into `rd`.
    In { rd: u8, port: u8 },
    /// Port output from `rs`.
    Out { rs: u8, port: u8 },
    /// One idle cycle.
    Nop,
    /// Unconditional jump (was a block terminator).
    Branch { target: u32 },
    /// Two-way jump on the latched flags (was a block terminator).
    CondBranch {
        cond: Cond,
        taken: u32,
        fallthrough: u32,
    },
    /// Return: pop the continuation index, or finish the run.
    Ret,
    /// Stop the machine.
    Halt,
}

/// One function's location in the flat instruction array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFunction {
    /// Symbol name.
    pub name: String,
    /// Global index of the function's first op (entry block).
    pub entry: u32,
}

/// A whole program in pre-decoded form: one flat op array plus the
/// function directory and the shared push/pop register pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedImage {
    /// Every instruction and terminator of every function, functions in
    /// name order, blocks in block order, each block's terminator last.
    pub ops: Vec<DecodedOp>,
    /// Backing storage for [`DecodedOp::Push`]/[`DecodedOp::Pop`] lists.
    pub reg_pool: Vec<Reg>,
    /// Function directory, sorted by name (the [`Program`] map order).
    pub functions: Vec<DecodedFunction>,
}

impl DecodedImage {
    /// Index of the named function in [`DecodedImage::functions`].
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions
            .binary_search_by(|f| f.name.as_str().cmp(name))
            .ok()
    }

    /// Entry op index of the named function.
    pub fn entry_of(&self, name: &str) -> Option<u32> {
        self.function_index(name).map(|i| self.functions[i].entry)
    }

    /// The register list a push/pop op refers to.
    pub fn reg_list(&self, list: RegListRef) -> &[Reg] {
        &self.reg_pool[list.start as usize..list.start as usize + list.len as usize]
    }
}

/// Lower a program into its flat, index-addressed decoded form.
///
/// # Errors
/// Returns the program's own validation error text if it is structurally
/// invalid (decoding requires in-range branch targets and resolvable call
/// names).
pub fn decode_program(program: &Program) -> Result<DecodedImage, String> {
    program.validate()?;

    // Pass 1: lay out every function and block in the flat index space.
    // Each block contributes its instructions plus one terminator op.
    let mut functions = Vec::with_capacity(program.functions.len());
    let mut block_starts: Vec<Vec<u32>> = Vec::with_capacity(program.functions.len());
    let mut cursor: u32 = 0;
    for (name, f) in &program.functions {
        functions.push(DecodedFunction {
            name: name.clone(),
            entry: cursor,
        });
        let mut starts = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            starts.push(cursor);
            let ops = b.insns.len() + 1;
            cursor = cursor
                .checked_add(ops as u32)
                .ok_or_else(|| format!("function {name}: decoded image exceeds u32 indices"))?;
        }
        block_starts.push(starts);
    }
    let entry_by_name: std::collections::BTreeMap<&str, u32> = functions
        .iter()
        .map(|f| (f.name.as_str(), f.entry))
        .collect();

    // Pass 2: emit ops with all targets resolved.
    let mut ops = Vec::with_capacity(cursor as usize);
    let mut reg_pool = Vec::new();
    for (fi, f) in program.functions.values().enumerate() {
        let starts = &block_starts[fi];
        for b in &f.blocks {
            for insn in &b.insns {
                ops.push(decode_insn(insn, &entry_by_name, &mut reg_pool)?);
            }
            ops.push(match &b.terminator {
                Terminator::Branch(t) => DecodedOp::Branch {
                    target: starts[t.index()],
                },
                Terminator::CondBranch {
                    cond,
                    taken,
                    fallthrough,
                } => DecodedOp::CondBranch {
                    cond: *cond,
                    taken: starts[taken.index()],
                    fallthrough: starts[fallthrough.index()],
                },
                Terminator::Return => DecodedOp::Ret,
                Terminator::Halt => DecodedOp::Halt,
            });
        }
    }
    debug_assert_eq!(ops.len(), cursor as usize);

    Ok(DecodedImage {
        ops,
        reg_pool,
        functions,
    })
}

fn decode_insn(
    insn: &Insn,
    entry_by_name: &std::collections::BTreeMap<&str, u32>,
    reg_pool: &mut Vec<Reg>,
) -> Result<DecodedOp, String> {
    let r = |reg: Reg| reg.index() as u8;
    Ok(match insn {
        Insn::Alu { op, rd, rn, src } => match src {
            Operand::Reg(rm) => DecodedOp::AluRR {
                op: *op,
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand::Imm(imm) => DecodedOp::AluRI {
                op: *op,
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Insn::Mov { rd, src } => match src {
            Operand::Reg(rm) => DecodedOp::MovR {
                rd: r(*rd),
                rm: r(*rm),
            },
            Operand::Imm(imm) => DecodedOp::MovI {
                rd: r(*rd),
                imm: *imm,
            },
        },
        Insn::MovImm32 { rd, imm } => DecodedOp::MovI32 {
            rd: r(*rd),
            imm: *imm,
        },
        Insn::Cmp { rn, src } => match src {
            Operand::Reg(rm) => DecodedOp::CmpR {
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand::Imm(imm) => DecodedOp::CmpI {
                rn: r(*rn),
                imm: *imm,
            },
        },
        Insn::Csel { cond, rd, rt, rf } => DecodedOp::Csel {
            cond: *cond,
            rd: r(*rd),
            rt: r(*rt),
            rf: r(*rf),
        },
        Insn::Ldr { rd, base, offset } => match offset {
            Operand::Reg(ro) => DecodedOp::LdrR {
                rd: r(*rd),
                base: r(*base),
                roff: r(*ro),
            },
            Operand::Imm(imm) => DecodedOp::LdrI {
                rd: r(*rd),
                base: r(*base),
                imm: *imm,
            },
        },
        Insn::Str { rs, base, offset } => match offset {
            Operand::Reg(ro) => DecodedOp::StrR {
                rs: r(*rs),
                base: r(*base),
                roff: r(*ro),
            },
            Operand::Imm(imm) => DecodedOp::StrI {
                rs: r(*rs),
                base: r(*base),
                imm: *imm,
            },
        },
        Insn::Push { regs } => DecodedOp::Push {
            list: pool_list(regs, reg_pool)?,
        },
        Insn::Pop { regs } => DecodedOp::Pop {
            list: pool_list(regs, reg_pool)?,
        },
        Insn::Call { func } => DecodedOp::Call {
            target: *entry_by_name
                .get(func.as_str())
                .ok_or_else(|| format!("call to unknown function `{func}`"))?,
        },
        Insn::In { rd, port } => DecodedOp::In {
            rd: r(*rd),
            port: *port,
        },
        Insn::Out { rs, port } => DecodedOp::Out {
            rs: r(*rs),
            port: *port,
        },
        Insn::Nop => DecodedOp::Nop,
    })
}

fn pool_list(regs: &[Reg], reg_pool: &mut Vec<Reg>) -> Result<RegListRef, String> {
    let start = u32::try_from(reg_pool.len()).map_err(|_| "register pool overflow".to_string())?;
    let len = u8::try_from(regs.len())
        .map_err(|_| format!("push/pop list of {} registers", regs.len()))?;
    reg_pool.extend_from_slice(regs);
    Ok(RegListRef { start, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Block, BlockId, Function};
    use std::collections::BTreeMap;

    fn two_function_program() -> Program {
        let mut p = Program::new();
        let callee = Function {
            name: "callee".into(),
            blocks: vec![Block {
                insns: vec![Insn::Alu {
                    op: AluOp::Add,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    src: Operand::Imm(1),
                }],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        let main = Function {
            name: "main".into(),
            blocks: vec![
                Block {
                    insns: vec![
                        Insn::Push {
                            regs: vec![Reg::R4, Reg::R5],
                        },
                        Insn::Call {
                            func: "callee".into(),
                        },
                        Insn::Pop {
                            regs: vec![Reg::R4, Reg::R5],
                        },
                        Insn::Cmp {
                            rn: Reg::R0,
                            src: Operand::Imm(3),
                        },
                    ],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(0),
                        fallthrough: BlockId(1),
                    },
                },
                Block::empty(Terminator::Halt),
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(callee);
        p.add_function(main);
        p
    }

    #[test]
    fn decodes_functions_in_name_order_with_resolved_targets() {
        let image = decode_program(&two_function_program()).expect("decodes");
        // "callee" < "main": callee occupies ops [0, 2), main starts at 2.
        assert_eq!(image.functions.len(), 2);
        assert_eq!(image.functions[0].name, "callee");
        assert_eq!(image.functions[0].entry, 0);
        assert_eq!(image.functions[1].name, "main");
        assert_eq!(image.functions[1].entry, 2);
        assert_eq!(image.entry_of("main"), Some(2));
        assert_eq!(image.entry_of("ghost"), None);
        // The call resolved to callee's entry index.
        assert_eq!(image.ops[3], DecodedOp::Call { target: 0 });
        // The conditional terminator resolved both block targets: block 0
        // starts at main's entry, block 1 right after block 0's 5 ops
        // (4 instructions + the terminator itself).
        assert_eq!(
            image.ops[6],
            DecodedOp::CondBranch {
                cond: Cond::Lt,
                taken: 2,
                fallthrough: 7,
            }
        );
        assert_eq!(image.ops[7], DecodedOp::Halt);
        assert_eq!(image.ops.len(), 8);
    }

    #[test]
    fn push_pop_share_the_register_pool() {
        let image = decode_program(&two_function_program()).expect("decodes");
        let (push, pop) = match (&image.ops[2], &image.ops[4]) {
            (DecodedOp::Push { list: a }, DecodedOp::Pop { list: b }) => (*a, *b),
            other => panic!("unexpected ops {other:?}"),
        };
        assert_eq!(image.reg_list(push), &[Reg::R4, Reg::R5]);
        assert_eq!(image.reg_list(pop), &[Reg::R4, Reg::R5]);
        assert_eq!(image.reg_pool.len(), 4);
    }

    #[test]
    fn invalid_programs_are_rejected() {
        let mut p = Program::new();
        let mut f = Function::stub("f");
        f.blocks[0].insns.push(Insn::Call {
            func: "ghost".into(),
        });
        p.add_function(f);
        assert!(decode_program(&p).is_err());
    }

    #[test]
    fn every_insn_shape_decodes() {
        let mut p = Program::new();
        let f = Function {
            name: "all".into(),
            blocks: vec![
                Block {
                    insns: vec![
                        Insn::Alu {
                            op: AluOp::Mul,
                            rd: Reg::R1,
                            rn: Reg::R2,
                            src: Operand::Reg(Reg::R3),
                        },
                        Insn::Mov {
                            rd: Reg::R1,
                            src: Operand::Imm(7),
                        },
                        Insn::MovImm32 {
                            rd: Reg::R2,
                            imm: 1 << 20,
                        },
                        Insn::Cmp {
                            rn: Reg::R1,
                            src: Operand::Reg(Reg::R2),
                        },
                        Insn::Csel {
                            cond: Cond::Eq,
                            rd: Reg::R3,
                            rt: Reg::R1,
                            rf: Reg::R2,
                        },
                        Insn::Ldr {
                            rd: Reg::R4,
                            base: Reg::SP,
                            offset: Operand::Imm(0),
                        },
                        Insn::Str {
                            rs: Reg::R4,
                            base: Reg::SP,
                            offset: Operand::Reg(Reg::R1),
                        },
                        Insn::In {
                            rd: Reg::R0,
                            port: 1,
                        },
                        Insn::Out {
                            rs: Reg::R0,
                            port: 2,
                        },
                        Insn::Nop,
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block::empty(Terminator::Return),
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let image = decode_program(&p).expect("decodes");
        // 10 insns + branch + ret.
        assert_eq!(image.ops.len(), 12);
        assert_eq!(image.ops[10], DecodedOp::Branch { target: 11 });
        assert!(matches!(
            image.ops[0],
            DecodedOp::AluRR { op: AluOp::Mul, .. }
        ));
        assert!(matches!(image.ops[2], DecodedOp::MovI32 { .. }));
        assert!(matches!(image.ops[6], DecodedOp::StrR { .. }));
    }
}
