//! Deterministic data layout shared by the code generator and the
//! simulator.
//!
//! The compiler needs global addresses at code-generation time and the
//! simulator needs the same addresses at load time; both sides call
//! [`DataLayout::of_program`] so they can never disagree.

use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Base byte address of the data segment.
pub const DATA_BASE: u32 = 0x1000;
/// Total simulated memory in bytes (1 MiB).
pub const MEMORY_BYTES: u32 = 0x10_0000;
/// Initial stack pointer (top of memory, full-descending).
pub const STACK_TOP: u32 = MEMORY_BYTES;

/// Byte addresses assigned to every global symbol.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DataLayout {
    addresses: BTreeMap<String, u32>,
    data_end: u32,
}

impl DataLayout {
    /// Compute the layout of a program's globals: symbols are placed in
    /// name order starting at [`DATA_BASE`], word-aligned, with no
    /// padding between them.
    pub fn of_program(program: &Program) -> DataLayout {
        let mut addresses = BTreeMap::new();
        let mut cursor = DATA_BASE;
        for (name, words) in &program.globals {
            addresses.insert(name.clone(), cursor);
            cursor += (words.len() as u32) * 4;
        }
        DataLayout {
            addresses,
            data_end: cursor,
        }
    }

    /// Byte address of a global symbol.
    pub fn address(&self, name: &str) -> Option<u32> {
        self.addresses.get(name).copied()
    }

    /// First byte past the data segment.
    pub fn data_end(&self) -> u32 {
        self.data_end
    }

    /// Iterate `(symbol, address)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.addresses.iter().map(|(n, a)| (n.as_str(), *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn layout_is_deterministic_and_packed() {
        let mut p = Program::new();
        p.globals.insert("beta".into(), vec![0; 3]);
        p.globals.insert("alpha".into(), vec![0; 2]);
        let layout = DataLayout::of_program(&p);
        // BTreeMap order: alpha first.
        assert_eq!(layout.address("alpha"), Some(DATA_BASE));
        assert_eq!(layout.address("beta"), Some(DATA_BASE + 8));
        assert_eq!(layout.data_end(), DATA_BASE + 8 + 12);
        assert_eq!(layout.address("gamma"), None);
    }

    #[test]
    fn empty_program_has_empty_segment() {
        let layout = DataLayout::of_program(&Program::new());
        assert_eq!(layout.data_end(), DATA_BASE);
        assert_eq!(layout.iter().count(), 0);
    }
}
