//! The PG32 deterministic timing model.
//!
//! Predictable architectures are defined by the paper as those where "the
//! number of cycles that an instruction takes to execute can be statically
//! determined" (Section II-A). [`CycleModel`] is that determination: a pure
//! table from instruction (and branch outcome) to cycles, shared verbatim by
//! the static WCET analyser and the cycle simulator, so the two can never
//! disagree about the cost of an instruction — only about which path
//! executes.

use crate::insn::{AluOp, Insn, Operand};
use crate::program::Terminator;
use serde::{Deserialize, Serialize};

/// Deterministic cycle costs for PG32.
///
/// The default [`CycleModel::pg32`] numbers follow the Cortex-M0 profile:
/// single-cycle ALU, 2-cycle memory, 3-cycle taken branches, with a
/// single-cycle fast multiplier and a 12-cycle iterative divider.
///
/// ```
/// use teamplay_isa::{CycleModel, Insn, Reg, Operand};
/// let m = CycleModel::pg32();
/// let ldr = Insn::Ldr { rd: Reg::R0, base: Reg::SP, offset: Operand::Imm(0) };
/// assert_eq!(m.cycles(&ldr, false), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleModel {
    /// Single-cycle ALU operations (add/sub/logic/shift).
    pub alu: u64,
    /// Hardware multiply.
    pub mul: u64,
    /// Iterative divide / remainder.
    pub div: u64,
    /// Word load.
    pub load: u64,
    /// Word store.
    pub store: u64,
    /// Register/immediate move.
    pub mov: u64,
    /// 32-bit constant materialisation (extra literal fetch).
    pub mov32: u64,
    /// Compare.
    pub cmp: u64,
    /// Conditional select (constant time by design).
    pub csel: u64,
    /// Per-register cost of push/pop, plus one base cycle.
    pub push_pop_per_reg: u64,
    /// Call (pipeline refill + link).
    pub call: u64,
    /// Return.
    pub ret: u64,
    /// Unconditional branch.
    pub branch: u64,
    /// Conditional branch when taken.
    pub cond_taken: u64,
    /// Conditional branch when not taken (fall through).
    pub cond_not_taken: u64,
    /// Port input.
    pub port_in: u64,
    /// Port output.
    pub port_out: u64,
    /// `nop` and `halt`.
    pub nop: u64,
}

impl CycleModel {
    /// The reference PG32 (Cortex-M0-like) timing.
    pub fn pg32() -> CycleModel {
        CycleModel {
            alu: 1,
            mul: 1,
            div: 12,
            load: 2,
            store: 2,
            mov: 1,
            mov32: 2,
            cmp: 1,
            csel: 1,
            push_pop_per_reg: 1,
            call: 4,
            ret: 4,
            branch: 3,
            cond_taken: 3,
            cond_not_taken: 1,
            port_in: 2,
            port_out: 2,
            nop: 1,
        }
    }

    /// A LEON3-flavoured variant: slightly slower memory (SDRAM wait
    /// states) and a 35-cycle divider, used by the SpaceWire use case.
    pub fn leon3() -> CycleModel {
        CycleModel {
            load: 3,
            store: 3,
            div: 35,
            mul: 2,
            ..CycleModel::pg32()
        }
    }

    /// Cycles for one instruction. `branch_taken` is ignored for
    /// non-branching instructions (every [`Insn`] is non-branching; the
    /// flag exists so the same signature also serves terminators via
    /// [`CycleModel::terminator_cycles`]).
    pub fn cycles(&self, insn: &Insn, _branch_taken: bool) -> u64 {
        match insn {
            Insn::Alu { op, .. } => match op {
                AluOp::Mul => self.mul,
                AluOp::Div | AluOp::Rem => self.div,
                _ => self.alu,
            },
            Insn::Mov { src, .. } => match src {
                Operand::Reg(_) | Operand::Imm(_) => self.mov,
            },
            Insn::MovImm32 { .. } => self.mov32,
            Insn::Cmp { .. } => self.cmp,
            Insn::Csel { .. } => self.csel,
            Insn::Ldr { .. } => self.load,
            Insn::Str { .. } => self.store,
            Insn::Push { regs } | Insn::Pop { regs } => {
                1 + self.push_pop_per_reg * regs.len() as u64
            }
            Insn::Call { .. } => self.call,
            Insn::In { .. } => self.port_in,
            Insn::Out { .. } => self.port_out,
            Insn::Nop => self.nop,
        }
    }

    /// Cycles consumed by a block terminator. For conditional branches the
    /// `taken` flag selects between the two costs; static analysis uses
    /// [`CycleModel::terminator_worst_case`] instead.
    pub fn terminator_cycles(&self, t: &Terminator, taken: bool) -> u64 {
        match t {
            Terminator::Branch(_) => self.branch,
            Terminator::CondBranch { .. } => {
                if taken {
                    self.cond_taken
                } else {
                    self.cond_not_taken
                }
            }
            Terminator::Return => self.ret,
            Terminator::Halt => self.nop,
        }
    }

    /// The safe upper bound on a terminator's cost, used by the WCET
    /// analyser when the branch outcome is unknown.
    pub fn terminator_worst_case(&self, t: &Terminator) -> u64 {
        match t {
            Terminator::Branch(_) => self.branch,
            Terminator::CondBranch { .. } => self.cond_taken.max(self.cond_not_taken),
            Terminator::Return => self.ret,
            Terminator::Halt => self.nop,
        }
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::pg32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, Reg};

    #[test]
    fn alu_classes_have_distinct_costs() {
        let m = CycleModel::pg32();
        let add = Insn::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Imm(1),
        };
        let mul = Insn::Alu {
            op: AluOp::Mul,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Reg(Reg::R1),
        };
        let div = Insn::Alu {
            op: AluOp::Div,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Reg(Reg::R1),
        };
        assert_eq!(m.cycles(&add, false), 1);
        assert_eq!(m.cycles(&mul, false), 1);
        assert_eq!(m.cycles(&div, false), 12);
    }

    #[test]
    fn push_pop_scales_with_register_count() {
        let m = CycleModel::pg32();
        let p1 = Insn::Push {
            regs: vec![Reg::R4],
        };
        let p3 = Insn::Push {
            regs: vec![Reg::R4, Reg::R5, Reg::R6],
        };
        assert_eq!(m.cycles(&p3, false) - m.cycles(&p1, false), 2);
    }

    #[test]
    fn conditional_branch_costs_depend_on_outcome() {
        let m = CycleModel::pg32();
        let t = Terminator::CondBranch {
            cond: Cond::Eq,
            taken: crate::program::BlockId(0),
            fallthrough: crate::program::BlockId(1),
        };
        assert_eq!(m.terminator_cycles(&t, true), 3);
        assert_eq!(m.terminator_cycles(&t, false), 1);
        assert_eq!(m.terminator_worst_case(&t), 3);
    }

    #[test]
    fn leon3_is_slower_on_memory() {
        let pg = CycleModel::pg32();
        let leon = CycleModel::leon3();
        let ldr = Insn::Ldr {
            rd: Reg::R0,
            base: Reg::SP,
            offset: Operand::Imm(0),
        };
        assert!(leon.cycles(&ldr, false) > pg.cycles(&ldr, false));
    }

    #[test]
    fn worst_case_dominates_both_outcomes() {
        let m = CycleModel::leon3();
        for t in [
            Terminator::Branch(crate::program::BlockId(0)),
            Terminator::Return,
            Terminator::Halt,
            Terminator::CondBranch {
                cond: Cond::Ne,
                taken: crate::program::BlockId(0),
                fallthrough: crate::program::BlockId(0),
            },
        ] {
            for taken in [true, false] {
                assert!(m.terminator_worst_case(&t) >= m.terminator_cycles(&t, taken));
            }
        }
    }
}
