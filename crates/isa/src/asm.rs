//! Textual PG32 assembly: a parser that round-trips with the `Display`
//! implementations of [`crate::Function`] / [`crate::Program`].
//!
//! The toolchain's certified artefacts are CFG-form programs; this module
//! lets users *inspect* them as conventional listings and author small
//! kernels by hand (useful for the energy-characterisation
//! microbenchmarks of the model-fitting flow).

use crate::insn::{AluOp, Cond, Insn, Operand, Reg};
use crate::program::{Block, BlockId, Function, Program, Terminator};
use std::collections::BTreeMap;
use std::fmt;

/// Assembly parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmParseError {
    /// What went wrong.
    pub message: String,
    /// Offending line (1-based).
    pub line: usize,
}

impl fmt::Display for AsmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmParseError> {
    Err(AsmParseError {
        message: message.into(),
        line,
    })
}

fn parse_reg(token: &str, line: usize) -> Result<Reg, AsmParseError> {
    let t = token.trim().trim_end_matches(',');
    match t {
        "sp" => Ok(Reg::SP),
        "lr" => Ok(Reg::LR),
        _ => {
            let idx: usize =
                t.strip_prefix('r')
                    .and_then(|n| n.parse().ok())
                    .ok_or(AsmParseError {
                        message: format!("bad register `{t}`"),
                        line,
                    })?;
            Reg::from_index(idx).ok_or(AsmParseError {
                message: format!("register index {idx} out of range"),
                line,
            })
        }
    }
}

fn parse_imm(token: &str, line: usize) -> Result<i32, AsmParseError> {
    let t = token.trim().trim_end_matches(',');
    let body = t.strip_prefix('#').ok_or(AsmParseError {
        message: format!("expected immediate, got `{t}`"),
        line,
    })?;
    body.parse()
        .or(err(line, format!("bad immediate `{body}`")))
}

fn parse_operand(token: &str, line: usize) -> Result<Operand, AsmParseError> {
    let t = token.trim().trim_end_matches(',');
    if t.starts_with('#') {
        Ok(Operand::Imm(parse_imm(t, line)?))
    } else {
        Ok(Operand::Reg(parse_reg(t, line)?))
    }
}

fn parse_label(token: &str, line: usize) -> Result<BlockId, AsmParseError> {
    let t = token.trim();
    let n: u32 = t
        .strip_prefix(".L")
        .and_then(|n| n.parse().ok())
        .ok_or(AsmParseError {
            message: format!("bad label `{t}`"),
            line,
        })?;
    Ok(BlockId(n))
}

fn split_args(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_mem(args: &str, line: usize) -> Result<(Reg, Reg, Operand), AsmParseError> {
    // Format: `rd, [base, offset]`
    let (rd, rest) = args.split_once(',').ok_or(AsmParseError {
        message: "memory operand expected".into(),
        line,
    })?;
    let rd = parse_reg(rd, line)?;
    let inner = rest
        .trim()
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or(AsmParseError {
            message: "expected [base, offset]".into(),
            line,
        })?;
    let (base, off) = inner.split_once(',').ok_or(AsmParseError {
        message: "expected base, offset".into(),
        line,
    })?;
    Ok((rd, parse_reg(base, line)?, parse_operand(off, line)?))
}

fn parse_reg_list(args: &str, line: usize) -> Result<Vec<Reg>, AsmParseError> {
    let inner = args
        .trim()
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or(AsmParseError {
            message: "expected {reg, ...}".into(),
            line,
        })?;
    inner
        .split(',')
        .map(|r| parse_reg(r, line))
        .collect::<Result<Vec<_>, _>>()
}

/// Parse a single instruction line (no label, no terminator).
fn parse_insn(text: &str, line: usize) -> Result<Insn, AsmParseError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        let args = split_args(rest);
        if args.len() != 3 {
            return err(line, format!("{mnemonic} needs rd, rn, src"));
        }
        return Ok(Insn::Alu {
            op: *op,
            rd: parse_reg(&args[0], line)?,
            rn: parse_reg(&args[1], line)?,
            src: parse_operand(&args[2], line)?,
        });
    }
    if let Some(cond) = mnemonic
        .strip_prefix("csel")
        .and_then(|c| Cond::ALL.iter().find(|k| k.mnemonic() == c))
    {
        let args = split_args(rest);
        if args.len() != 3 {
            return err(line, "csel needs rd, rt, rf");
        }
        return Ok(Insn::Csel {
            cond: *cond,
            rd: parse_reg(&args[0], line)?,
            rt: parse_reg(&args[1], line)?,
            rf: parse_reg(&args[2], line)?,
        });
    }
    match mnemonic {
        "mov" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "mov needs rd, src");
            }
            Ok(Insn::Mov {
                rd: parse_reg(&args[0], line)?,
                src: parse_operand(&args[1], line)?,
            })
        }
        "mov32" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "mov32 needs rd, #imm");
            }
            Ok(Insn::MovImm32 {
                rd: parse_reg(&args[0], line)?,
                imm: parse_imm(&args[1], line)?,
            })
        }
        "cmp" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "cmp needs rn, src");
            }
            Ok(Insn::Cmp {
                rn: parse_reg(&args[0], line)?,
                src: parse_operand(&args[1], line)?,
            })
        }
        "ldr" => {
            let (rd, base, offset) = parse_mem(rest, line)?;
            Ok(Insn::Ldr { rd, base, offset })
        }
        "str" => {
            let (rs, base, offset) = parse_mem(rest, line)?;
            Ok(Insn::Str { rs, base, offset })
        }
        "push" => Ok(Insn::Push {
            regs: parse_reg_list(rest, line)?,
        }),
        "pop" => Ok(Insn::Pop {
            regs: parse_reg_list(rest, line)?,
        }),
        "bl" => {
            if rest.is_empty() {
                return err(line, "bl needs a function name");
            }
            Ok(Insn::Call {
                func: rest.to_string(),
            })
        }
        "in" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "in needs rd, pN");
            }
            let port = args[1]
                .strip_prefix('p')
                .and_then(|p| p.parse().ok())
                .ok_or(AsmParseError {
                    message: format!("bad port `{}`", args[1]),
                    line,
                })?;
            Ok(Insn::In {
                rd: parse_reg(&args[0], line)?,
                port,
            })
        }
        "out" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "out needs rs, pN");
            }
            let port = args[1]
                .strip_prefix('p')
                .and_then(|p| p.parse().ok())
                .ok_or(AsmParseError {
                    message: format!("bad port `{}`", args[1]),
                    line,
                })?;
            Ok(Insn::Out {
                rs: parse_reg(&args[0], line)?,
                port,
            })
        }
        "nop" => Ok(Insn::Nop),
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

/// Parse one function listing, as produced by [`Function`]'s `Display`.
///
/// # Errors
/// Returns the first malformed line.
pub fn parse_function(text: &str) -> Result<Function, AsmParseError> {
    let mut name: Option<String> = None;
    let mut blocks: Vec<Block> = Vec::new();
    let mut loop_bounds: BTreeMap<BlockId, u32> = BTreeMap::new();
    let mut current: Option<(BlockId, Vec<Insn>, Option<Terminator>)> = None;

    let finish_block = |current: &mut Option<(BlockId, Vec<Insn>, Option<Terminator>)>,
                        blocks: &mut Vec<Block>,
                        line: usize|
     -> Result<(), AsmParseError> {
        if let Some((id, insns, term)) = current.take() {
            let terminator = term.ok_or(AsmParseError {
                message: format!("block {id} lacks a terminator"),
                line,
            })?;
            if id.index() != blocks.len() {
                return err(line, format!("blocks must be listed in order, found {id}"));
            }
            blocks.push(Block { insns, terminator });
        }
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let code = raw.split(';').next().unwrap_or("").trim_end();
        let comment = raw.split_once(';').map(|(_, c)| c.trim()).unwrap_or("");
        if code.trim().is_empty() {
            continue;
        }
        let trimmed = code.trim();
        if let Some(label) = trimmed.strip_suffix(':') {
            if let Some(id_txt) = label.strip_prefix(".L") {
                finish_block(&mut current, &mut blocks, line)?;
                let id = BlockId(
                    id_txt
                        .parse()
                        .or(err(line, format!("bad block label `{label}`")))?,
                );
                if let Some(bound) = comment.strip_prefix("loop bound ") {
                    let n: u32 = bound.trim().parse().or(err(line, "bad loop bound"))?;
                    loop_bounds.insert(id, n);
                }
                current = Some((id, Vec::new(), None));
            } else {
                if name.is_some() {
                    return err(line, "multiple function labels in one listing");
                }
                name = Some(label.trim().to_string());
            }
            continue;
        }
        let Some((_, insns, term)) = current.as_mut() else {
            return err(line, "instruction outside any block");
        };
        if term.is_some() {
            return err(line, "instruction after the block terminator");
        }
        // Terminators.
        let (mnemonic, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (trimmed, ""),
        };
        match mnemonic {
            "b" => *term = Some(Terminator::Branch(parse_label(rest, line)?)),
            "ret" => *term = Some(Terminator::Return),
            "halt" => *term = Some(Terminator::Halt),
            m if m.starts_with('b') && Cond::ALL.iter().any(|c| c.mnemonic() == &m[1..]) => {
                let cond = *Cond::ALL
                    .iter()
                    .find(|c| c.mnemonic() == &m[1..])
                    .expect("checked above");
                let taken = parse_label(rest, line)?;
                let fallthrough = comment
                    .strip_prefix("else ")
                    .map(|l| parse_label(l, line))
                    .transpose()?
                    .ok_or(AsmParseError {
                        message: "conditional branch needs `; else .Ln`".into(),
                        line,
                    })?;
                *term = Some(Terminator::CondBranch {
                    cond,
                    taken,
                    fallthrough,
                });
            }
            _ => insns.push(parse_insn(trimmed, line)?),
        }
    }
    let last_line = text.lines().count();
    finish_block(&mut current, &mut blocks, last_line)?;
    let name = name.ok_or(AsmParseError {
        message: "missing function label".into(),
        line: 1,
    })?;
    let f = Function {
        name,
        blocks,
        loop_bounds,
        frame_size: 0,
    };
    f.validate().map_err(|m| AsmParseError {
        message: m,
        line: last_line,
    })?;
    Ok(f)
}

/// Render a program as one listing (functions in name order, loop bounds
/// as label comments) that [`parse_program`] accepts.
pub fn render_program(program: &Program) -> String {
    let mut out = String::new();
    for f in program.functions.values() {
        out.push_str(&render_function(f));
        out.push('\n');
    }
    out
}

/// Render one function with loop-bound comments (a superset of the plain
/// `Display` output).
pub fn render_function(f: &Function) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}:", f.name);
    for (i, b) in f.blocks.iter().enumerate() {
        match f.loop_bounds.get(&BlockId(i as u32)) {
            Some(n) => {
                let _ = writeln!(out, ".L{i}: ; loop bound {n}");
            }
            None => {
                let _ = writeln!(out, ".L{i}:");
            }
        }
        for insn in &b.insns {
            let _ = writeln!(out, "    {insn}");
        }
        match &b.terminator {
            Terminator::Branch(t) => {
                let _ = writeln!(out, "    b {t}");
            }
            Terminator::CondBranch {
                cond,
                taken,
                fallthrough,
            } => {
                let _ = writeln!(out, "    b{cond} {taken}  ; else {fallthrough}");
            }
            Terminator::Return => {
                let _ = writeln!(out, "    ret");
            }
            Terminator::Halt => {
                let _ = writeln!(out, "    halt");
            }
        }
    }
    out
}

/// Parse a multi-function listing (blank-line separated is fine; a new
/// function starts at each non-`.L` label).
///
/// # Errors
/// Returns the first malformed chunk's error.
pub fn parse_program(text: &str) -> Result<Program, AsmParseError> {
    let mut program = Program::new();
    let mut chunk = String::new();
    let mut chunks: Vec<String> = Vec::new();
    for raw in text.lines() {
        let trimmed = raw.trim();
        let is_fn_label =
            trimmed.ends_with(':') && !trimmed.starts_with(".L") && !trimmed.is_empty();
        if is_fn_label && !chunk.trim().is_empty() {
            chunks.push(std::mem::take(&mut chunk));
        }
        chunk.push_str(raw);
        chunk.push('\n');
    }
    if !chunk.trim().is_empty() {
        chunks.push(chunk);
    }
    for c in chunks {
        program.add_function(parse_function(&c)?);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING: &str = "
sum:
.L0:
    mov r1, #0
    mov r2, #0
    b .L1
.L1: ; loop bound 8
    cmp r2, r0
    blt .L2  ; else .L3
.L2:
    add r1, r1, r2
    add r2, r2, #1
    b .L1
.L3:
    mov r0, r1
    ret
";

    #[test]
    fn parses_a_loop_function_with_bounds() {
        let f = parse_function(LISTING).expect("parses");
        assert_eq!(f.name, "sum");
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.loop_bounds.get(&BlockId(1)), Some(&8));
        assert!(matches!(
            f.blocks[1].terminator,
            Terminator::CondBranch { cond: Cond::Lt, .. }
        ));
    }

    #[test]
    fn round_trips_through_render() {
        let f = parse_function(LISTING).expect("parses");
        let rendered = render_function(&f);
        let again = parse_function(&rendered).expect("re-parses");
        assert_eq!(f, again);
    }

    #[test]
    fn parses_every_instruction_form() {
        let listing = "
kitchen_sink:
.L0:
    add r0, r1, r2
    lsr r7, r7, #-5
    mov r3, sp
    mov r3, #1234
    mov32 r4, #-123456789
    cmp r1, #0
    cmp r1, r9
    cselle r0, r1, r2
    ldr r0, [sp, #-8]
    str r5, [r6, #16]
    ldr r0, [r1, r2]
    push {r4, r5, lr}
    pop {r4, r5, lr}
    bl xtea_encrypt
    in r0, p3
    out r1, p250
    nop
    halt
";
        let f = parse_function(listing).expect("parses");
        assert_eq!(f.blocks[0].insns.len(), 17);
        let again = parse_function(&render_function(&f)).expect("re-parses");
        assert_eq!(f, again);
    }

    #[test]
    fn rejects_malformed_listings() {
        assert!(parse_function("f:\n.L0:\n    badop r0\n    ret\n").is_err());
        assert!(
            parse_function("f:\n.L0:\n    ret\n    nop\n").is_err(),
            "code after terminator"
        );
        assert!(
            parse_function("f:\n.L0:\n    nop\n").is_err(),
            "missing terminator"
        );
        assert!(
            parse_function(".L0:\n    ret\n").is_err(),
            "missing function label"
        );
        assert!(
            parse_function("f:\n.L0:\n    b .L9\n").is_err(),
            "dangling branch target"
        );
        assert!(
            parse_function("f:\n.L0:\n    beq .L0\n").is_err(),
            "conditional without else comment"
        );
    }

    #[test]
    fn parses_multi_function_programs() {
        let text = "
leaf:
.L0:
    add r0, r0, #1
    ret

main:
.L0:
    bl leaf
    ret
";
        let p = parse_program(text).expect("parses");
        assert!(p.function("leaf").is_some());
        assert!(p.function("main").is_some());
        p.validate().expect("valid");
        let again = parse_program(&render_program(&p)).expect("re-parses");
        assert_eq!(p, again);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0usize..16).prop_map(|i| Reg::from_index(i).expect("in range"))
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (-32768i32..32768).prop_map(Operand::Imm),
        ]
    }

    fn arb_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (
                0usize..AluOp::ALL.len(),
                arb_reg(),
                arb_reg(),
                arb_operand()
            )
                .prop_map(|(o, rd, rn, src)| Insn::Alu {
                    op: AluOp::ALL[o],
                    rd,
                    rn,
                    src
                }),
            (arb_reg(), arb_operand()).prop_map(|(rd, src)| Insn::Mov { rd, src }),
            (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Insn::MovImm32 { rd, imm }),
            (arb_reg(), arb_operand()).prop_map(|(rn, src)| Insn::Cmp { rn, src }),
            (0usize..Cond::ALL.len(), arb_reg(), arb_reg(), arb_reg()).prop_map(
                |(c, rd, rt, rf)| Insn::Csel {
                    cond: Cond::ALL[c],
                    rd,
                    rt,
                    rf
                }
            ),
            (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, base, offset)| Insn::Ldr {
                rd,
                base,
                offset
            }),
            (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rs, base, offset)| Insn::Str {
                rs,
                base,
                offset
            }),
            proptest::collection::btree_set(0usize..16, 1..6).prop_map(|s| Insn::Push {
                regs: s
                    .into_iter()
                    .map(|i| Reg::from_index(i).expect("idx"))
                    .collect(),
            }),
            "[a-z_][a-z0-9_]{0,20}".prop_map(|func| Insn::Call { func }),
            (arb_reg(), any::<u8>()).prop_map(|(rd, port)| Insn::In { rd, port }),
            (arb_reg(), any::<u8>()).prop_map(|(rs, port)| Insn::Out { rs, port }),
            Just(Insn::Nop),
        ]
    }

    fn arb_function() -> impl Strategy<Value = Function> {
        (1usize..5).prop_flat_map(|n_blocks| {
            let blocks = proptest::collection::vec(
                (
                    proptest::collection::vec(arb_insn(), 0..6),
                    prop_oneof![
                        (0..n_blocks as u32).prop_map(|t| Terminator::Branch(BlockId(t))),
                        (
                            0usize..Cond::ALL.len(),
                            0..n_blocks as u32,
                            0..n_blocks as u32
                        )
                            .prop_map(|(c, t, f)| Terminator::CondBranch {
                                cond: Cond::ALL[c],
                                taken: BlockId(t),
                                fallthrough: BlockId(f),
                            }),
                        Just(Terminator::Return),
                        Just(Terminator::Halt),
                    ],
                ),
                n_blocks..=n_blocks,
            );
            (
                blocks,
                proptest::collection::btree_map(0..n_blocks as u32, 1u32..100, 0..3),
            )
                .prop_map(|(blocks, bounds)| Function {
                    name: "prop_fn".into(),
                    blocks: blocks
                        .into_iter()
                        .map(|(insns, terminator)| Block { insns, terminator })
                        .collect(),
                    loop_bounds: bounds.into_iter().map(|(k, v)| (BlockId(k), v)).collect(),
                    frame_size: 0,
                })
        })
    }

    proptest! {
        #[test]
        fn render_parse_round_trip(f in arb_function()) {
            let rendered = render_function(&f);
            let parsed = parse_function(&rendered).expect("rendered output parses");
            // frame_size is not part of the listing; compare the rest.
            prop_assert_eq!(parsed.name, f.name.clone());
            prop_assert_eq!(parsed.blocks, f.blocks.clone());
            prop_assert_eq!(parsed.loop_bounds, f.loop_bounds.clone());
        }

        #[test]
        fn parser_never_panics(text in "\\PC{0,400}") {
            let _ = parse_function(&text);
            let _ = parse_program(&text);
        }
    }
}
