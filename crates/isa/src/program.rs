//! CFG-structured PG32 programs.
//!
//! The compiler keeps programs in control-flow-graph form all the way down
//! to "binary" level: a [`Function`] is a list of [`Block`]s, each ending in
//! a single [`Terminator`]. The WCET and energy analysers consume this form
//! directly (the paper's WCC compiler likewise analyses its own CFG and
//! relays it to aiT), and the cycle simulator executes it.

use crate::insn::Insn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Branch(BlockId),
    /// Branch to `taken` if the last `cmp` satisfied `cond`, otherwise fall
    /// through to `fallthrough`.
    CondBranch {
        cond: crate::insn::Cond,
        taken: BlockId,
        fallthrough: BlockId,
    },
    /// Return to the caller (result in `r0` by convention).
    Return,
    /// Stop the machine (only valid in the entry function).
    Halt,
}

impl Terminator {
    /// Successor blocks, in `(taken, fallthrough)` order for conditionals.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Branch(t) => vec![*t],
            Terminator::CondBranch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            Terminator::Return | Terminator::Halt => Vec::new(),
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// Straight-line body (calls allowed; branches are not).
    pub insns: Vec<Insn>,
    /// The unique exit.
    pub terminator: Terminator,
}

impl Block {
    /// A block with no instructions and the given terminator.
    pub fn empty(terminator: Terminator) -> Block {
        Block {
            insns: Vec::new(),
            terminator,
        }
    }
}

/// A PG32 function in CFG form.
///
/// `loop_bounds` maps loop-header blocks to the maximum number of *body
/// iterations* per entry to the loop (so the header itself executes at
/// most `bound + 1` times — once more for the final exit check); the
/// bounds originate from the Mini-C loop-bound inference, from CSL
/// `loop bound(...)` annotations, or from the trip counts the compiler
/// proves, and are what makes static WCET analysis possible (paper
/// Section II-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Maximum body iterations per loop entry, keyed by header block.
    pub loop_bounds: BTreeMap<BlockId, u32>,
    /// Bytes of stack frame the function owns (spill slots + locals).
    pub frame_size: u32,
}

impl Function {
    /// A function with a single empty block returning immediately.
    pub fn stub(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            blocks: vec![Block::empty(Terminator::Return)],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        }
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids are created by the compiler and
    /// are always valid for the function that owns them.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Total number of instructions across all blocks (terminators count
    /// as one instruction each, matching the encoder).
    pub fn insn_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len() + 1).sum()
    }

    /// Names of every function this function calls, in program order,
    /// with duplicates removed.
    pub fn callees(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for b in &self.blocks {
            for i in &b.insns {
                if let Insn::Call { func } = i {
                    if !seen.contains(func) {
                        seen.push(func.clone());
                    }
                }
            }
        }
        seen
    }

    /// Check structural invariants: every terminator target is in range and
    /// every loop-bound key names an existing block.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("function {}: no blocks", self.name));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.terminator.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!(
                        "function {}: block {} branches to out-of-range {}",
                        self.name, i, s
                    ));
                }
            }
        }
        for id in self.loop_bounds.keys() {
            if id.index() >= self.blocks.len() {
                return Err(format!(
                    "function {}: loop bound on non-existent block {}",
                    self.name, id
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, ".L{i}:")?;
            for insn in &b.insns {
                writeln!(f, "    {insn}")?;
            }
            match &b.terminator {
                Terminator::Branch(t) => writeln!(f, "    b {t}")?,
                Terminator::CondBranch {
                    cond,
                    taken,
                    fallthrough,
                } => writeln!(f, "    b{cond} {taken}  ; else {fallthrough}")?,
                Terminator::Return => writeln!(f, "    ret")?,
                Terminator::Halt => writeln!(f, "    halt")?,
            }
        }
        Ok(())
    }
}

/// A complete PG32 program: functions plus initialised global data.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// All functions, keyed by name.
    pub functions: BTreeMap<String, Function>,
    /// Initialised global words, keyed by symbol; the simulator places them
    /// in its data segment and exposes their addresses.
    pub globals: BTreeMap<String, Vec<i32>>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Insert (or replace) a function.
    pub fn add_function(&mut self, f: Function) {
        self.functions.insert(f.name.clone(), f);
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Total instruction count over all functions — the code-size metric
    /// reported alongside time and energy.
    pub fn insn_count(&self) -> usize {
        self.functions.values().map(Function::insn_count).sum()
    }

    /// Validate every function and check that all call targets exist.
    ///
    /// # Errors
    /// Returns the first structural violation found.
    pub fn validate(&self) -> Result<(), String> {
        for f in self.functions.values() {
            f.validate()?;
            for callee in f.callees() {
                if !self.functions.contains_key(&callee) {
                    return Err(format!("function {} calls unknown {}", f.name, callee));
                }
            }
        }
        Ok(())
    }

    /// Detect whether the static call graph contains a cycle (recursion),
    /// which the predictable workflow rejects (aiT-style analysis requires
    /// a recursion-free call tree).
    pub fn has_recursion(&self) -> bool {
        // Iterative DFS with colouring over the call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&str, Colour> = self
            .functions
            .keys()
            .map(|k| (k.as_str(), Colour::White))
            .collect();
        for start in self.functions.keys() {
            if colour[start.as_str()] != Colour::White {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
            colour.insert(start.as_str(), Colour::Grey);
            let mut callee_cache: BTreeMap<&str, Vec<String>> = BTreeMap::new();
            while let Some((name, idx)) = stack.pop() {
                let callees = callee_cache
                    .entry(name)
                    .or_insert_with(|| self.functions[name].callees());
                if idx < callees.len() {
                    let next = callees[idx].clone();
                    stack.push((name, idx + 1));
                    if let Some(next_ref) = self.functions.get_key_value(next.as_str()) {
                        let key = next_ref.0.as_str();
                        match colour[key] {
                            Colour::Grey => return true,
                            Colour::White => {
                                colour.insert(key, Colour::Grey);
                                stack.push((key, 0));
                            }
                            Colour::Black => {}
                        }
                    }
                } else {
                    colour.insert(name, Colour::Black);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Insn, Operand, Reg};

    fn add_insn() -> Insn {
        Insn::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Imm(1),
        }
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(
            Terminator::Branch(BlockId(3)).successors(),
            vec![BlockId(3)]
        );
        let c = Terminator::CondBranch {
            cond: Cond::Eq,
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        assert_eq!(c.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Return.successors().is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_branch() {
        let f = Function {
            name: "f".into(),
            blocks: vec![Block::empty(Terminator::Branch(BlockId(7)))],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_callee() {
        let mut p = Program::new();
        let mut f = Function::stub("main");
        f.blocks[0].insns.push(Insn::Call {
            func: "ghost".into(),
        });
        p.add_function(f);
        let err = p.validate().unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn callees_deduplicates_in_order() {
        let mut f = Function::stub("main");
        for name in ["a", "b", "a"] {
            f.blocks[0].insns.push(Insn::Call { func: name.into() });
        }
        assert_eq!(f.callees(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn recursion_detection() {
        let mut p = Program::new();
        let mut f = Function::stub("f");
        f.blocks[0].insns.push(Insn::Call { func: "g".into() });
        let mut g = Function::stub("g");
        g.blocks[0].insns.push(Insn::Call { func: "f".into() });
        p.add_function(f);
        p.add_function(g);
        assert!(p.has_recursion());

        let mut q = Program::new();
        let mut a = Function::stub("a");
        a.blocks[0].insns.push(Insn::Call { func: "b".into() });
        q.add_function(a);
        q.add_function(Function::stub("b"));
        assert!(!q.has_recursion());
    }

    #[test]
    fn self_recursion_detected() {
        let mut p = Program::new();
        let mut f = Function::stub("f");
        f.blocks[0].insns.push(Insn::Call { func: "f".into() });
        p.add_function(f);
        assert!(p.has_recursion());
    }

    #[test]
    fn insn_count_includes_terminators() {
        let mut f = Function::stub("f");
        f.blocks[0].insns.push(add_insn());
        assert_eq!(f.insn_count(), 2);
    }

    #[test]
    fn display_renders_blocks() {
        let f = Function::stub("tiny");
        let text = f.to_string();
        assert!(text.contains("tiny:"));
        assert!(text.contains("ret"));
    }
}
