//! Instruction energy taxonomy.
//!
//! Both the analytical energy model (paper refs \[8\], \[9\]: Tiwari-style
//! "base cost + circuit-state overhead" models for the Cortex-M0 and the
//! GR712RC) and the simulator's hidden ground-truth model are expressed
//! over a small number of *energy classes* rather than individual opcodes —
//! exactly the abstraction level those references found sufficient for
//! < 5 % prediction error.

use crate::insn::{AluOp, Insn};
use crate::program::Terminator;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of [`EnergyClass`] variants (size of the overhead matrix).
pub const ENERGY_CLASS_COUNT: usize = 9;

/// Coarse per-instruction energy class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EnergyClass {
    /// Single-cycle ALU datapath (add/sub/logic/shift/cmp/mov/csel).
    Alu,
    /// Hardware multiplier (fast, power-hungry).
    Mul,
    /// Iterative divider.
    Div,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Control transfer (branches, call, return).
    Branch,
    /// Stack multi-transfer (push/pop), per instruction.
    Stack,
    /// Port I/O (radio, sensors) — dominated by pad drivers.
    Io,
    /// Pipeline idle (`nop`, stalls).
    Idle,
}

impl EnergyClass {
    /// All classes in matrix order.
    pub const ALL: [EnergyClass; ENERGY_CLASS_COUNT] = [
        EnergyClass::Alu,
        EnergyClass::Mul,
        EnergyClass::Div,
        EnergyClass::Load,
        EnergyClass::Store,
        EnergyClass::Branch,
        EnergyClass::Stack,
        EnergyClass::Io,
        EnergyClass::Idle,
    ];

    /// Index into the class-overhead matrix.
    pub fn index(self) -> usize {
        match self {
            EnergyClass::Alu => 0,
            EnergyClass::Mul => 1,
            EnergyClass::Div => 2,
            EnergyClass::Load => 3,
            EnergyClass::Store => 4,
            EnergyClass::Branch => 5,
            EnergyClass::Stack => 6,
            EnergyClass::Io => 7,
            EnergyClass::Idle => 8,
        }
    }

    /// Classify an instruction.
    pub fn of_insn(insn: &Insn) -> EnergyClass {
        match insn {
            Insn::Alu { op, .. } => match op {
                AluOp::Mul => EnergyClass::Mul,
                AluOp::Div | AluOp::Rem => EnergyClass::Div,
                _ => EnergyClass::Alu,
            },
            Insn::Mov { .. } | Insn::MovImm32 { .. } | Insn::Cmp { .. } | Insn::Csel { .. } => {
                EnergyClass::Alu
            }
            Insn::Ldr { .. } => EnergyClass::Load,
            Insn::Str { .. } => EnergyClass::Store,
            Insn::Push { .. } | Insn::Pop { .. } => EnergyClass::Stack,
            Insn::Call { .. } => EnergyClass::Branch,
            Insn::In { .. } | Insn::Out { .. } => EnergyClass::Io,
            Insn::Nop => EnergyClass::Idle,
        }
    }

    /// Classify a block terminator.
    pub fn of_terminator(t: &Terminator) -> EnergyClass {
        match t {
            Terminator::Branch(_) | Terminator::CondBranch { .. } | Terminator::Return => {
                EnergyClass::Branch
            }
            Terminator::Halt => EnergyClass::Idle,
        }
    }
}

impl fmt::Display for EnergyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnergyClass::Alu => "alu",
            EnergyClass::Mul => "mul",
            EnergyClass::Div => "div",
            EnergyClass::Load => "load",
            EnergyClass::Store => "store",
            EnergyClass::Branch => "branch",
            EnergyClass::Stack => "stack",
            EnergyClass::Io => "io",
            EnergyClass::Idle => "idle",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Operand, Reg};

    #[test]
    fn indices_are_a_bijection() {
        for (i, c) in EnergyClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(EnergyClass::ALL.len(), ENERGY_CLASS_COUNT);
    }

    #[test]
    fn classification_covers_key_opcodes() {
        let mul = Insn::Alu {
            op: AluOp::Mul,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Reg(Reg::R1),
        };
        assert_eq!(EnergyClass::of_insn(&mul), EnergyClass::Mul);
        let shl = Insn::Alu {
            op: AluOp::Lsl,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Imm(3),
        };
        assert_eq!(EnergyClass::of_insn(&shl), EnergyClass::Alu);
        let outp = Insn::Out {
            rs: Reg::R0,
            port: 1,
        };
        assert_eq!(EnergyClass::of_insn(&outp), EnergyClass::Io);
        assert_eq!(EnergyClass::of_insn(&Insn::Nop), EnergyClass::Idle);
    }

    #[test]
    fn terminators_are_branch_class_except_halt() {
        use crate::program::BlockId;
        assert_eq!(
            EnergyClass::of_terminator(&Terminator::Branch(BlockId(0))),
            EnergyClass::Branch
        );
        assert_eq!(
            EnergyClass::of_terminator(&Terminator::Halt),
            EnergyClass::Idle
        );
    }
}
