//! Binary encoding of PG32 instructions.
//!
//! Each instruction encodes to a variable number of 16-bit halfwords
//! (Thumb-style), giving programs a realistic code-size/footprint metric
//! that the compiler's optimisation passes trade against time and energy
//! (aggressive unrolling and inlining grow the binary). The decoder is a
//! total inverse of the encoder over the encodable subset, which the
//! property tests exercise.

use crate::insn::{AluOp, Cond, Insn, Operand, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by [`decode_insn`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeInsnError {
    /// The stream ended in the middle of an instruction.
    Truncated,
    /// An opcode nibble that no instruction uses.
    BadOpcode(u16),
    /// A register field outside 0–15 (impossible for 4-bit fields, kept for
    /// forward compatibility) or a malformed sub-field.
    BadField(&'static str),
}

impl fmt::Display for DecodeInsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeInsnError::Truncated => write!(f, "instruction stream truncated"),
            DecodeInsnError::BadOpcode(w) => write!(f, "unknown opcode word {w:#06x}"),
            DecodeInsnError::BadField(what) => write!(f, "malformed {what} field"),
        }
    }
}

impl std::error::Error for DecodeInsnError {}

// Major opcodes (top 4 bits of the first halfword).
const OP_ALU_REG: u16 = 0x0;
const OP_ALU_IMM: u16 = 0x1;
const OP_MOV: u16 = 0x2;
const OP_MOV32: u16 = 0x3;
const OP_CMP: u16 = 0x4;
const OP_CSEL: u16 = 0x5;
const OP_LDR: u16 = 0x6;
const OP_STR: u16 = 0x7;
const OP_PUSH: u16 = 0x8;
const OP_POP: u16 = 0x9;
const OP_CALL: u16 = 0xA;
const OP_IO: u16 = 0xB;
const OP_NOP: u16 = 0xC;

fn alu_code(op: AluOp) -> u16 {
    AluOp::ALL
        .iter()
        .position(|o| *o == op)
        .expect("alu op in table") as u16
}

fn alu_from_code(c: u16) -> Option<AluOp> {
    AluOp::ALL.get(c as usize).copied()
}

fn cond_code(c: Cond) -> u16 {
    Cond::ALL
        .iter()
        .position(|o| *o == c)
        .expect("cond in table") as u16
}

fn cond_from_code(c: u16) -> Option<Cond> {
    Cond::ALL.get(c as usize).copied()
}

fn reg4(r: Reg) -> u16 {
    r.index() as u16
}

fn reg_from(bits: u16) -> Reg {
    Reg::from_index((bits & 0xF) as usize).expect("4-bit register field")
}

/// Encode one instruction, appending 16-bit halfwords to `out`.
///
/// Call-target names are encoded as a length-prefixed UTF-16-agnostic byte
/// pair packing (one halfword per two bytes), so encoding is lossless.
///
/// # Panics
/// Panics if an `Imm` operand does not fit in 16 signed bits (the code
/// generator materialises larger constants with [`Insn::MovImm32`]) or a
/// call-target name is longer than 255 bytes.
pub fn encode_insn(insn: &Insn, out: &mut Vec<u16>) {
    let word = |major: u16, a: u16, b: u16, c: u16| -> u16 {
        (major << 12) | ((a & 0xF) << 8) | ((b & 0xF) << 4) | (c & 0xF)
    };
    match insn {
        Insn::Alu { op, rd, rn, src } => match src {
            Operand::Reg(rm) => {
                out.push(word(OP_ALU_REG, reg4(*rd), reg4(*rn), reg4(*rm)));
                out.push(alu_code(*op));
            }
            Operand::Imm(v) => {
                assert!(
                    i32::from(*v as i16) == *v,
                    "ALU immediate {v} out of 16-bit range"
                );
                out.push(word(OP_ALU_IMM, reg4(*rd), reg4(*rn), alu_code(*op)));
                out.push(*v as i16 as u16);
            }
        },
        Insn::Mov { rd, src } => match src {
            Operand::Reg(rm) => out.push(word(OP_MOV, reg4(*rd), reg4(*rm), 0)),
            Operand::Imm(v) => {
                assert!(
                    i32::from(*v as i16) == *v,
                    "MOV immediate {v} out of 16-bit range"
                );
                out.push(word(OP_MOV, reg4(*rd), 0, 1));
                out.push(*v as i16 as u16);
            }
        },
        Insn::MovImm32 { rd, imm } => {
            out.push(word(OP_MOV32, reg4(*rd), 0, 0));
            out.push((*imm & 0xFFFF) as u16);
            out.push(((*imm >> 16) & 0xFFFF) as u16);
        }
        Insn::Cmp { rn, src } => match src {
            Operand::Reg(rm) => out.push(word(OP_CMP, reg4(*rn), reg4(*rm), 0)),
            Operand::Imm(v) => {
                assert!(
                    i32::from(*v as i16) == *v,
                    "CMP immediate {v} out of 16-bit range"
                );
                out.push(word(OP_CMP, reg4(*rn), 0, 1));
                out.push(*v as i16 as u16);
            }
        },
        Insn::Csel { cond, rd, rt, rf } => {
            out.push(word(OP_CSEL, reg4(*rd), reg4(*rt), reg4(*rf)));
            out.push(cond_code(*cond));
        }
        Insn::Ldr { rd, base, offset }
        | Insn::Str {
            rs: rd,
            base,
            offset,
        } => {
            // Fixed two-halfword form: mode nibble selects the meaning of
            // the second halfword (0 = offset register index, 1 = signed
            // immediate).
            let major = if matches!(insn, Insn::Ldr { .. }) {
                OP_LDR
            } else {
                OP_STR
            };
            match offset {
                Operand::Reg(ro) => {
                    out.push(word(major, reg4(*rd), reg4(*base), 0));
                    out.push(reg4(*ro));
                }
                Operand::Imm(v) => {
                    assert!(
                        i32::from(*v as i16) == *v,
                        "memory offset {v} out of 16-bit range"
                    );
                    out.push(word(major, reg4(*rd), reg4(*base), 1));
                    out.push(*v as i16 as u16);
                }
            }
        }
        Insn::Push { regs } | Insn::Pop { regs } => {
            let major = if matches!(insn, Insn::Push { .. }) {
                OP_PUSH
            } else {
                OP_POP
            };
            out.push(word(major, 0, 0, 0));
            let mut mask: u16 = 0;
            for r in regs {
                mask |= 1 << r.index();
            }
            out.push(mask);
        }
        Insn::Call { func } => {
            let bytes = func.as_bytes();
            assert!(bytes.len() <= 255, "call target name too long");
            out.push(word(OP_CALL, 0, 0, 0) | (bytes.len() as u16 & 0xFF));
            let mut i = 0;
            while i < bytes.len() {
                let lo = bytes[i] as u16;
                let hi = if i + 1 < bytes.len() {
                    bytes[i + 1] as u16
                } else {
                    0
                };
                out.push(lo | (hi << 8));
                i += 2;
            }
        }
        Insn::In { rd, port } => {
            out.push(word(OP_IO, reg4(*rd), 0, 0));
            out.push(*port as u16);
        }
        Insn::Out { rs, port } => {
            out.push(word(OP_IO, reg4(*rs), 1, 0));
            out.push(*port as u16);
        }
        Insn::Nop => out.push(word(OP_NOP, 0, 0, 0)),
    }
}

/// Decode one instruction starting at `words[pos]`.
///
/// Returns the instruction and the position just past it.
///
/// # Errors
/// Returns [`DecodeInsnError`] if the stream is truncated or contains an
/// opcode/field the encoder never produces.
pub fn decode_insn(words: &[u16], pos: usize) -> Result<(Insn, usize), DecodeInsnError> {
    let w = *words.get(pos).ok_or(DecodeInsnError::Truncated)?;
    let major = w >> 12;
    let a = (w >> 8) & 0xF;
    let b = (w >> 4) & 0xF;
    let c = w & 0xF;
    let need = |n: usize| -> Result<u16, DecodeInsnError> {
        words
            .get(pos + n)
            .copied()
            .ok_or(DecodeInsnError::Truncated)
    };
    match major {
        OP_ALU_REG => {
            let opw = need(1)?;
            let op = alu_from_code(opw).ok_or(DecodeInsnError::BadField("alu op"))?;
            Ok((
                Insn::Alu {
                    op,
                    rd: reg_from(a),
                    rn: reg_from(b),
                    src: Operand::Reg(reg_from(c)),
                },
                pos + 2,
            ))
        }
        OP_ALU_IMM => {
            let op = alu_from_code(c).ok_or(DecodeInsnError::BadField("alu op"))?;
            let imm = need(1)? as i16 as i32;
            Ok((
                Insn::Alu {
                    op,
                    rd: reg_from(a),
                    rn: reg_from(b),
                    src: Operand::Imm(imm),
                },
                pos + 2,
            ))
        }
        OP_MOV => {
            if c == 1 {
                let imm = need(1)? as i16 as i32;
                Ok((
                    Insn::Mov {
                        rd: reg_from(a),
                        src: Operand::Imm(imm),
                    },
                    pos + 2,
                ))
            } else {
                Ok((
                    Insn::Mov {
                        rd: reg_from(a),
                        src: Operand::Reg(reg_from(b)),
                    },
                    pos + 1,
                ))
            }
        }
        OP_MOV32 => {
            let lo = need(1)? as u32;
            let hi = need(2)? as u32;
            Ok((
                Insn::MovImm32 {
                    rd: reg_from(a),
                    imm: (lo | (hi << 16)) as i32,
                },
                pos + 3,
            ))
        }
        OP_CMP => {
            if c == 1 {
                let imm = need(1)? as i16 as i32;
                Ok((
                    Insn::Cmp {
                        rn: reg_from(a),
                        src: Operand::Imm(imm),
                    },
                    pos + 2,
                ))
            } else {
                Ok((
                    Insn::Cmp {
                        rn: reg_from(a),
                        src: Operand::Reg(reg_from(b)),
                    },
                    pos + 1,
                ))
            }
        }
        OP_CSEL => {
            let cw = need(1)?;
            let cond = cond_from_code(cw).ok_or(DecodeInsnError::BadField("condition"))?;
            Ok((
                Insn::Csel {
                    cond,
                    rd: reg_from(a),
                    rt: reg_from(b),
                    rf: reg_from(c),
                },
                pos + 2,
            ))
        }
        OP_LDR | OP_STR => {
            let second = need(1)?;
            let offset = match c {
                0 => {
                    if second > 15 {
                        return Err(DecodeInsnError::BadField("offset register"));
                    }
                    Operand::Reg(reg_from(second))
                }
                1 => Operand::Imm(second as i16 as i32),
                _ => return Err(DecodeInsnError::BadField("memory addressing mode")),
            };
            if major == OP_LDR {
                Ok((
                    Insn::Ldr {
                        rd: reg_from(a),
                        base: reg_from(b),
                        offset,
                    },
                    pos + 2,
                ))
            } else {
                Ok((
                    Insn::Str {
                        rs: reg_from(a),
                        base: reg_from(b),
                        offset,
                    },
                    pos + 2,
                ))
            }
        }
        OP_PUSH | OP_POP => {
            let mask = need(1)?;
            let regs: Vec<Reg> = Reg::ALL
                .iter()
                .copied()
                .filter(|r| mask & (1 << r.index()) != 0)
                .collect();
            if major == OP_PUSH {
                Ok((Insn::Push { regs }, pos + 2))
            } else {
                Ok((Insn::Pop { regs }, pos + 2))
            }
        }
        OP_CALL => {
            let len = (w & 0xFF) as usize;
            let halves = len.div_ceil(2);
            let mut bytes = Vec::with_capacity(len);
            for i in 0..halves {
                let hw = need(1 + i)?;
                bytes.push((hw & 0xFF) as u8);
                if bytes.len() < len {
                    bytes.push((hw >> 8) as u8);
                }
            }
            let func =
                String::from_utf8(bytes).map_err(|_| DecodeInsnError::BadField("call target"))?;
            Ok((Insn::Call { func }, pos + 1 + halves))
        }
        OP_IO => {
            let port = need(1)?;
            if port > 255 {
                return Err(DecodeInsnError::BadField("port"));
            }
            if b == 1 {
                Ok((
                    Insn::Out {
                        rs: reg_from(a),
                        port: port as u8,
                    },
                    pos + 2,
                ))
            } else {
                Ok((
                    Insn::In {
                        rd: reg_from(a),
                        port: port as u8,
                    },
                    pos + 2,
                ))
            }
        }
        OP_NOP => Ok((Insn::Nop, pos + 1)),
        other => Err(DecodeInsnError::BadOpcode(other << 12)),
    }
}

/// Encode a whole instruction sequence.
pub fn encode_sequence(insns: &[Insn]) -> Vec<u16> {
    let mut out = Vec::new();
    for i in insns {
        encode_insn(i, &mut out);
    }
    out
}

/// Decode a whole instruction stream.
///
/// # Errors
/// Returns the first decode failure.
pub fn decode_sequence(words: &[u16]) -> Result<Vec<Insn>, DecodeInsnError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < words.len() {
        let (i, next) = decode_insn(words, pos)?;
        out.push(i);
        pos = next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Insn> {
        vec![
            Insn::Alu {
                op: AluOp::Add,
                rd: Reg::R0,
                rn: Reg::R1,
                src: Operand::Reg(Reg::R2),
            },
            Insn::Alu {
                op: AluOp::Lsr,
                rd: Reg::R7,
                rn: Reg::R7,
                src: Operand::Imm(-5),
            },
            Insn::Mov {
                rd: Reg::R3,
                src: Operand::Reg(Reg::SP),
            },
            Insn::Mov {
                rd: Reg::R3,
                src: Operand::Imm(1234),
            },
            Insn::MovImm32 {
                rd: Reg::R4,
                imm: -123_456_789,
            },
            Insn::Cmp {
                rn: Reg::R1,
                src: Operand::Imm(0),
            },
            Insn::Cmp {
                rn: Reg::R1,
                src: Operand::Reg(Reg::R9),
            },
            Insn::Csel {
                cond: Cond::Le,
                rd: Reg::R0,
                rt: Reg::R1,
                rf: Reg::R2,
            },
            Insn::Ldr {
                rd: Reg::R0,
                base: Reg::SP,
                offset: Operand::Imm(-8),
            },
            Insn::Ldr {
                rd: Reg::R0,
                base: Reg::R1,
                offset: Operand::Reg(Reg::R2),
            },
            Insn::Str {
                rs: Reg::R5,
                base: Reg::R6,
                offset: Operand::Imm(16),
            },
            Insn::Push {
                regs: vec![Reg::R4, Reg::R5, Reg::LR],
            },
            Insn::Pop {
                regs: vec![Reg::R4, Reg::R5, Reg::LR],
            },
            Insn::Call {
                func: "xtea_encrypt".into(),
            },
            Insn::Call { func: "f".into() },
            Insn::In {
                rd: Reg::R0,
                port: 3,
            },
            Insn::Out {
                rs: Reg::R1,
                port: 250,
            },
            Insn::Nop,
        ]
    }

    #[test]
    fn round_trip_every_sample() {
        for insn in samples() {
            let mut words = Vec::new();
            encode_insn(&insn, &mut words);
            let (decoded, used) = decode_insn(&words, 0).expect("decode");
            assert_eq!(decoded, insn);
            assert_eq!(used, words.len(), "no trailing words for {insn}");
        }
    }

    #[test]
    fn round_trip_sequence() {
        let insns = samples();
        let words = encode_sequence(&insns);
        assert_eq!(decode_sequence(&words).expect("decode"), insns);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut words = Vec::new();
        encode_insn(
            &Insn::MovImm32 {
                rd: Reg::R0,
                imm: 7,
            },
            &mut words,
        );
        words.pop();
        assert_eq!(decode_insn(&words, 0), Err(DecodeInsnError::Truncated));
    }

    #[test]
    fn bad_opcode_is_an_error() {
        assert!(matches!(
            decode_insn(&[0xF000], 0),
            Err(DecodeInsnError::BadOpcode(_))
        ));
    }

    #[test]
    fn odd_length_call_names_round_trip() {
        for name in ["a", "ab", "abc", "transmit_frame_9"] {
            let insn = Insn::Call { func: name.into() };
            let mut words = Vec::new();
            encode_insn(&insn, &mut words);
            let (decoded, _) = decode_insn(&words, 0).expect("decode");
            assert_eq!(decoded, insn);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0usize..16).prop_map(|i| Reg::from_index(i).expect("index < 16"))
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (-32768i32..32768).prop_map(Operand::Imm),
        ]
    }

    fn arb_insn() -> impl Strategy<Value = Insn> {
        let alu = (
            0usize..AluOp::ALL.len(),
            arb_reg(),
            arb_reg(),
            arb_operand(),
        )
            .prop_map(|(o, rd, rn, src)| Insn::Alu {
                op: AluOp::ALL[o],
                rd,
                rn,
                src,
            });
        let mov = (arb_reg(), arb_operand()).prop_map(|(rd, src)| Insn::Mov { rd, src });
        let mov32 = (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Insn::MovImm32 { rd, imm });
        let cmp = (arb_reg(), arb_operand()).prop_map(|(rn, src)| Insn::Cmp { rn, src });
        let csel = (0usize..Cond::ALL.len(), arb_reg(), arb_reg(), arb_reg()).prop_map(
            |(c, rd, rt, rf)| Insn::Csel {
                cond: Cond::ALL[c],
                rd,
                rt,
                rf,
            },
        );
        let ldr = (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, base, offset)| Insn::Ldr {
            rd,
            base,
            offset,
        });
        let str_ = (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rs, base, offset)| Insn::Str {
            rs,
            base,
            offset,
        });
        let push = proptest::collection::btree_set(0usize..16, 0..8).prop_map(|s| Insn::Push {
            regs: s
                .into_iter()
                .map(|i| Reg::from_index(i).expect("idx"))
                .collect(),
        });
        let call = "[a-z_][a-z0-9_]{0,30}".prop_map(|func| Insn::Call { func });
        let io = (arb_reg(), any::<u8>(), any::<bool>()).prop_map(|(r, port, dir)| {
            if dir {
                Insn::In { rd: r, port }
            } else {
                Insn::Out { rs: r, port }
            }
        });
        prop_oneof![
            alu,
            mov,
            mov32,
            cmp,
            csel,
            ldr,
            str_,
            push,
            call,
            io,
            Just(Insn::Nop)
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(insns in proptest::collection::vec(arb_insn(), 0..40)) {
            let words = encode_sequence(&insns);
            let decoded = decode_sequence(&words).expect("decode what we encoded");
            prop_assert_eq!(decoded, insns);
        }

        #[test]
        fn decoder_never_panics(words in proptest::collection::vec(any::<u16>(), 0..64)) {
            let _ = decode_sequence(&words);
        }
    }
}
