//! Task-set model for the coordination layer.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One way to execute a task: a compiled variant (and, on DVFS platforms,
/// an operating point) on a specific core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecOption {
    /// Human-readable label, e.g. `"v2@204MHz"` or `"perf"`.
    pub label: String,
    /// Core this option runs on.
    pub core: String,
    /// Worst-case (or profiled-p95) execution time, microseconds.
    pub time_us: f64,
    /// Energy per activation, microjoules.
    pub energy_uj: f64,
    /// Countermeasure rung of the compiled variant behind this option
    /// (0 = unhardened, 1 = ladderised). Judged against the owning
    /// task's `security_floor`.
    pub security_level: u32,
}

/// A schedulable task with its execution options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordTask {
    /// Task name (matches the CSL task name).
    pub name: String,
    /// Alternative ways to execute (must be non-empty).
    pub options: Vec<ExecOption>,
    /// Tasks that must complete before this one starts.
    pub after: Vec<String>,
    /// Optional per-task absolute deadline (µs from frame start).
    pub deadline_us: Option<f64>,
    /// Re-executions reserved on fault detection (the CSL
    /// `reliability(k)` clause): the schedule must keep room for `k`
    /// back-to-back recovery runs of the chosen option after the
    /// primary run. 0 = no fault tolerance contracted.
    pub reexecutions: u32,
    /// Minimum countermeasure rung acceptable at placement (the CSL
    /// `security_floor(n)` clause). Options whose `security_level` is
    /// below the floor are filtered out during [`TaskSet::new`]; 0
    /// (the default) accepts every option.
    pub security_floor: u32,
}

impl CoordTask {
    /// A task with the given options and no dependencies.
    pub fn new(name: impl Into<String>, options: Vec<ExecOption>) -> CoordTask {
        CoordTask {
            name: name.into(),
            options,
            after: Vec::new(),
            deadline_us: None,
            reexecutions: 0,
            security_floor: 0,
        }
    }

    /// Builder-style dependency addition.
    pub fn after(mut self, deps: &[&str]) -> CoordTask {
        self.after.extend(deps.iter().map(|s| s.to_string()));
        self
    }

    /// Builder-style per-task deadline.
    pub fn with_deadline_us(mut self, deadline: f64) -> CoordTask {
        self.deadline_us = Some(deadline);
        self
    }

    /// Builder-style re-execution (reliability) reservation.
    pub fn with_reexecutions(mut self, k: u32) -> CoordTask {
        self.reexecutions = k;
        self
    }

    /// Builder-style security floor (minimum acceptable countermeasure
    /// rung for any placed option).
    pub fn with_security_floor(mut self, floor: u32) -> CoordTask {
        self.security_floor = floor;
        self
    }
}

/// Task-set validation errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskSetError {
    /// Two tasks share a name.
    Duplicate(String),
    /// A dependency names an unknown task.
    UnknownDependency {
        /// The dependent task.
        task: String,
        /// The missing dependency.
        missing: String,
    },
    /// The dependency graph is cyclic.
    Cyclic,
    /// A task has no execution options.
    NoOptions(String),
    /// An option references a core not in the platform's core list.
    UnknownCore {
        /// The task.
        task: String,
        /// The unknown core.
        core: String,
    },
    /// Every option of a task sits below its contracted security
    /// floor, so nothing can be placed for it.
    BelowSecurityFloor {
        /// The task.
        task: String,
        /// The contracted floor.
        floor: u32,
        /// The highest security level any of its options offered.
        best_level: u32,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::Duplicate(n) => write!(f, "duplicate task `{n}`"),
            TaskSetError::UnknownDependency { task, missing } => {
                write!(f, "task `{task}` depends on unknown `{missing}`")
            }
            TaskSetError::Cyclic => write!(f, "cyclic task dependencies"),
            TaskSetError::NoOptions(n) => write!(f, "task `{n}` has no execution options"),
            TaskSetError::UnknownCore { task, core } => {
                write!(f, "task `{task}` has an option on unknown core `{core}`")
            }
            TaskSetError::BelowSecurityFloor {
                task,
                floor,
                best_level,
            } => {
                write!(
                    f,
                    "task `{task}` requires security_floor({floor}) but its best \
                     option only reaches level {best_level}"
                )
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

/// A validated task set plus the platform's core names and the global
/// deadline (the frame/period end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    /// Tasks in topological order.
    pub tasks: Vec<CoordTask>,
    /// Core names available for mapping.
    pub cores: Vec<String>,
    /// End-to-end deadline in microseconds.
    pub deadline_us: f64,
}

impl TaskSet {
    /// Build and validate a task set; tasks are re-ordered topologically.
    ///
    /// # Errors
    /// See [`TaskSetError`].
    pub fn new(
        mut tasks: Vec<CoordTask>,
        cores: Vec<String>,
        deadline_us: f64,
    ) -> Result<TaskSet, TaskSetError> {
        // Enforce each task's security floor before any placement can
        // see the options: a below-floor variant must never be chosen,
        // not merely deprioritised. Floor 0 filters nothing, so task
        // sets without security contracts are bit-identical to before.
        for t in &mut tasks {
            if t.security_floor == 0 || t.options.is_empty() {
                continue;
            }
            let best = t
                .options
                .iter()
                .map(|o| o.security_level)
                .max()
                .unwrap_or(0);
            if best < t.security_floor {
                return Err(TaskSetError::BelowSecurityFloor {
                    task: t.name.clone(),
                    floor: t.security_floor,
                    best_level: best,
                });
            }
            let floor = t.security_floor;
            t.options.retain(|o| o.security_level >= floor);
        }
        let mut seen = HashSet::new();
        for t in &tasks {
            if !seen.insert(t.name.clone()) {
                return Err(TaskSetError::Duplicate(t.name.clone()));
            }
            if t.options.is_empty() {
                return Err(TaskSetError::NoOptions(t.name.clone()));
            }
            for o in &t.options {
                if !cores.contains(&o.core) {
                    return Err(TaskSetError::UnknownCore {
                        task: t.name.clone(),
                        core: o.core.clone(),
                    });
                }
            }
        }
        for t in &tasks {
            for d in &t.after {
                if !seen.contains(d) {
                    return Err(TaskSetError::UnknownDependency {
                        task: t.name.clone(),
                        missing: d.clone(),
                    });
                }
            }
        }
        // Kahn topological sort.
        let mut indegree: HashMap<&str, usize> = tasks
            .iter()
            .map(|t| (t.name.as_str(), t.after.len()))
            .collect();
        let mut ready: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.after.is_empty())
            .map(|(i, _)| i)
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(tasks.len());
        while let Some(i) = ready.pop() {
            order.push(i);
            for (j, t) in tasks.iter().enumerate() {
                if t.after.iter().any(|d| d == &tasks[i].name) {
                    let e = indegree.get_mut(t.name.as_str()).expect("indexed");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        if order.len() != tasks.len() {
            return Err(TaskSetError::Cyclic);
        }
        let sorted = order.into_iter().map(|i| tasks[i].clone()).collect();
        Ok(TaskSet {
            tasks: sorted,
            cores,
            deadline_us,
        })
    }

    /// Look up a task.
    pub fn task(&self, name: &str) -> Option<&CoordTask> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Index of a task by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(core: &str, t: f64, e: f64) -> ExecOption {
        ExecOption {
            label: format!("{core}-{t}"),
            core: core.into(),
            time_us: t,
            energy_uj: e,
            security_level: 0,
        }
    }

    fn cores() -> Vec<String> {
        vec!["c0".into(), "c1".into()]
    }

    #[test]
    fn builds_and_topologically_sorts() {
        let tasks = vec![
            CoordTask::new("b", vec![opt("c0", 10.0, 1.0)]).after(&["a"]),
            CoordTask::new("a", vec![opt("c0", 5.0, 1.0)]),
            CoordTask::new("c", vec![opt("c1", 1.0, 1.0)]).after(&["a", "b"]),
        ];
        let set = TaskSet::new(tasks, cores(), 100.0).expect("valid");
        let pos = |n: &str| set.index_of(n).expect("present");
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn rejects_duplicates_and_cycles() {
        let dup = vec![
            CoordTask::new("a", vec![opt("c0", 1.0, 1.0)]),
            CoordTask::new("a", vec![opt("c0", 1.0, 1.0)]),
        ];
        assert!(matches!(
            TaskSet::new(dup, cores(), 10.0),
            Err(TaskSetError::Duplicate(_))
        ));
        let cyc = vec![
            CoordTask::new("a", vec![opt("c0", 1.0, 1.0)]).after(&["b"]),
            CoordTask::new("b", vec![opt("c0", 1.0, 1.0)]).after(&["a"]),
        ];
        assert!(matches!(
            TaskSet::new(cyc, cores(), 10.0),
            Err(TaskSetError::Cyclic)
        ));
    }

    #[test]
    fn rejects_unknown_core_and_empty_options() {
        let bad_core = vec![CoordTask::new("a", vec![opt("gpu9", 1.0, 1.0)])];
        assert!(matches!(
            TaskSet::new(bad_core, cores(), 10.0),
            Err(TaskSetError::UnknownCore { .. })
        ));
        let no_opt = vec![CoordTask::new("a", vec![])];
        assert!(matches!(
            TaskSet::new(no_opt, cores(), 10.0),
            Err(TaskSetError::NoOptions(_))
        ));
    }

    #[test]
    fn security_floor_filters_below_floor_options() {
        let mut hardened = opt("c0", 20.0, 4.0);
        hardened.security_level = 1;
        let tasks = vec![
            CoordTask::new("enc", vec![opt("c0", 10.0, 2.0), hardened.clone()])
                .with_security_floor(1),
        ];
        let set = TaskSet::new(tasks, cores(), 100.0).expect("valid");
        let enc = set.task("enc").expect("present");
        assert_eq!(enc.options, vec![hardened]);
    }

    #[test]
    fn security_floor_zero_is_bit_identical_to_no_floor() {
        let tasks = || {
            vec![
                CoordTask::new("a", vec![opt("c0", 5.0, 1.0), opt("c1", 3.0, 2.0)]),
                CoordTask::new("b", vec![opt("c0", 10.0, 1.0)]).after(&["a"]),
            ]
        };
        let plain = TaskSet::new(tasks(), cores(), 100.0).expect("valid");
        let floored = TaskSet::new(
            tasks()
                .into_iter()
                .map(|t| t.with_security_floor(0))
                .collect(),
            cores(),
            100.0,
        )
        .expect("valid");
        assert_eq!(plain, floored);
    }

    #[test]
    fn all_options_below_floor_is_a_structured_error() {
        let tasks = vec![CoordTask::new("enc", vec![opt("c0", 10.0, 2.0)]).with_security_floor(2)];
        assert_eq!(
            TaskSet::new(tasks, cores(), 100.0),
            Err(TaskSetError::BelowSecurityFloor {
                task: "enc".into(),
                floor: 2,
                best_level: 0,
            })
        );
    }

    #[test]
    fn rejects_unknown_dependency() {
        let tasks = vec![CoordTask::new("a", vec![opt("c0", 1.0, 1.0)]).after(&["ghost"])];
        assert!(matches!(
            TaskSet::new(tasks, cores(), 10.0),
            Err(TaskSetError::UnknownDependency { .. })
        ));
    }
}
