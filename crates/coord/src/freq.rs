//! DVFS cost expansion for predictable cores.
//!
//! On a predictable core the cycle count of a task is frequency-invariant,
//! so each frequency level turns one compiled variant into one
//! [`crate::ExecOption`]:
//!
//! ```text
//!   t(f)      = cycles / f
//!   E_dyn(f)  = E_dyn(f_nom) · (V(f)/V(f_nom))²     (CV²f over t)
//!   E_leak(f) = P_leak(f) · t(f)
//! ```
//!
//! Because leakage no longer shrinks with feature size (paper
//! Section III-C), the energy-vs-frequency curve has an interior **sweet
//! spot**: racing at `f_max` wastes dynamic power, crawling at `f_min`
//! accumulates leakage. The SpaceWire use case's 52 % energy saving comes
//! precisely from scheduling at this sweet spot while still proving the
//! deadline.

use crate::task::ExecOption;
use serde::{Deserialize, Serialize};

/// One DVFS level of a predictable core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqLevel {
    /// Clock frequency in MHz.
    pub mhz: f64,
    /// Supply voltage relative to nominal (1.0 at `f_nom`).
    pub volt_rel: f64,
    /// Leakage power at this level, milliwatts.
    pub leak_mw: f64,
}

/// The GR712RC-flavoured level table used by the SpaceWire experiments:
/// nominal 100 MHz, scalable down to 12.5 MHz with voltage scaling, and
/// leakage typical of a rad-hard process (high, weakly
/// frequency-dependent).
pub fn gr712_levels() -> Vec<FreqLevel> {
    vec![
        FreqLevel {
            mhz: 12.5,
            volt_rel: 0.55,
            leak_mw: 10.0,
        },
        FreqLevel {
            mhz: 25.0,
            volt_rel: 0.60,
            leak_mw: 11.0,
        },
        FreqLevel {
            mhz: 50.0,
            volt_rel: 0.72,
            leak_mw: 13.0,
        },
        FreqLevel {
            mhz: 75.0,
            volt_rel: 0.85,
            leak_mw: 16.0,
        },
        FreqLevel {
            mhz: 100.0,
            volt_rel: 1.00,
            leak_mw: 20.0,
        },
    ]
}

/// Expand one compiled variant into per-frequency execution options.
///
/// * `label` — the variant's name, suffixed with `@<mhz>MHz` per level;
/// * `core` — the core these options map to;
/// * `wcet_cycles` — the variant's static WCET in cycles;
/// * `dyn_energy_uj_nominal` — its dynamic (switching) energy at the
///   nominal level, from the static energy analysis;
/// * `levels` — the core's DVFS table (last entry = nominal).
pub fn dvfs_options(
    label: &str,
    core: &str,
    wcet_cycles: u64,
    dyn_energy_uj_nominal: f64,
    levels: &[FreqLevel],
) -> Vec<ExecOption> {
    levels
        .iter()
        .map(|l| {
            let time_us = wcet_cycles as f64 / l.mhz;
            let e_dyn = dyn_energy_uj_nominal * l.volt_rel * l.volt_rel;
            let e_leak = l.leak_mw * time_us / 1e6 * 1e3; // mW·µs → µJ
            ExecOption {
                label: format!("{label}@{}MHz", l.mhz),
                core: core.to_string(),
                time_us,
                energy_uj: e_dyn + e_leak,
                security_level: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scales_inversely_with_frequency() {
        let opts = dvfs_options("v0", "cpu0", 1_000_000, 10.0, &gr712_levels());
        assert_eq!(opts.len(), 5);
        assert!(opts[0].time_us > opts[4].time_us);
        assert!((opts[0].time_us - 1_000_000.0 / 12.5).abs() < 1e-9);
        assert!((opts[4].time_us - 1_000_000.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_has_an_interior_sweet_spot() {
        // A work chunk long enough for leakage to matter at low f.
        let opts = dvfs_options("v0", "cpu0", 5_000_000, 5000.0, &gr712_levels());
        let energies: Vec<f64> = opts.iter().map(|o| o.energy_uj).collect();
        let min_idx = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        assert!(
            min_idx != 0 && min_idx != energies.len() - 1,
            "sweet spot must be interior: {energies:?}"
        );
    }

    #[test]
    fn nominal_energy_matches_input_plus_leakage() {
        let levels = gr712_levels();
        let opts = dvfs_options("v0", "cpu0", 100_000, 50.0, &levels);
        let nominal = &opts[4];
        let t_us = 100_000.0 / 100.0;
        let leak_uj = 20.0 * t_us / 1e3;
        assert!((nominal.energy_uj - (50.0 + leak_uj)).abs() < 1e-9);
    }

    #[test]
    fn labels_and_cores_are_propagated() {
        let opts = dvfs_options("fast", "leon-1", 1000, 1.0, &gr712_levels());
        assert!(opts.iter().all(|o| o.core == "leon-1"));
        assert!(opts[0].label.contains("fast@12.5MHz"));
    }
}
