//! Energy-aware multi-version DAG scheduling, HEFT-style.
//!
//! Reproduces the scheduling strategy of paper refs \[20\] ("Energy-aware
//! scheduling of multi-version tasks on heterogeneous real-time systems")
//! and \[21\]: each task has several *versions/options* with different
//! time/energy costs on different cores; the scheduler chooses one option
//! per task plus a start time, respecting dependencies and core
//! exclusivity, such that the end-to-end deadline holds and total energy
//! is minimal.
//!
//! # Placement: upward ranks + insertion
//!
//! Both solvers share one placement policy (so they share their
//! feasibility notion), built from the two classic HEFT ingredients:
//!
//! * **Upward ranks** — `rank(t) = w̄(t) + max over successors rank(s)`,
//!   where `w̄(t)` is the mean execution time over the task's options
//!   (the multi-version analogue of HEFT's mean-over-cores cost). Tasks
//!   are placed in a list order that always picks the *ready* task of
//!   highest upward rank, so the critical path is laid down first and
//!   short side tasks are placed after the chains they would otherwise
//!   delay.
//! * **Insertion-based placement** — instead of appending to the end of
//!   a core's busy window, placement scans the core's idle *gaps*
//!   (between already-placed executions) and starts the task in the
//!   earliest gap that fits after its dependencies finish. Cross-core
//!   dependencies routinely leave such gaps; append-at-end placement
//!   wastes them.
//!
//! # Witness / upgrade interaction
//!
//! [`schedule_energy_aware`] decides feasibility with a chain of
//! witnesses, tightest first: the per-task-fastest options, then a
//! greedy earliest-finish-time pass (each task takes the option with the
//! earliest *insertion* finish) — both under the HEFT rank order and
//! again under the plain topological index order, since rank ordering is
//! a heuristic that rare shapes invert (the pre-HEFT scheduler placed in
//! index order, and insertion subsumes its append placement pointwise
//! for a fixed order, so the new witness chain never reports infeasible
//! on an instance the old witness accepted). If every witness misses,
//! small assignment spaces are decided exactly by
//! [`schedule_branch_and_bound`].
//!
//! The feasible witness then anchors the optimisation: the heuristic
//! starts from the energy-minimal option of every task (energy
//! optimality on easy instances is untouched), and while a deadline is
//! violated applies the single-option *upgrade* with the smallest energy
//! penalty per microsecond of makespan saved. When no single upgrade
//! helps, it jumps to the witness assignment — which the pre-check
//! proved feasible — and a final downgrade sweep relaxes tasks back
//! toward greener options wherever slack remains.
//!
//! # Re-execution slack
//!
//! A task whose CSL contract carries `reliability(k)` reserves `(1+k)×`
//! its chosen option's duration on its core: the primary run plus `k`
//! back-to-back recovery slots for fault-detected re-execution.
//! Successors, core exclusivity, deadlines and the makespan all count
//! the full reserved window, so a valid schedule *proves* the deadline
//! holds even when every task's recovery runs execute. Energy accounts
//! only the primary run (recovery energy is spent only on an actual
//! fault). With `k = 0` everywhere the recovery terms are exactly
//! `0.0`, so schedules are bit-identical to the recovery-free policy.
//!
//! Two solvers:
//!
//! * [`schedule_energy_aware`] — the production heuristic above;
//! * [`schedule_branch_and_bound`] — exhaustive option assignment with
//!   energy pruning for small instances (the optimality reference used
//!   by the ablation bench A2 and the scheduler oracle suite).

use crate::task::{CoordTask, TaskSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One placed task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Task name.
    pub task: String,
    /// Chosen option label.
    pub option: String,
    /// Core the task runs on.
    pub core: String,
    /// Start time (µs).
    pub start_us: f64,
    /// Finish time of the primary (fault-free) run (µs).
    pub finish_us: f64,
    /// Energy of this execution (µJ).
    pub energy_uj: f64,
    /// Re-execution slack reserved after the primary run (µs): the
    /// task's contracted `reliability(k)` recovery runs, `k` back-to-back
    /// repeats of the chosen option. The core stays reserved until
    /// `finish_us + recovery_us`, and successors may not start before
    /// then — the schedule proves the deadline holds even when every
    /// recovery run executes. 0 when no fault tolerance is contracted.
    pub recovery_us: f64,
}

impl ScheduleEntry {
    /// End of the reserved window: primary finish plus recovery slack.
    /// Dependencies, core exclusivity and deadlines are all judged
    /// against this, not `finish_us`.
    pub fn reserved_until_us(&self) -> f64 {
        self.finish_us + self.recovery_us
    }
}

/// A complete schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Entries in start-time order.
    pub entries: Vec<ScheduleEntry>,
    /// End-to-end makespan (µs).
    pub makespan_us: f64,
    /// Total energy (µJ).
    pub total_energy_uj: f64,
}

/// `a` and `b` agree up to float noise (absolute 1µ-unit tolerance plus
/// a relative term for large magnitudes).
fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6_f64.max(1e-9 * a.abs().max(b.abs()))
}

impl Schedule {
    /// Entry for a task.
    pub fn entry(&self, task: &str) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.task == task)
    }

    /// Validate the schedule against its task set: every task placed
    /// exactly once, each entry's `(option, core)` pair is a real option
    /// of its task with matching duration, energy and re-execution
    /// slack (`recovery_us` must equal `reexecutions ×` the option's
    /// duration), dependencies precede, cores never overlap, deadlines
    /// met (global and per-task), and the recorded `makespan_us` /
    /// `total_energy_uj` equal the sums recomputed from the entries.
    /// Dependency order, core exclusivity, deadlines and the makespan
    /// all count the recovery slack: the schedule is proven feasible
    /// even when every task's `k` recovery runs execute.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, set: &TaskSet) -> Result<(), String> {
        if self.entries.len() != set.tasks.len() {
            return Err(format!(
                "schedule has {} entries for {} tasks",
                self.entries.len(),
                set.tasks.len()
            ));
        }
        for t in &set.tasks {
            let e = self
                .entry(&t.name)
                .ok_or(format!("task `{}` not scheduled", t.name))?;
            if e.finish_us < e.start_us {
                return Err(format!("task `{}` finishes before it starts", t.name));
            }
            // The (option, core) pair must name a real option of the
            // task, and the entry's duration/energy must be that
            // option's — an internally inconsistent schedule (stretched
            // execution, mislabelled variant, stolen energy figure) must
            // not validate.
            let opt = t
                .options
                .iter()
                .find(|o| o.label == e.option && o.core == e.core)
                .ok_or(format!(
                    "task `{}`: `{}` on core `{}` is not one of its options",
                    t.name, e.option, e.core
                ))?;
            if !approx_eq(e.finish_us - e.start_us, opt.time_us) {
                return Err(format!(
                    "task `{}`: duration {} differs from option `{}`'s {}",
                    t.name,
                    e.finish_us - e.start_us,
                    e.option,
                    opt.time_us
                ));
            }
            if !approx_eq(e.energy_uj, opt.energy_uj) {
                return Err(format!(
                    "task `{}`: energy {} differs from option `{}`'s {}",
                    t.name, e.energy_uj, e.option, opt.energy_uj
                ));
            }
            // The reserved recovery slack must be exactly the contracted
            // k repeats of the chosen option — an entry that under- (or
            // over-)reserves re-execution room must not validate.
            if !approx_eq(e.recovery_us, f64::from(t.reexecutions) * opt.time_us) {
                return Err(format!(
                    "task `{}`: recovery slack {} differs from {} re-executions of \
                     option `{}`'s {}",
                    t.name, e.recovery_us, t.reexecutions, e.option, opt.time_us
                ));
            }
            for d in &t.after {
                let de = self
                    .entry(d)
                    .ok_or(format!("dependency `{d}` not scheduled"))?;
                if de.reserved_until_us() > e.start_us + 1e-9 {
                    return Err(format!(
                        "task `{}` starts at {} before `{}` releases its window at {}",
                        t.name,
                        e.start_us,
                        d,
                        de.reserved_until_us()
                    ));
                }
            }
            if let Some(dl) = t.deadline_us {
                if e.reserved_until_us() > dl + 1e-9 {
                    return Err(format!(
                        "task `{}` misses its deadline {dl} with recovery included",
                        t.name
                    ));
                }
            }
        }
        // Core exclusivity (recovery windows included — a recovery run
        // occupies its core like the primary run does).
        for core in &set.cores {
            let mut spans: Vec<(f64, f64, &str)> = self
                .entries
                .iter()
                .filter(|e| &e.core == core)
                .map(|e| (e.start_us, e.reserved_until_us(), e.task.as_str()))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in spans.windows(2) {
                if w[0].1 > w[1].0 + 1e-9 {
                    return Err(format!(
                        "core `{core}`: `{}` and `{}` overlap",
                        w[0].2, w[1].2
                    ));
                }
            }
        }
        // The recorded aggregates must be the recomputed ones. The
        // makespan covers the recovery windows: the frame is only over
        // once the last reserved slot has drained.
        let makespan = self
            .entries
            .iter()
            .map(ScheduleEntry::reserved_until_us)
            .fold(0.0f64, f64::max);
        if !approx_eq(self.makespan_us, makespan) {
            return Err(format!(
                "recorded makespan {} differs from recomputed {makespan}",
                self.makespan_us
            ));
        }
        let energy: f64 = self.entries.iter().map(|e| e.energy_uj).sum();
        if !approx_eq(self.total_energy_uj, energy) {
            return Err(format!(
                "recorded total energy {} differs from recomputed {energy}",
                self.total_energy_uj
            ));
        }
        if self.makespan_us > set.deadline_us + 1e-9 {
            return Err(format!(
                "makespan {} exceeds deadline {}",
                self.makespan_us, set.deadline_us
            ));
        }
        Ok(())
    }
}

/// Scheduling failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// No assignment meets the deadline (schedulability test failed).
    Unschedulable {
        /// Best makespan achieved (µs).
        best_makespan_us: f64,
        /// The deadline that was missed (µs).
        deadline_us: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unschedulable {
                best_makespan_us,
                deadline_us,
            } => write!(
                f,
                "unschedulable: best makespan {best_makespan_us:.1}µs exceeds deadline \
                 {deadline_us:.1}µs"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Earliest start of `t`: all dependencies finished (list placement in
/// a topological order guarantees they are in `finish` already).
fn ready_time(finish: &HashMap<&str, f64>, t: &CoordTask) -> f64 {
    t.after
        .iter()
        .map(|d| finish.get(d.as_str()).copied().unwrap_or(0.0))
        .fold(0.0f64, f64::max)
}

/// HEFT upward ranks, indexed like `set.tasks`:
/// `rank(t) = mean option time + max over successors' rank` (0 for
/// sinks). A task contracted for `k` re-executions weighs `(1 + k)×`
/// its mean option time — its reserved window is that long, so it sits
/// on the critical path accordingly. Option-independent, so one rank
/// vector serves every option assignment of the set.
fn upward_ranks(set: &TaskSet) -> Vec<f64> {
    let n = set.tasks.len();
    let mut ranks = vec![0.0f64; n];
    // `set.tasks` is topologically sorted, so successors sit at higher
    // indices and a reverse sweep sees them ranked already.
    for i in (0..n).rev() {
        let t = &set.tasks[i];
        let mean = (1.0 + f64::from(t.reexecutions))
            * t.options.iter().map(|o| o.time_us).sum::<f64>()
            / t.options.len() as f64;
        let succ_max = set
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| s.after.iter().any(|d| d == &t.name))
            .map(|(j, _)| ranks[j])
            .fold(0.0f64, f64::max);
        ranks[i] = mean + succ_max;
    }
    ranks
}

/// The HEFT list order: repeatedly place the *ready* task (all
/// dependencies already ordered) with the highest upward rank, ties
/// broken toward the lower task-set index. Always a topological order,
/// whatever the rank ties.
fn heft_order(set: &TaskSet) -> Vec<usize> {
    let n = set.tasks.len();
    let ranks = upward_ranks(set);
    let mut remaining: Vec<usize> = set.tasks.iter().map(|t| t.after.len()).collect();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i] && remaining[i] == 0)
            .max_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then_with(|| b.cmp(&a)))
            .expect("validated task sets are acyclic");
        placed[next] = true;
        order.push(next);
        let done = set.tasks[next].name.as_str();
        for (j, t) in set.tasks.iter().enumerate() {
            remaining[j] -= t
                .after
                .iter()
                .filter(|d| d.as_str() == done)
                .count()
                .min(remaining[j]);
        }
    }
    order
}

/// Per-core busy intervals, sorted by start time.
struct Timeline<'a> {
    by_core: HashMap<&'a str, Vec<(f64, f64)>>,
}

impl<'a> Timeline<'a> {
    fn new(set: &'a TaskSet) -> Timeline<'a> {
        Timeline {
            by_core: set.cores.iter().map(|c| (c.as_str(), Vec::new())).collect(),
        }
    }

    /// Earliest start `≥ ready` for a `dur`-long execution on `core`.
    /// With `insertion`, idle gaps between placed intervals are
    /// candidates; without, only the end of the busy window is (the
    /// pre-HEFT append policy, kept as the legacy witness).
    fn earliest_start(&self, core: &str, ready: f64, dur: f64, insertion: bool) -> f64 {
        let busy = &self.by_core[core];
        if !insertion {
            return ready.max(busy.last().map_or(0.0, |&(_, end)| end));
        }
        let mut start = ready;
        for &(a, b) in busy {
            if start + dur <= a + 1e-9 {
                return start;
            }
            start = start.max(b);
        }
        start
    }

    /// Record an execution on `core`.
    fn occupy(&mut self, core: &str, start: f64, end: f64) {
        let busy = self.by_core.get_mut(core).expect("validated core");
        let at = busy.partition_point(|&(a, _)| a < start);
        busy.insert(at, (start, end));
    }
}

/// Place the tasks of `order` with fixed option choices (`choice` is
/// indexed like `set.tasks`); returns the schedule, ignoring deadlines —
/// the caller checks.
///
/// A task contracted for `k` re-executions reserves `(1 + k)×` its
/// option's duration on the core: the primary run plus `k` back-to-back
/// recovery slots. Successors wait for the whole window (a recovery run
/// may still be producing the task's output), and the insertion scan
/// needs a gap wide enough for the window, not just the primary run.
/// With `k = 0` the recovery term is exactly `0.0` and placement is
/// bit-identical to the recovery-free policy.
fn place_in(set: &TaskSet, order: &[usize], choice: &[usize], insertion: bool) -> Schedule {
    let mut timeline = Timeline::new(set);
    let mut finish: HashMap<&str, f64> = HashMap::new();
    let mut entries = Vec::with_capacity(set.tasks.len());
    for &i in order {
        let t = &set.tasks[i];
        let opt = &t.options[choice[i]];
        let recovery = f64::from(t.reexecutions) * opt.time_us;
        let ready = ready_time(&finish, t);
        let start = timeline.earliest_start(&opt.core, ready, opt.time_us + recovery, insertion);
        let end = start + opt.time_us;
        timeline.occupy(&opt.core, start, end + recovery);
        finish.insert(&t.name, end + recovery);
        entries.push(ScheduleEntry {
            task: t.name.clone(),
            option: opt.label.clone(),
            core: opt.core.clone(),
            start_us: start,
            finish_us: end,
            energy_uj: opt.energy_uj,
            recovery_us: recovery,
        });
    }
    entries.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).expect("finite times"));
    let makespan = entries
        .iter()
        .map(ScheduleEntry::reserved_until_us)
        .fold(0.0f64, f64::max);
    let energy = entries.iter().map(|e| e.energy_uj).sum();
    Schedule {
        entries,
        makespan_us: makespan,
        total_energy_uj: energy,
    }
}

/// Does the schedule satisfy all per-task deadlines and the global one?
/// Deadlines are judged against the end of each task's reserved window
/// (`finish + recovery`): the contract must hold even when every
/// recovery run executes.
fn meets_deadlines(set: &TaskSet, s: &Schedule) -> bool {
    if s.makespan_us > set.deadline_us + 1e-9 {
        return false;
    }
    for t in &set.tasks {
        if let Some(dl) = t.deadline_us {
            let e = s.entry(&t.name).expect("placed");
            if e.reserved_until_us() > dl + 1e-9 {
                return false;
            }
        }
    }
    true
}

/// Greedy earliest-finish-time assignment over `order`, with insertion:
/// each task takes the option that finishes soonest given the current
/// timelines (ties broken toward lower energy, then option index).
/// Unlike the per-task-fastest assignment, this spreads work across
/// interchangeable cores and threads short tasks into gaps — the
/// strongest cheap schedulability witness.
fn greedy_earliest_finish(set: &TaskSet, order: &[usize]) -> (Vec<usize>, Schedule) {
    let mut timeline = Timeline::new(set);
    let mut finish: HashMap<&str, f64> = HashMap::new();
    let mut choice = vec![0usize; set.tasks.len()];
    for &i in order {
        let t = &set.tasks[i];
        let window = 1.0 + f64::from(t.reexecutions);
        let ready = ready_time(&finish, t);
        // "Finishes soonest" means the whole reserved window drains
        // soonest — that is what successors and the core wait for.
        let (oi, start, end) = t
            .options
            .iter()
            .enumerate()
            .map(|(oi, o)| {
                let dur = window * o.time_us;
                let start = timeline.earliest_start(&o.core, ready, dur, true);
                (oi, start, start + dur, o.energy_uj)
            })
            .min_by(|a, b| {
                (a.2, a.3, a.0)
                    .partial_cmp(&(b.2, b.3, b.0))
                    .expect("finite times")
            })
            .map(|(oi, start, end, _)| (oi, start, end))
            .expect("non-empty options");
        let opt = &t.options[oi];
        timeline.occupy(&opt.core, start, end);
        finish.insert(&t.name, end);
        choice[i] = oi;
    }
    // Re-place through the shared policy: `place_in` replays the same
    // steps, keeping it the single authority for feasibility checks.
    let schedule = place_in(set, order, &choice, true);
    (choice, schedule)
}

fn fastest_choice(t: &CoordTask) -> usize {
    t.options
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time_us.partial_cmp(&b.1.time_us).expect("finite"))
        .expect("non-empty options")
        .0
}

fn greenest_choice(t: &CoordTask) -> usize {
    t.options
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.energy_uj.partial_cmp(&b.1.energy_uj).expect("finite"))
        .expect("non-empty options")
        .0
}

/// Energy-aware multi-version HEFT scheduling (the production
/// heuristic). See the module docs for the rank formula, the insertion
/// policy and the witness/upgrade interaction.
///
/// # Errors
/// [`ScheduleError::Unschedulable`] when no assignment meets the
/// deadlines.
pub fn schedule_energy_aware(set: &TaskSet) -> Result<Schedule, ScheduleError> {
    let heft = heft_order(set);
    let topo: Vec<usize> = (0..set.tasks.len()).collect();
    let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();

    // Schedulability pre-check: witnesses, tightest first, under the
    // HEFT list order and then the plain topological index order — rank
    // ordering is a heuristic, and on rare shapes the index order wins
    // (the pre-HEFT scheduler used exactly it, so trying both keeps the
    // new witness chain from rejecting anything the old one accepted;
    // insertion subsumes the old append placement pointwise for a fixed
    // order). Per-task-fastest is not makespan-optimal when a task's
    // options live on different cores (a slower option elsewhere can
    // parallelise better), so each order also gets a greedy
    // earliest-finish pass. The witness both proves feasibility and
    // anchors the upgrade loop below, which optimises under the order
    // that proved feasible.
    let mut witness: Option<(Vec<usize>, Schedule, &[usize])> = None;
    let mut best_makespan = f64::INFINITY;
    let orders: &[&[usize]] = if heft == topo {
        &[&heft]
    } else {
        &[&heft, &topo]
    };
    'orders: for &order in orders {
        let fast = place_in(set, order, &fastest, true);
        best_makespan = best_makespan.min(fast.makespan_us);
        if meets_deadlines(set, &fast) {
            witness = Some((fastest.clone(), fast, order));
            break 'orders;
        }
        let (eft_choice, eft) = greedy_earliest_finish(set, order);
        best_makespan = best_makespan.min(eft.makespan_us);
        if meets_deadlines(set, &eft) {
            witness = Some((eft_choice, eft, order));
            break 'orders;
        }
    }
    if witness.is_none() {
        // Small assignment spaces are decided exactly (branch-and-bound
        // tries both list orders per assignment, so it is no weaker than
        // any witness above).
        let space: f64 = set.tasks.iter().map(|t| t.options.len() as f64).product();
        if space <= 65_536.0 {
            return schedule_branch_and_bound(set);
        }
    }
    let Some((witness_choice, witness_schedule, order)) = witness else {
        return Err(ScheduleError::Unschedulable {
            best_makespan_us: best_makespan,
            deadline_us: set.deadline_us,
        });
    };

    let mut choice: Vec<usize> = set.tasks.iter().map(greenest_choice).collect();
    let mut current = place_in(set, order, &choice, true);
    let mut guard = 0usize;
    while !meets_deadlines(set, &current) {
        guard += 1;
        assert!(
            guard <= set.tasks.len() * 64,
            "upgrade loop must terminate (every move strictly speeds one task up)"
        );
        // Evaluate every single-step upgrade. Feasible moves are ranked
        // by energy cost; if none is feasible yet, progress-making moves
        // are ranked by energy-per-microsecond-gained.
        let mut best_feasible: Option<(usize, usize, f64)> = None; // energy cost
        let mut best_progress: Option<(usize, usize, f64)> = None; // ratio
        for (ti, t) in set.tasks.iter().enumerate() {
            for (oi, opt) in t.options.iter().enumerate() {
                if oi == choice[ti] || opt.time_us >= t.options[choice[ti]].time_us {
                    continue;
                }
                let mut trial = choice.clone();
                trial[ti] = oi;
                let s = place_in(set, order, &trial, true);
                let gained = (current.makespan_us - s.makespan_us).max(0.0);
                let extra_energy = s.total_energy_uj - current.total_energy_uj;
                if meets_deadlines(set, &s) {
                    if best_feasible.is_none()
                        || matches!(best_feasible, Some((_, _, b)) if extra_energy < b)
                    {
                        best_feasible = Some((ti, oi, extra_energy));
                    }
                } else if gained > 1e-9 {
                    let ratio = extra_energy / gained;
                    if best_progress.is_none()
                        || matches!(best_progress, Some((_, _, b)) if ratio < b)
                    {
                        best_progress = Some((ti, oi, ratio));
                    }
                }
            }
        }
        let Some((ti, oi, _)) = best_feasible.or(best_progress) else {
            // No single upgrade helps — jump to the assignment the
            // pre-check proved feasible (same order, same placement, so
            // this is the witness schedule itself).
            choice = witness_choice.clone();
            current = witness_schedule.clone();
            break;
        };
        choice[ti] = oi;
        current = place_in(set, order, &choice, true);
    }

    // Downgrade sweep: after reaching feasibility, try to relax tasks
    // back toward greener options wherever slack allows.
    let mut improved = true;
    while improved {
        improved = false;
        for ti in 0..set.tasks.len() {
            let t = &set.tasks[ti];
            for (oi, opt) in t.options.iter().enumerate() {
                if opt.energy_uj >= t.options[choice[ti]].energy_uj - 1e-12 {
                    continue;
                }
                let mut trial = choice.clone();
                trial[ti] = oi;
                let s = place_in(set, order, &trial, true);
                if meets_deadlines(set, &s) {
                    choice = trial;
                    current = s;
                    improved = true;
                }
            }
        }
    }

    Ok(current)
}

/// Optimal multi-version scheduling by exhaustive option enumeration with
/// branch-and-bound energy pruning. Placement per assignment is the same
/// insertion placement as the heuristic's — tried under the HEFT rank
/// order and the plain topological index order (an assignment's energy
/// is order-independent, so accepting either order widens feasibility
/// without touching optimality) — keeping the two solvers' feasibility
/// notions aligned.
///
/// Intended for small instances (≤ ~12 tasks / few options); the ablation
/// bench compares the heuristic's energy against this reference.
///
/// # Errors
/// [`ScheduleError::Unschedulable`] when no assignment meets the
/// deadlines.
pub fn schedule_branch_and_bound(set: &TaskSet) -> Result<Schedule, ScheduleError> {
    let n = set.tasks.len();
    let heft = heft_order(set);
    let topo: Vec<usize> = (0..n).collect();
    // On shapes where ranks reproduce the index order (chains, most
    // trees) one placement per leaf suffices.
    let orders: Vec<Vec<usize>> = if heft == topo {
        vec![heft]
    } else {
        vec![heft, topo]
    };
    let mut best: Option<Schedule> = None;
    let mut choice = vec![0usize; n];
    // Minimum possible remaining energy per suffix, for pruning.
    let min_energy_suffix: Vec<f64> = {
        let mins: Vec<f64> = set
            .tasks
            .iter()
            .map(|t| {
                t.options
                    .iter()
                    .map(|o| o.energy_uj)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + mins[i];
        }
        suffix
    };

    fn dfs(
        set: &TaskSet,
        orders: &[Vec<usize>],
        depth: usize,
        choice: &mut Vec<usize>,
        energy_so_far: f64,
        min_energy_suffix: &[f64],
        best: &mut Option<Schedule>,
    ) {
        if let Some(b) = best {
            if energy_so_far + min_energy_suffix[depth] >= b.total_energy_uj {
                return; // prune
            }
        }
        if depth == set.tasks.len() {
            let s = orders
                .iter()
                .map(|order| place_in(set, order, choice, true))
                .find(|s| meets_deadlines(set, s));
            if let Some(s) = s {
                if best
                    .as_ref()
                    .is_none_or(|b| s.total_energy_uj < b.total_energy_uj)
                {
                    *best = Some(s);
                }
            }
            return;
        }
        for oi in 0..set.tasks[depth].options.len() {
            choice[depth] = oi;
            let e = set.tasks[depth].options[oi].energy_uj;
            dfs(
                set,
                orders,
                depth + 1,
                choice,
                energy_so_far + e,
                min_energy_suffix,
                best,
            );
        }
    }

    dfs(
        set,
        &orders,
        0,
        &mut choice,
        0.0,
        &min_energy_suffix,
        &mut best,
    );
    best.ok_or_else(|| {
        let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();
        let best_makespan = orders
            .iter()
            .map(|order| place_in(set, order, &fastest, true).makespan_us)
            .fold(f64::INFINITY, f64::min);
        ScheduleError::Unschedulable {
            best_makespan_us: best_makespan,
            deadline_us: set.deadline_us,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{CoordTask, ExecOption};

    fn opt(label: &str, core: &str, t: f64, e: f64) -> ExecOption {
        ExecOption {
            label: label.into(),
            core: core.into(),
            time_us: t,
            energy_uj: e,
            security_level: 0,
        }
    }

    /// Two versions per task: fast/hungry and slow/green.
    fn two_version_task(name: &str, core: &str, fast: (f64, f64), slow: (f64, f64)) -> CoordTask {
        CoordTask::new(
            name,
            vec![
                opt("fast", core, fast.0, fast.1),
                opt("green", core, slow.0, slow.1),
            ],
        )
    }

    #[test]
    fn picks_green_options_when_slack_allows() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        assert_eq!(
            s.total_energy_uj, 80.0,
            "both green versions fit in the deadline"
        );
        assert!(s.makespan_us <= 60.0 + 1e-9);
    }

    #[test]
    fn upgrades_to_meet_tight_deadline() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 45.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        // One task upgraded (10+30=40 ≤ 45), not both.
        assert_eq!(s.total_energy_uj, 140.0, "{s:?}");
    }

    #[test]
    fn unschedulable_is_reported() {
        let tasks = vec![two_version_task("a", "c0", (50.0, 1.0), (80.0, 0.5))];
        let set = TaskSet::new(tasks, vec!["c0".into()], 20.0).expect("set");
        match schedule_energy_aware(&set) {
            Err(ScheduleError::Unschedulable {
                best_makespan_us,
                deadline_us,
            }) => {
                assert_eq!(best_makespan_us, 50.0);
                assert_eq!(deadline_us, 20.0);
            }
            other => panic!("expected unschedulable, got {other:?}"),
        }
        assert!(schedule_branch_and_bound(&set).is_err());
    }

    #[test]
    fn parallel_tasks_use_both_cores() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 10.0), (20.0, 5.0)),
            two_version_task("b", "c1", (10.0, 10.0), (20.0, 5.0)),
            two_version_task("join", "c0", (5.0, 5.0), (8.0, 3.0)).after(&["a", "b"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 28.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        let a = s.entry("a").expect("a");
        let b = s.entry("b").expect("b");
        // a and b run concurrently on different cores.
        assert!(a.start_us < b.finish_us && b.start_us < a.finish_us);
    }

    #[test]
    fn upward_ranks_follow_the_critical_path() {
        let tasks = vec![
            two_version_task("src", "c0", (10.0, 1.0), (10.0, 1.0)),
            two_version_task("mid", "c0", (20.0, 1.0), (20.0, 1.0)).after(&["src"]),
            two_version_task("sink", "c1", (5.0, 1.0), (5.0, 1.0)).after(&["mid"]),
            two_version_task("leaf", "c1", (3.0, 1.0), (3.0, 1.0)).after(&["src"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 100.0).expect("set");
        let ranks = upward_ranks(&set);
        let rank = |n: &str| ranks[set.index_of(n).expect("present")];
        // rank = own mean time + heaviest downstream chain.
        assert_eq!(rank("sink"), 5.0);
        assert_eq!(rank("mid"), 25.0);
        assert_eq!(rank("leaf"), 3.0);
        assert_eq!(rank("src"), 35.0);
        // The list order lays the critical path down first; dependencies
        // always precede their dependents.
        let order = heft_order(&set);
        let pos = |n: &str| {
            let i = set.index_of(n).expect("present");
            order.iter().position(|&x| x == i).expect("ordered")
        };
        assert!(pos("src") < pos("mid") && pos("mid") < pos("sink"));
        assert!(
            pos("mid") < pos("leaf"),
            "higher-rank ready task goes first"
        );
    }

    #[test]
    fn insertion_threads_short_tasks_into_gaps() {
        // producer(c1) → consumer(c0) leaves c0 idle for 5µs; the
        // low-rank filler is placed after the chain but *starts* inside
        // the gap. Append placement would push it past the consumer.
        let tasks = vec![
            two_version_task("producer", "c1", (5.0, 1.0), (5.0, 1.0)),
            two_version_task("consumer", "c0", (5.0, 1.0), (5.0, 1.0)).after(&["producer"]),
            two_version_task("filler", "c0", (4.0, 1.0), (4.0, 1.0)),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 10.0).expect("set");
        let s = schedule_energy_aware(&set).expect("the gap makes it schedulable");
        s.validate(&set).expect("valid");
        let filler = s.entry("filler").expect("filler");
        let consumer = s.entry("consumer").expect("consumer");
        assert_eq!(
            filler.start_us, 0.0,
            "filler fills the pre-consumer gap: {s:?}"
        );
        assert!(filler.finish_us <= consumer.start_us + 1e-9);
        assert!(s.makespan_us <= 10.0 + 1e-9);
    }

    #[test]
    fn heuristic_matches_optimal_on_small_instances() {
        // A 5-task chain/diamond where greedy could plausibly go wrong.
        let tasks = vec![
            two_version_task("src", "c0", (5.0, 50.0), (12.0, 18.0)),
            two_version_task("l", "c0", (8.0, 60.0), (20.0, 25.0)).after(&["src"]),
            two_version_task("r", "c1", (9.0, 55.0), (22.0, 20.0)).after(&["src"]),
            two_version_task("m", "c1", (4.0, 30.0), (9.0, 12.0)).after(&["src"]),
            two_version_task("sink", "c0", (6.0, 40.0), (14.0, 15.0)).after(&["l", "r", "m"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 70.0).expect("set");
        let h = schedule_energy_aware(&set).expect("heuristic");
        let o = schedule_branch_and_bound(&set).expect("optimal");
        h.validate(&set).expect("heuristic valid");
        o.validate(&set).expect("optimal valid");
        assert!(
            h.total_energy_uj <= o.total_energy_uj * 1.25 + 1e-9,
            "heuristic {h} vs optimal {o} energy too far",
            h = h.total_energy_uj,
            o = o.total_energy_uj
        );
        assert!(
            o.total_energy_uj <= h.total_energy_uj + 1e-9,
            "optimal must be best"
        );
    }

    #[test]
    fn per_task_deadlines_are_enforced() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)).with_deadline_us(15.0),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        assert!(s.entry("a").expect("a").finish_us <= 15.0 + 1e-9, "{s:?}");
        // b still has slack: it should stay green.
        assert_eq!(s.entry("b").expect("b").option, "green");
    }

    #[test]
    fn validate_catches_overlaps_and_order() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 1.0), (20.0, 0.5)),
            two_version_task("b", "c0", (10.0, 1.0), (20.0, 0.5)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let mut s = schedule_energy_aware(&set).expect("schedulable");
        // Corrupt: start b before a finishes.
        let a_finish = s.entry("a").expect("a").finish_us;
        for e in &mut s.entries {
            if e.task == "b" {
                e.start_us = a_finish - 5.0;
            }
        }
        assert!(s.validate(&set).is_err());
    }

    /// A valid two-task schedule plus its set, for corruption tests.
    fn valid_schedule() -> (TaskSet, Schedule) {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c1", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 200.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid before corruption");
        (set, s)
    }

    #[test]
    fn validate_rejects_foreign_options() {
        // An entry must name a real (option, core) pair of its task.
        let (set, s) = valid_schedule();
        let mut bad = s.clone();
        bad.entries[0].option = "turbo".into();
        let err = bad.validate(&set).expect_err("unknown option label");
        assert!(err.contains("not one of its options"), "{err}");
        let mut bad = s;
        bad.entries[0].core = "c1".into(); // real label, wrong core
        let err = bad.validate(&set).expect_err("option/core mismatch");
        assert!(err.contains("not one of its options"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_duration_and_energy() {
        let (set, s) = valid_schedule();
        // Shrink the LAST task's execution: no overlap, no deadline
        // violation — only the duration/option consistency check sees it.
        let mut bad = s.clone();
        let last = bad.entries.len() - 1;
        bad.entries[last].finish_us -= 1.0;
        let err = bad.validate(&set).expect_err("stretched duration");
        assert!(err.contains("duration"), "{err}");
        // Understate one entry's energy (and patch the total so only the
        // per-entry check can catch the lie).
        let mut bad = s;
        bad.entries[0].energy_uj -= 5.0;
        bad.total_energy_uj -= 5.0;
        let err = bad.validate(&set).expect_err("forged energy");
        assert!(err.contains("energy"), "{err}");
    }

    #[test]
    fn validate_rejects_inconsistent_aggregates() {
        // The recorded makespan/total-energy must equal the recomputed
        // sums — an internally inconsistent schedule must not validate.
        let (set, s) = valid_schedule();
        let mut bad = s.clone();
        bad.makespan_us -= 1.0;
        let err = bad.validate(&set).expect_err("forged makespan");
        assert!(err.contains("makespan"), "{err}");
        let mut bad = s;
        bad.total_energy_uj += 7.0;
        let err = bad.validate(&set).expect_err("forged total energy");
        assert!(err.contains("total energy"), "{err}");
    }

    #[test]
    fn reexecution_slack_is_reserved_and_validated() {
        // b depends on a; a reserves 2 recovery runs, so b may not start
        // before a's whole window (10 + 2×10 = 30µs) drains.
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)).with_reexecutions(2),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 45.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable with fast options");
        s.validate(&set).expect("valid with recovery included");
        let a = s.entry("a").expect("a");
        assert_eq!(a.option, "fast", "only the fast window fits");
        assert_eq!(a.recovery_us, 20.0, "2 recovery runs of the 10µs option");
        let b = s.entry("b").expect("b");
        assert!(
            b.start_us >= a.finish_us + a.recovery_us - 1e-9,
            "successor waits for the recovery window: {s:?}"
        );
        assert!(s.makespan_us >= 40.0 - 1e-9);
    }

    #[test]
    fn reexecution_makes_tight_contracts_unschedulable() {
        // Fits exactly without recovery (50 = deadline), but one reserved
        // re-execution pushes the window to 100µs.
        let tasks =
            vec![two_version_task("a", "c0", (50.0, 1.0), (80.0, 0.5)).with_reexecutions(1)];
        let set = TaskSet::new(tasks, vec!["c0".into()], 50.0).expect("set");
        match schedule_energy_aware(&set) {
            Err(ScheduleError::Unschedulable {
                best_makespan_us, ..
            }) => assert_eq!(best_makespan_us, 100.0),
            other => panic!("expected unschedulable, got {other:?}"),
        }
        // Dropping the reservation restores schedulability.
        let relaxed = vec![two_version_task("a", "c0", (50.0, 1.0), (80.0, 0.5))];
        let set = TaskSet::new(relaxed, vec!["c0".into()], 50.0).expect("set");
        schedule_energy_aware(&set).expect("schedulable without recovery");
    }

    #[test]
    fn validate_rejects_missing_recovery_slack() {
        let tasks =
            vec![two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)).with_reexecutions(1)];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        // Forge the slack away (and patch the makespan so only the
        // per-entry recovery check can catch the lie).
        let mut bad = s;
        bad.entries[0].recovery_us = 0.0;
        bad.makespan_us = bad.entries[0].finish_us;
        let err = bad.validate(&set).expect_err("under-reserved recovery");
        assert!(err.contains("recovery"), "{err}");
    }

    #[test]
    fn zero_reexecutions_is_bit_identical_to_the_default() {
        // `with_reexecutions(0)` must produce byte-for-byte the schedule
        // of a task set that never mentions reliability.
        let plain = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c1", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let tagged: Vec<CoordTask> = plain
            .iter()
            .cloned()
            .map(|t| t.with_reexecutions(0))
            .collect();
        let set_a = TaskSet::new(plain, vec!["c0".into(), "c1".into()], 200.0).expect("set");
        let set_b = TaskSet::new(tagged, vec!["c0".into(), "c1".into()], 200.0).expect("set");
        let a = schedule_energy_aware(&set_a).expect("schedulable");
        let b = schedule_energy_aware(&set_b).expect("schedulable");
        assert_eq!(a, b);
        assert!(a
            .entries
            .iter()
            .zip(&b.entries)
            .all(|(x, y)| x.start_us.to_bits() == y.start_us.to_bits()
                && x.finish_us.to_bits() == y.finish_us.to_bits()
                && x.recovery_us.to_bits() == y.recovery_us.to_bits()));
    }

    #[test]
    fn dvfs_expansion_schedules_at_the_sweet_spot() {
        use crate::freq::{dvfs_options, gr712_levels};
        // One long task, generous deadline: the scheduler should pick an
        // interior frequency, not f_max.
        let options = dvfs_options("v0", "c0", 5_000_000, 5000.0, &gr712_levels());
        let tasks = vec![CoordTask::new("proc", options)];
        let set = TaskSet::new(tasks, vec!["c0".into()], 1_000_000.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        let chosen = &s.entry("proc").expect("proc").option;
        assert!(
            !chosen.contains("100MHz") && !chosen.contains("12.5MHz"),
            "expected interior sweet spot, got {chosen}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::task::{CoordTask, ExecOption};
    use proptest::prelude::*;

    /// Random DAG task sets: every task gets 1–3 options on 1–3 cores,
    /// depends on a random subset of earlier tasks, and occasionally
    /// contracts 1–2 re-executions (so the recovery-slack machinery is
    /// exercised across every property below).
    fn arb_task_set() -> impl Strategy<Value = TaskSet> {
        let core_count = 1usize..4;
        (core_count, 2usize..8, any::<u64>()).prop_map(|(cores_n, tasks_n, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let cores: Vec<String> = (0..cores_n).map(|i| format!("c{i}")).collect();
            let mut tasks = Vec::new();
            for i in 0..tasks_n {
                let n_opts = rng.gen_range(1..4);
                let options: Vec<ExecOption> = (0..n_opts)
                    .map(|o| ExecOption {
                        label: format!("o{o}"),
                        core: cores[rng.gen_range(0..cores.len())].clone(),
                        time_us: rng.gen_range(1.0..50.0),
                        energy_uj: rng.gen_range(1.0..500.0),
                        security_level: 0,
                    })
                    .collect();
                let mut t = CoordTask::new(format!("t{i}"), options);
                for d in 0..i {
                    if rng.gen_bool(0.3) {
                        t.after.push(format!("t{d}"));
                    }
                }
                if rng.gen_bool(0.3) {
                    t.reexecutions = rng.gen_range(1..3);
                }
                tasks.push(t);
            }
            // A deadline somewhere between "hopeless" and "trivial",
            // sized to the reserved windows rather than the bare runs.
            let total: f64 = tasks
                .iter()
                .map(|t| {
                    (1.0 + f64::from(t.reexecutions))
                        * t.options
                            .iter()
                            .map(|o| o.time_us)
                            .fold(f64::INFINITY, f64::min)
                })
                .sum();
            let deadline = total * rng.gen_range(0.4..2.5);
            TaskSet::new(tasks, cores, deadline).expect("generated sets are valid")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Whenever the heuristic claims schedulability, the schedule is
        /// structurally valid; whenever it refuses, even the all-fastest
        /// assignment misses the deadline.
        #[test]
        fn heuristic_schedules_are_valid_or_truly_unschedulable(set in arb_task_set()) {
            match schedule_energy_aware(&set) {
                Ok(s) => {
                    prop_assert!(s.validate(&set).is_ok(), "{:?}", s.validate(&set));
                }
                Err(ScheduleError::Unschedulable { best_makespan_us, deadline_us }) => {
                    prop_assert!(best_makespan_us > deadline_us);
                }
            }
        }

        /// The heuristic never beats the optimum, and both agree on
        /// feasibility.
        #[test]
        fn heuristic_never_beats_branch_and_bound(set in arb_task_set()) {
            let h = schedule_energy_aware(&set);
            let o = schedule_branch_and_bound(&set);
            match (h, o) {
                (Ok(h), Ok(o)) => {
                    prop_assert!(o.validate(&set).is_ok());
                    prop_assert!(
                        h.total_energy_uj + 1e-6 >= o.total_energy_uj,
                        "heuristic {} beat optimal {}",
                        h.total_energy_uj,
                        o.total_energy_uj
                    );
                }
                (Err(_), Err(_)) => {}
                (h, o) => prop_assert!(false, "feasibility disagreement: {h:?} vs {o:?}"),
            }
        }

        /// The HEFT witness chain never reports infeasible on an instance
        /// the pre-HEFT per-task-fastest append witness accepted — the
        /// new feasibility detection is strictly no worse than the old.
        #[test]
        fn heft_witness_subsumes_the_legacy_fastest_witness(set in arb_task_set()) {
            let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();
            let topo: Vec<usize> = (0..set.tasks.len()).collect();
            let legacy = place_in(&set, &topo, &fastest, false);
            if meets_deadlines(&set, &legacy) {
                let s = schedule_energy_aware(&set);
                prop_assert!(s.is_ok(), "legacy witness {legacy:?} accepted, HEFT refused: {s:?}");
            }
        }

        /// Re-execution schedules always validate with recovery included:
        /// forcing a reservation onto every task, any schedule the
        /// heuristic accepts proves its deadlines with all `k` recovery
        /// runs of every task executing (validate counts the windows),
        /// and every entry carries exactly `k ×` its option's duration
        /// of slack.
        #[test]
        fn reexecution_schedules_validate_with_recovery_included(set in arb_task_set()) {
            let mut tasks = set.tasks.clone();
            for (i, t) in tasks.iter_mut().enumerate() {
                t.reexecutions = 1 + (i as u32 % 2);
            }
            // Re-validate through the public constructor; windows grew,
            // so stretch the deadline by the largest possible factor to
            // keep a useful share of feasible instances.
            let set = TaskSet::new(tasks, set.cores.clone(), set.deadline_us * 3.0)
                .expect("same DAG, still valid");
            if let Ok(s) = schedule_energy_aware(&set) {
                prop_assert!(s.validate(&set).is_ok(), "{:?}", s.validate(&set));
                for t in &set.tasks {
                    let e = s.entry(&t.name).expect("placed");
                    let opt = t
                        .options
                        .iter()
                        .find(|o| o.label == e.option && o.core == e.core)
                        .expect("real option");
                    prop_assert!(
                        (e.recovery_us - f64::from(t.reexecutions) * opt.time_us).abs() < 1e-9
                    );
                }
            }
        }

        /// Insertion placement never produces a longer makespan than the
        /// legacy append placement *for the same choices in the same
        /// order* — gaps only add opportunities.
        #[test]
        fn insertion_never_loses_to_append(set in arb_task_set()) {
            let order = heft_order(&set);
            let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();
            let with_gaps = place_in(&set, &order, &fastest, true);
            let append = place_in(&set, &order, &fastest, false);
            prop_assert!(
                with_gaps.makespan_us <= append.makespan_us + 1e-9,
                "insertion {} vs append {}",
                with_gaps.makespan_us,
                append.makespan_us
            );
        }
    }

    // The correlated two-version energy-gap properties (fixed-factor
    // bound, loose-deadline exactness) live in the repository-level
    // oracle suite, `tests/scheduler_oracle.rs`, which drives the same
    // public API this module exposes.
}
