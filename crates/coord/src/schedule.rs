//! Energy-aware multi-version DAG scheduling.
//!
//! Reproduces the scheduling strategy of paper refs \[20\] ("Energy-aware
//! scheduling of multi-version tasks on heterogeneous real-time systems")
//! and \[21\]: each task has several *versions/options* with different
//! time/energy costs on different cores; the scheduler chooses one option
//! per task plus a start time, respecting dependencies and core
//! exclusivity, such that the end-to-end deadline holds and total energy
//! is minimal.
//!
//! Two solvers:
//!
//! * [`schedule_energy_aware`] — list scheduling by bottom-level priority
//!   with greedy energy-first option selection, followed by an iterative
//!   *critical-path upgrade* loop when the deadline is missed (the
//!   production heuristic);
//! * [`schedule_branch_and_bound`] — exhaustive option assignment with
//!   energy pruning for small instances (the optimality reference used
//!   by the ablation bench A2).

use crate::task::{CoordTask, TaskSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One placed task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Task name.
    pub task: String,
    /// Chosen option label.
    pub option: String,
    /// Core the task runs on.
    pub core: String,
    /// Start time (µs).
    pub start_us: f64,
    /// Finish time (µs).
    pub finish_us: f64,
    /// Energy of this execution (µJ).
    pub energy_uj: f64,
}

/// A complete schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Entries in start-time order.
    pub entries: Vec<ScheduleEntry>,
    /// End-to-end makespan (µs).
    pub makespan_us: f64,
    /// Total energy (µJ).
    pub total_energy_uj: f64,
}

impl Schedule {
    /// Entry for a task.
    pub fn entry(&self, task: &str) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.task == task)
    }

    /// Validate the schedule against its task set: every task placed
    /// exactly once, dependencies precede, cores never overlap, deadline
    /// met (global and per-task).
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, set: &TaskSet) -> Result<(), String> {
        if self.entries.len() != set.tasks.len() {
            return Err(format!(
                "schedule has {} entries for {} tasks",
                self.entries.len(),
                set.tasks.len()
            ));
        }
        for t in &set.tasks {
            let e = self.entry(&t.name).ok_or(format!("task `{}` not scheduled", t.name))?;
            if e.finish_us < e.start_us {
                return Err(format!("task `{}` finishes before it starts", t.name));
            }
            for d in &t.after {
                let de = self.entry(d).ok_or(format!("dependency `{d}` not scheduled"))?;
                if de.finish_us > e.start_us + 1e-9 {
                    return Err(format!(
                        "task `{}` starts at {} before `{}` finishes at {}",
                        t.name, e.start_us, d, de.finish_us
                    ));
                }
            }
            if let Some(dl) = t.deadline_us {
                if e.finish_us > dl + 1e-9 {
                    return Err(format!("task `{}` misses its deadline {dl}", t.name));
                }
            }
        }
        // Core exclusivity.
        for core in &set.cores {
            let mut spans: Vec<(f64, f64, &str)> = self
                .entries
                .iter()
                .filter(|e| &e.core == core)
                .map(|e| (e.start_us, e.finish_us, e.task.as_str()))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in spans.windows(2) {
                if w[0].1 > w[1].0 + 1e-9 {
                    return Err(format!(
                        "core `{core}`: `{}` and `{}` overlap",
                        w[0].2, w[1].2
                    ));
                }
            }
        }
        if self.makespan_us > set.deadline_us + 1e-9 {
            return Err(format!(
                "makespan {} exceeds deadline {}",
                self.makespan_us, set.deadline_us
            ));
        }
        Ok(())
    }
}

/// Scheduling failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// No assignment meets the deadline (schedulability test failed).
    Unschedulable {
        /// Best makespan achieved (µs).
        best_makespan_us: f64,
        /// The deadline that was missed (µs).
        deadline_us: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unschedulable { best_makespan_us, deadline_us } => write!(
                f,
                "unschedulable: best makespan {best_makespan_us:.1}µs exceeds deadline \
                 {deadline_us:.1}µs"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Earliest start of `t`: all dependencies finished (list placement in
/// topological order guarantees they are in `finish` already).
fn ready_time(finish: &HashMap<&str, f64>, t: &CoordTask) -> f64 {
    t.after
        .iter()
        .map(|d| finish.get(d.as_str()).copied().unwrap_or(0.0))
        .fold(0.0f64, f64::max)
}

/// Place tasks (in topological order) with fixed option choices; returns
/// the schedule (ignoring deadlines — the caller checks).
fn place(set: &TaskSet, choice: &[usize]) -> Schedule {
    let mut core_free: HashMap<&str, f64> =
        set.cores.iter().map(|c| (c.as_str(), 0.0)).collect();
    let mut finish: HashMap<&str, f64> = HashMap::new();
    let mut entries = Vec::with_capacity(set.tasks.len());
    for (i, t) in set.tasks.iter().enumerate() {
        let opt = &t.options[choice[i]];
        let ready = ready_time(&finish, t);
        let core_at = core_free.get(opt.core.as_str()).copied().unwrap_or(0.0);
        let start = ready.max(core_at);
        let end = start + opt.time_us;
        core_free.insert(
            set.cores.iter().find(|c| **c == opt.core).expect("validated core"),
            end,
        );
        finish.insert(&t.name, end);
        entries.push(ScheduleEntry {
            task: t.name.clone(),
            option: opt.label.clone(),
            core: opt.core.clone(),
            start_us: start,
            finish_us: end,
            energy_uj: opt.energy_uj,
        });
    }
    let makespan = entries.iter().map(|e| e.finish_us).fold(0.0f64, f64::max);
    let energy = entries.iter().map(|e| e.energy_uj).sum();
    entries.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).expect("finite times"));
    Schedule { entries, makespan_us: makespan, total_energy_uj: energy }
}

/// Does the schedule satisfy all per-task deadlines and the global one?
fn meets_deadlines(set: &TaskSet, s: &Schedule) -> bool {
    if s.makespan_us > set.deadline_us + 1e-9 {
        return false;
    }
    for t in &set.tasks {
        if let Some(dl) = t.deadline_us {
            let e = s.entry(&t.name).expect("placed");
            if e.finish_us > dl + 1e-9 {
                return false;
            }
        }
    }
    true
}

/// Greedy earliest-finish-time assignment: place tasks in order, picking
/// for each the option that finishes soonest given current core loads
/// (ties broken toward lower energy). Unlike the per-task-fastest
/// assignment, this spreads work across interchangeable cores, so its
/// makespan is a much stronger schedulability witness when several tasks'
/// fastest options happen to live on the same core.
///
/// The greedy simulation mirrors [`place`]'s stepping (shared
/// [`ready_time`], same core-availability rule); the returned schedule
/// is nevertheless recomputed by [`place`], which stays the single
/// authority for feasibility checks.
fn place_earliest_finish(set: &TaskSet) -> (Vec<usize>, Schedule) {
    let mut core_free: HashMap<&str, f64> =
        set.cores.iter().map(|c| (c.as_str(), 0.0)).collect();
    let mut finish: HashMap<&str, f64> = HashMap::new();
    let mut choice = Vec::with_capacity(set.tasks.len());
    for t in &set.tasks {
        let ready = ready_time(&finish, t);
        let (oi, end) = t
            .options
            .iter()
            .enumerate()
            .map(|(oi, o)| {
                let core_at = core_free.get(o.core.as_str()).copied().unwrap_or(0.0);
                (oi, ready.max(core_at) + o.time_us, o.energy_uj)
            })
            .min_by(|a, b| {
                (a.1, a.2).partial_cmp(&(b.1, b.2)).expect("finite times")
            })
            .map(|(oi, end, _)| (oi, end))
            .expect("non-empty options");
        let opt = &t.options[oi];
        core_free.insert(
            set.cores.iter().find(|c| **c == opt.core).expect("validated core"),
            end,
        );
        finish.insert(&t.name, end);
        choice.push(oi);
    }
    let schedule = place(set, &choice);
    (choice, schedule)
}

fn fastest_choice(t: &CoordTask) -> usize {
    t.options
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time_us.partial_cmp(&b.1.time_us).expect("finite"))
        .expect("non-empty options")
        .0
}

fn greenest_choice(t: &CoordTask) -> usize {
    t.options
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.energy_uj.partial_cmp(&b.1.energy_uj).expect("finite"))
        .expect("non-empty options")
        .0
}

/// Energy-aware multi-version list scheduling (the production heuristic).
///
/// Strategy: start from the energy-minimal option of every task; while
/// any deadline is violated, find the *upgrade* — replacing one task's
/// option by a faster one — with the smallest energy penalty per
/// microsecond of makespan saved, and apply it. Falls back to
/// `Unschedulable` if even the all-fastest assignment misses a deadline.
///
/// # Errors
/// [`ScheduleError::Unschedulable`] when no assignment meets the
/// deadlines.
pub fn schedule_energy_aware(set: &TaskSet) -> Result<Schedule, ScheduleError> {
    // Schedulability pre-check. Per-task-fastest is not makespan-optimal
    // when a task's options live on different cores (a slower option
    // elsewhere can parallelise better — with identical cores, several
    // "fastest" options can pile onto one of them), so an
    // earliest-finish-time placement is tried as a second witness; on
    // failure we fall back to the exhaustive solver when the assignment
    // space is small enough — it decides feasibility exactly.
    let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();
    let fastest_schedule = place(set, &fastest);
    let fallback = if meets_deadlines(set, &fastest_schedule) {
        fastest
    } else {
        let (eft, eft_schedule) = place_earliest_finish(set);
        if meets_deadlines(set, &eft_schedule) {
            eft
        } else {
            let space: f64 = set.tasks.iter().map(|t| t.options.len() as f64).product();
            if space <= 65_536.0 {
                return schedule_branch_and_bound(set);
            }
            return Err(ScheduleError::Unschedulable {
                best_makespan_us: fastest_schedule.makespan_us.min(eft_schedule.makespan_us),
                deadline_us: set.deadline_us,
            });
        }
    };

    let mut choice: Vec<usize> = set.tasks.iter().map(greenest_choice).collect();
    let mut current = place(set, &choice);
    let mut guard = 0usize;
    while !meets_deadlines(set, &current) {
        guard += 1;
        assert!(
            guard <= set.tasks.len() * 64,
            "upgrade loop must terminate (fastest assignment is feasible)"
        );
        // Evaluate every single-step upgrade. Feasible moves are ranked
        // by energy cost; if none is feasible yet, progress-making moves
        // are ranked by energy-per-microsecond-gained.
        let mut best_feasible: Option<(usize, usize, f64)> = None; // energy cost
        let mut best_progress: Option<(usize, usize, f64)> = None; // ratio
        for (ti, t) in set.tasks.iter().enumerate() {
            for (oi, opt) in t.options.iter().enumerate() {
                if oi == choice[ti] || opt.time_us >= t.options[choice[ti]].time_us {
                    continue;
                }
                let mut trial = choice.clone();
                trial[ti] = oi;
                let s = place(set, &trial);
                let gained = (current.makespan_us - s.makespan_us).max(0.0);
                let extra_energy = s.total_energy_uj - current.total_energy_uj;
                if meets_deadlines(set, &s) {
                    if best_feasible.is_none()
                        || matches!(best_feasible, Some((_, _, b)) if extra_energy < b)
                    {
                        best_feasible = Some((ti, oi, extra_energy));
                    }
                } else if gained > 1e-9 {
                    let ratio = extra_energy / gained;
                    if best_progress.is_none()
                        || matches!(best_progress, Some((_, _, b)) if ratio < b)
                    {
                        best_progress = Some((ti, oi, ratio));
                    }
                }
            }
        }
        let Some((ti, oi, _)) = best_feasible.or(best_progress) else {
            // No single upgrade helps — jump to the assignment the
            // pre-check proved feasible.
            choice = fallback.clone();
            current = place(set, &choice);
            break;
        };
        choice[ti] = oi;
        current = place(set, &choice);
    }

    // Downgrade sweep: after reaching feasibility, try to relax tasks
    // back toward greener options wherever slack allows.
    let mut improved = true;
    while improved {
        improved = false;
        for ti in 0..set.tasks.len() {
            let t = &set.tasks[ti];
            for (oi, opt) in t.options.iter().enumerate() {
                if opt.energy_uj >= t.options[choice[ti]].energy_uj - 1e-12 {
                    continue;
                }
                let mut trial = choice.clone();
                trial[ti] = oi;
                let s = place(set, &trial);
                if meets_deadlines(set, &s) {
                    choice = trial;
                    current = s;
                    improved = true;
                }
            }
        }
    }

    Ok(current)
}

/// Optimal multi-version scheduling by exhaustive option enumeration with
/// branch-and-bound energy pruning. Placement per assignment follows the
/// same topological list placement as the heuristic, so the two solvers
/// share their feasibility notion.
///
/// Intended for small instances (≤ ~12 tasks / few options); the ablation
/// bench compares the heuristic's energy against this reference.
///
/// # Errors
/// [`ScheduleError::Unschedulable`] when no assignment meets the
/// deadlines.
pub fn schedule_branch_and_bound(set: &TaskSet) -> Result<Schedule, ScheduleError> {
    let n = set.tasks.len();
    let mut best: Option<Schedule> = None;
    let mut choice = vec![0usize; n];
    // Minimum possible remaining energy per suffix, for pruning.
    let min_energy_suffix: Vec<f64> = {
        let mins: Vec<f64> = set
            .tasks
            .iter()
            .map(|t| {
                t.options
                    .iter()
                    .map(|o| o.energy_uj)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + mins[i];
        }
        suffix
    };

    fn dfs(
        set: &TaskSet,
        depth: usize,
        choice: &mut Vec<usize>,
        energy_so_far: f64,
        min_energy_suffix: &[f64],
        best: &mut Option<Schedule>,
    ) {
        if let Some(b) = best {
            if energy_so_far + min_energy_suffix[depth] >= b.total_energy_uj {
                return; // prune
            }
        }
        if depth == set.tasks.len() {
            let s = place(set, choice);
            if meets_deadlines(set, &s)
                && best.as_ref().is_none_or(|b| s.total_energy_uj < b.total_energy_uj)
            {
                *best = Some(s);
            }
            return;
        }
        for oi in 0..set.tasks[depth].options.len() {
            choice[depth] = oi;
            let e = set.tasks[depth].options[oi].energy_uj;
            dfs(set, depth + 1, choice, energy_so_far + e, min_energy_suffix, best);
        }
    }

    dfs(set, 0, &mut choice, 0.0, &min_energy_suffix, &mut best);
    best.ok_or_else(|| {
        let fastest: Vec<usize> = set.tasks.iter().map(fastest_choice).collect();
        ScheduleError::Unschedulable {
            best_makespan_us: place(set, &fastest).makespan_us,
            deadline_us: set.deadline_us,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{CoordTask, ExecOption};

    fn opt(label: &str, core: &str, t: f64, e: f64) -> ExecOption {
        ExecOption { label: label.into(), core: core.into(), time_us: t, energy_uj: e }
    }

    /// Two versions per task: fast/hungry and slow/green.
    fn two_version_task(name: &str, core: &str, fast: (f64, f64), slow: (f64, f64)) -> CoordTask {
        CoordTask::new(
            name,
            vec![opt("fast", core, fast.0, fast.1), opt("green", core, slow.0, slow.1)],
        )
    }

    #[test]
    fn picks_green_options_when_slack_allows() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        assert_eq!(s.total_energy_uj, 80.0, "both green versions fit in the deadline");
        assert!(s.makespan_us <= 60.0 + 1e-9);
    }

    #[test]
    fn upgrades_to_meet_tight_deadline() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 45.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        // One task upgraded (10+30=40 ≤ 45), not both.
        assert_eq!(s.total_energy_uj, 140.0, "{s:?}");
    }

    #[test]
    fn unschedulable_is_reported() {
        let tasks = vec![two_version_task("a", "c0", (50.0, 1.0), (80.0, 0.5))];
        let set = TaskSet::new(tasks, vec!["c0".into()], 20.0).expect("set");
        match schedule_energy_aware(&set) {
            Err(ScheduleError::Unschedulable { best_makespan_us, deadline_us }) => {
                assert_eq!(best_makespan_us, 50.0);
                assert_eq!(deadline_us, 20.0);
            }
            other => panic!("expected unschedulable, got {other:?}"),
        }
        assert!(schedule_branch_and_bound(&set).is_err());
    }

    #[test]
    fn parallel_tasks_use_both_cores() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 10.0), (20.0, 5.0)),
            two_version_task("b", "c1", (10.0, 10.0), (20.0, 5.0)),
            two_version_task("join", "c0", (5.0, 5.0), (8.0, 3.0)).after(&["a", "b"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 28.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        let a = s.entry("a").expect("a");
        let b = s.entry("b").expect("b");
        // a and b run concurrently on different cores.
        assert!(a.start_us < b.finish_us && b.start_us < a.finish_us);
    }

    #[test]
    fn heuristic_matches_optimal_on_small_instances() {
        // A 5-task chain/diamond where greedy could plausibly go wrong.
        let tasks = vec![
            two_version_task("src", "c0", (5.0, 50.0), (12.0, 18.0)),
            two_version_task("l", "c0", (8.0, 60.0), (20.0, 25.0)).after(&["src"]),
            two_version_task("r", "c1", (9.0, 55.0), (22.0, 20.0)).after(&["src"]),
            two_version_task("m", "c1", (4.0, 30.0), (9.0, 12.0)).after(&["src"]),
            two_version_task("sink", "c0", (6.0, 40.0), (14.0, 15.0)).after(&["l", "r", "m"]),
        ];
        let set =
            TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 70.0).expect("set");
        let h = schedule_energy_aware(&set).expect("heuristic");
        let o = schedule_branch_and_bound(&set).expect("optimal");
        h.validate(&set).expect("heuristic valid");
        o.validate(&set).expect("optimal valid");
        assert!(
            h.total_energy_uj <= o.total_energy_uj * 1.25 + 1e-9,
            "heuristic {h} vs optimal {o} energy too far",
            h = h.total_energy_uj,
            o = o.total_energy_uj
        );
        assert!(o.total_energy_uj <= h.total_energy_uj + 1e-9, "optimal must be best");
    }

    #[test]
    fn per_task_deadlines_are_enforced() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 100.0), (30.0, 40.0)).with_deadline_us(15.0),
            two_version_task("b", "c0", (10.0, 100.0), (30.0, 40.0)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        s.validate(&set).expect("valid");
        assert!(s.entry("a").expect("a").finish_us <= 15.0 + 1e-9, "{s:?}");
        // b still has slack: it should stay green.
        assert_eq!(s.entry("b").expect("b").option, "green");
    }

    #[test]
    fn validate_catches_overlaps_and_order() {
        let tasks = vec![
            two_version_task("a", "c0", (10.0, 1.0), (20.0, 0.5)),
            two_version_task("b", "c0", (10.0, 1.0), (20.0, 0.5)).after(&["a"]),
        ];
        let set = TaskSet::new(tasks, vec!["c0".into()], 100.0).expect("set");
        let mut s = schedule_energy_aware(&set).expect("schedulable");
        // Corrupt: start b before a finishes.
        let a_finish = s.entry("a").expect("a").finish_us;
        for e in &mut s.entries {
            if e.task == "b" {
                e.start_us = a_finish - 5.0;
            }
        }
        assert!(s.validate(&set).is_err());
    }

    #[test]
    fn dvfs_expansion_schedules_at_the_sweet_spot() {
        use crate::freq::{dvfs_options, gr712_levels};
        // One long task, generous deadline: the scheduler should pick an
        // interior frequency, not f_max.
        let options = dvfs_options("v0", "c0", 5_000_000, 5000.0, &gr712_levels());
        let tasks = vec![CoordTask::new("proc", options)];
        let set = TaskSet::new(tasks, vec!["c0".into()], 1_000_000.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable");
        let chosen = &s.entry("proc").expect("proc").option;
        assert!(
            !chosen.contains("100MHz") && !chosen.contains("12.5MHz"),
            "expected interior sweet spot, got {chosen}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::task::{CoordTask, ExecOption};
    use proptest::prelude::*;

    /// Random DAG task sets: every task gets 1–3 options on 1–3 cores and
    /// depends on a random subset of earlier tasks.
    fn arb_task_set() -> impl Strategy<Value = TaskSet> {
        let core_count = 1usize..4;
        (core_count, 2usize..8, any::<u64>()).prop_map(|(cores_n, tasks_n, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let cores: Vec<String> = (0..cores_n).map(|i| format!("c{i}")).collect();
            let mut tasks = Vec::new();
            for i in 0..tasks_n {
                let n_opts = rng.gen_range(1..4);
                let options: Vec<ExecOption> = (0..n_opts)
                    .map(|o| ExecOption {
                        label: format!("o{o}"),
                        core: cores[rng.gen_range(0..cores.len())].clone(),
                        time_us: rng.gen_range(1.0..50.0),
                        energy_uj: rng.gen_range(1.0..500.0),
                    })
                    .collect();
                let mut t = CoordTask::new(format!("t{i}"), options);
                for d in 0..i {
                    if rng.gen_bool(0.3) {
                        t.after.push(format!("t{d}"));
                    }
                }
                tasks.push(t);
            }
            // A deadline somewhere between "hopeless" and "trivial".
            let total: f64 = tasks
                .iter()
                .map(|t| t.options.iter().map(|o| o.time_us).fold(f64::INFINITY, f64::min))
                .sum();
            let deadline = total * rng.gen_range(0.4..2.5);
            TaskSet::new(tasks, cores, deadline).expect("generated sets are valid")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Whenever the heuristic claims schedulability, the schedule is
        /// structurally valid; whenever it refuses, even the all-fastest
        /// assignment misses the deadline.
        #[test]
        fn heuristic_schedules_are_valid_or_truly_unschedulable(set in arb_task_set()) {
            match schedule_energy_aware(&set) {
                Ok(s) => {
                    prop_assert!(s.validate(&set).is_ok(), "{:?}", s.validate(&set));
                }
                Err(ScheduleError::Unschedulable { best_makespan_us, deadline_us }) => {
                    prop_assert!(best_makespan_us > deadline_us);
                }
            }
        }

        /// The exhaustive solver never finds less energy than... rather,
        /// the heuristic never beats the optimum, and both agree on
        /// feasibility.
        #[test]
        fn heuristic_never_beats_branch_and_bound(set in arb_task_set()) {
            let h = schedule_energy_aware(&set);
            let o = schedule_branch_and_bound(&set);
            match (h, o) {
                (Ok(h), Ok(o)) => {
                    prop_assert!(o.validate(&set).is_ok());
                    prop_assert!(
                        h.total_energy_uj + 1e-6 >= o.total_energy_uj,
                        "heuristic {} beat optimal {}",
                        h.total_energy_uj,
                        o.total_energy_uj
                    );
                }
                (Err(_), Err(_)) => {}
                (h, o) => prop_assert!(false, "feasibility disagreement: {h:?} vs {o:?}"),
            }
        }
    }
}
