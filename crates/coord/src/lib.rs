//! # teamplay-coord — the coordination layer
//!
//! TeamPlay's "explicit coordination layer that takes care of scheduling
//! and mapping decisions on heterogeneous multi-core architectures"
//! (paper refs \[13\], \[14\], \[20\], \[21\]). It consumes
//!
//! * the task graph extracted by `teamplay-csl`,
//! * per-task **multi-version cost options** — either statically analysed
//!   Pareto variants from the compiler (predictable flow, Fig. 1) or
//!   measured profiles from `teamplay-profiler` (complex flow, Fig. 2),
//!   optionally expanded over DVFS operating points ([`freq`]),
//!
//! and produces a validated [`schedule::Schedule`]: an assignment of one
//! option per task to cores over time that respects dependencies, meets
//! the deadline, and minimises energy — the energy-aware multi-version
//! DAG scheduling of refs \[20\]/\[21\], with a branch-and-bound reference
//! solver for small instances. [`glue`] then generates the runtime glue
//! code (the YASMIN middleware analogue of ref \[14\]).

pub mod freq;
pub mod glue;
pub mod schedule;
pub mod task;

pub use freq::{dvfs_options, gr712_levels, FreqLevel};
pub use glue::{
    generate_parallel_glue, generate_parallel_glue_with_pipelines, generate_sequential_glue,
    GlueError,
};
pub use schedule::{
    schedule_branch_and_bound, schedule_energy_aware, Schedule, ScheduleEntry, ScheduleError,
};
pub use task::{CoordTask, ExecOption, TaskSet, TaskSetError};
