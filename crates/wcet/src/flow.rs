//! The shared IPET flow solver.
//!
//! Implicit path enumeration (IPET) phrases a worst-case bound as a
//! maximum-cost flow problem over the CFG: every block and every edge
//! carries an execution-count variable, Kirchhoff conservation ties the
//! counts together, loop-bound facts cap the back-edge counts, and the
//! objective maximises `Σ count × cost`. Industrial toolchains (aiT, the
//! WCC the paper builds on) hand that LP to an external solver; this
//! module solves it *exactly* for reducible CFGs with an in-tree
//! loop-nest dynamic program — no LP crate, consistent with the
//! repository's vendored-offline rule.
//!
//! The solver is deliberately cost-agnostic: [`FlowProblem::node_cost`]
//! and per-edge costs are plain `u64`s, so the same engine serves the
//! cycle model (WCET) and `teamplay-energy`'s millipicojoule model
//! (WCEC). Callers build a problem with [`FlowProblem::from_function`],
//! handing it a per-block body cost and a terminator-cost closure; the
//! closure's `taken` flag is what makes IPET tighter than the structural
//! bound on conditional branches (a fall-through exit no longer pays the
//! taken-branch worst case).
//!
//! ## The loop-nest dynamic program
//!
//! Natural loops are condensed innermost-first, exactly as in
//! [`crate::structural_bound`], but the condensation is count-exact
//! instead of path-repeating:
//!
//! * one loop entry admits at most `bound` back-edge traversals, so the
//!   condensed node costs `bound × best-latch-circuit` — the header is
//!   charged `bound + 1` times in total (once on the final exit check),
//!   while the structural engine charges the whole worst iteration path
//!   `bound + 1` times;
//! * every exit edge `(u → v)` of the loop becomes an edge of the outer
//!   graph weighted `maxpath(header → u) + cost(u → v)`, so the final
//!   partial traversal is charged along its own (possibly much cheaper)
//!   path instead of the worst full iteration;
//! * a `return` inside a loop body becomes the condensed node's own
//!   terminal cost (`maxpath(header → ret-block) + ret-cost`).
//!
//! This is the LP optimum: a max-cost flow on a DAG decomposes into
//! paths, `bound` of which circle through the most expensive latch
//! circuit while the single exit unit takes the most expensive exit
//! path.
//!
//! ## Infeasible-path facts
//!
//! Mutually exclusive branches — two conditional branches in one region
//! testing the *same unwritten register* against immediates — are
//! handled by context enumeration: the immediates partition the
//! register's value space into intervals, one longest path is computed
//! per interval cell (edges whose predicate is false in the cell are
//! removed), and the maximum over cells is the bound. Because every
//! concrete execution fixes the register to a value in exactly one
//! cell, the maximum is still a safe upper bound, and it excludes the
//! `x < 3 ∧ x ≥ 7`-style path combinations the structural engine (and
//! plain conservation constraints) must admit. Registers written
//! anywhere in the region — including by calls, which are treated as
//! clobbering every register — are never correlated.
//!
//! Irreducible control flow (a cycle that is not a natural loop) makes
//! the region DP cyclic; the solver reports
//! [`FlowError::Irreducible`] and the caller falls back to
//! [`crate::structural_bound`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use teamplay_isa::{Cond, Function, Insn, Operand, Reg, Terminator};
use teamplay_minic::cfg::{natural_loops, reverse_postorder, CfgView};

/// Hard cap on the number of value contexts enumerated per region; the
/// cross product of correlated registers is trimmed (dropping facts,
/// never soundness) to stay below it.
const MAX_CONTEXTS: usize = 64;

/// Errors the flow solver can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A loop header carries no bound fact.
    Unbounded {
        /// The loop-header block index.
        header: usize,
    },
    /// The CFG is irreducible: a cycle survives natural-loop
    /// condensation, so the loop-nest DP cannot order it.
    Irreducible,
}

/// An edge of the flow graph: target block, traversal cost, and an
/// optional predicate (`reg cond imm` must hold for the edge to be
/// taken) feeding the infeasible-path analysis.
#[derive(Debug, Clone, Copy)]
struct FlowEdge {
    to: usize,
    cost: u64,
    pred: Option<(Reg, i32, Cond)>,
}

/// A max-cost flow problem over one function's CFG.
///
/// Built by [`FlowProblem::from_function`] and solved by
/// [`FlowProblem::solve`]. Costs are dimension-free `u64`s — cycles for
/// the WCET instantiation, millipicojoules for the WCEC one.
#[derive(Debug)]
pub struct FlowProblem {
    /// Per-block cost of the straight-line body (terminator excluded).
    node_cost: Vec<u64>,
    /// Outgoing edges per block, terminator costs attached.
    edges: Vec<Vec<FlowEdge>>,
    /// Cost of *ending* the function at a block — `Some` only for
    /// `ret`/`halt` blocks; paths may only terminate there.
    exit_cost: Vec<Option<u64>>,
    /// Max body iterations per loop entry, keyed by header block.
    loop_bounds: BTreeMap<usize, u64>,
    /// Bitmask of registers each block may write (calls clobber all).
    writes: Vec<u16>,
}

/// Registers an instruction may write, as a 16-bit mask; `None` means
/// "assume everything" (calls).
fn write_mask(insn: &Insn) -> Option<u16> {
    let bit = |r: Reg| 1u16 << r.index();
    Some(match insn {
        Insn::Alu { rd, .. }
        | Insn::Mov { rd, .. }
        | Insn::MovImm32 { rd, .. }
        | Insn::Csel { rd, .. }
        | Insn::Ldr { rd, .. }
        | Insn::In { rd, .. } => bit(*rd),
        Insn::Pop { regs } => regs.iter().fold(bit(Reg::SP), |m, r| m | bit(*r)),
        Insn::Push { .. } => bit(Reg::SP),
        Insn::Call { .. } => return None,
        Insn::Cmp { .. } | Insn::Str { .. } | Insn::Out { .. } | Insn::Nop => 0,
    })
}

/// Evaluate `value cond imm` over i64 (so candidate values adjacent to
/// `i32::MIN`/`MAX` immediates never wrap).
fn cond_holds_i64(cond: Cond, value: i64, imm: i64) -> bool {
    match cond {
        Cond::Eq => value == imm,
        Cond::Ne => value != imm,
        Cond::Lt => value < imm,
        Cond::Le => value <= imm,
        Cond::Gt => value > imm,
        Cond::Ge => value >= imm,
    }
}

impl FlowProblem {
    /// Build the flow problem for `f`.
    ///
    /// `node_cost[b]` is the cost of block `b`'s instruction body
    /// (terminator excluded; callee costs already folded in by the
    /// caller). `term_cost(t, taken)` prices one traversal of the
    /// terminator `t` along its taken (`true`) or fall-through
    /// (`false`) edge — for `Return`/`Halt` the flag is irrelevant.
    pub fn from_function(
        f: &Function,
        node_cost: &[u64],
        term_cost: &dyn Fn(&Terminator, bool) -> u64,
    ) -> FlowProblem {
        let n = f.blocks.len();
        let mut edges: Vec<Vec<FlowEdge>> = vec![Vec::new(); n];
        let mut exit_cost: Vec<Option<u64>> = vec![None; n];
        let mut writes = vec![0u16; n];
        for (i, b) in f.blocks.iter().enumerate() {
            for insn in &b.insns {
                match write_mask(insn) {
                    Some(m) => writes[i] |= m,
                    None => writes[i] = u16::MAX,
                }
            }
            // A trailing `cmp reg, #imm` makes the conditional branch's
            // predicate explicit; whether it is *usable* is decided per
            // region by the write masks.
            let guard = match b.insns.last() {
                Some(Insn::Cmp {
                    rn,
                    src: Operand::Imm(imm),
                }) => Some((*rn, *imm)),
                _ => None,
            };
            match &b.terminator {
                Terminator::Branch(t) => {
                    edges[i].push(FlowEdge {
                        to: t.index(),
                        cost: term_cost(&b.terminator, true),
                        pred: None,
                    });
                }
                Terminator::CondBranch {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    if taken == fallthrough {
                        let cost =
                            term_cost(&b.terminator, true).max(term_cost(&b.terminator, false));
                        edges[i].push(FlowEdge {
                            to: taken.index(),
                            cost,
                            pred: None,
                        });
                    } else {
                        edges[i].push(FlowEdge {
                            to: taken.index(),
                            cost: term_cost(&b.terminator, true),
                            pred: guard.map(|(r, imm)| (r, imm, *cond)),
                        });
                        edges[i].push(FlowEdge {
                            to: fallthrough.index(),
                            cost: term_cost(&b.terminator, false),
                            pred: guard.map(|(r, imm)| (r, imm, cond.negate())),
                        });
                    }
                }
                Terminator::Return | Terminator::Halt => {
                    exit_cost[i] = Some(term_cost(&b.terminator, true));
                }
            }
        }
        FlowProblem {
            node_cost: node_cost.to_vec(),
            edges,
            exit_cost,
            loop_bounds: f
                .loop_bounds
                .iter()
                .map(|(id, b)| (id.index(), u64::from(*b)))
                .collect(),
            writes,
        }
    }

    /// Solve the problem exactly: the IPET maximum over all count
    /// assignments satisfying conservation, the loop bounds and the
    /// derivable exclusivity facts.
    ///
    /// # Errors
    /// [`FlowError::Unbounded`] when a loop header has no bound;
    /// [`FlowError::Irreducible`] when the CFG defeats the loop-nest DP
    /// (callers fall back to the structural engine).
    pub fn solve(&self) -> Result<u64, FlowError> {
        let n = self.node_cost.len();
        let view = ProblemView(self);
        let reachable: HashSet<usize> = reverse_postorder(&view).into_iter().collect();

        // Condensation state, mirroring `structural_bound`: every block
        // maps to its current super-node (loop headers double as
        // super-node ids), whose cost/edges/exit/writes evolve as loops
        // collapse.
        let mut node_of: Vec<usize> = (0..n).collect();
        let mut cost = self.node_cost.clone();
        let mut edges: Vec<Vec<FlowEdge>> = (0..n)
            .map(|i| {
                if reachable.contains(&i) {
                    self.edges[i].clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let mut exit_cost = self.exit_cost.clone();
        let mut writes = self.writes.clone();

        let mut loops = natural_loops(&view);
        loops.sort_by_key(|l| l.body.len());

        for l in &loops {
            let header = node_of[l.header];
            let bound = *self
                .loop_bounds
                .get(&l.header)
                .ok_or(FlowError::Unbounded { header: l.header })?;
            let members: BTreeSet<usize> = l.body.iter().map(|b| node_of[*b]).collect();

            let region = Region {
                members: &members,
                start: header,
                node_of: &node_of,
                cost: &cost,
                edges: &edges,
                exit_cost: &exit_cost,
                writes: &writes,
            };
            let out = region.analyse()?;

            // Condense into the header's id: `bound` worst latch
            // circuits, per-exit-edge weighted continuations, and the
            // worst in-loop termination as the node's own exit cost.
            cost[header] = out.latch.saturating_mul(bound);
            edges[header] = out.external;
            exit_cost[header] = out.exit;
            let mask = members.iter().fold(0u16, |m, s| m | writes[*s]);
            writes[header] = mask;
            for node in node_of.iter_mut() {
                if members.contains(node) {
                    *node = header;
                }
            }
        }

        // Top level: one DAG pass over the condensed graph.
        let members: BTreeSet<usize> = (0..n)
            .filter(|b| reachable.contains(b))
            .map(|b| node_of[b])
            .collect();
        let region = Region {
            members: &members,
            start: node_of[0],
            node_of: &node_of,
            cost: &cost,
            edges: &edges,
            exit_cost: &exit_cost,
            writes: &writes,
        };
        let out = region.analyse()?;
        // A degenerate CFG with no reachable `ret`/`halt` still gets the
        // conservative longest-path answer (as the structural engine
        // would give).
        Ok(out.exit.unwrap_or(out.deepest))
    }
}

/// `CfgView` adapter so the generic loop discovery runs on the problem.
struct ProblemView<'a>(&'a FlowProblem);

impl CfgView for ProblemView<'_> {
    fn num_blocks(&self) -> usize {
        self.0.node_cost.len()
    }
    fn entry(&self) -> usize {
        0
    }
    fn successors(&self, block: usize) -> Vec<usize> {
        self.0.edges[block].iter().map(|e| e.to).collect()
    }
}

/// One acyclic region of the condensed graph: a loop body (start = the
/// header) or the whole top level (start = the entry's super-node).
struct Region<'a> {
    members: &'a BTreeSet<usize>,
    start: usize,
    node_of: &'a [usize],
    cost: &'a [u64],
    edges: &'a [Vec<FlowEdge>],
    exit_cost: &'a [Option<u64>],
    writes: &'a [u16],
}

/// The three quantities a region DP produces, maximised over contexts.
struct RegionOut {
    /// Worst latch circuit: `maxpath(start → t) + cost(t → start)`.
    /// Zero when the region has no back edge (the top level).
    latch: u64,
    /// Region-leaving edges, reweighted with their internal prefix
    /// path: `maxpath(start → u) + cost(u → v)`.
    external: Vec<FlowEdge>,
    /// Worst terminating path (`maxpath(start → m) + exit_cost(m)`), or
    /// `None` when no member can end the function.
    exit: Option<u64>,
    /// Worst path to anywhere in the region, terminating or not.
    deepest: u64,
}

impl Region<'_> {
    /// An edge's resolved target super-node.
    fn target(&self, e: &FlowEdge) -> usize {
        self.node_of[e.to]
    }

    /// The value contexts to enumerate: registers tested by at least
    /// two predicated edges of the region and written by no member,
    /// each with the candidate values that cover every interval cell
    /// of its immediates. Returns the empty vector when no fact is
    /// usable (one unconstrained pass is then performed).
    fn contexts(&self) -> Vec<Vec<(Reg, i64)>> {
        let region_mask = self.members.iter().fold(0u16, |m, s| m | self.writes[*s]);
        let mut imms: BTreeMap<Reg, BTreeSet<i64>> = BTreeMap::new();
        let mut branches: BTreeMap<Reg, usize> = BTreeMap::new();
        for &m in self.members {
            let mut seen_here: BTreeSet<Reg> = BTreeSet::new();
            for e in &self.edges[m] {
                if let Some((r, imm, _)) = e.pred {
                    if region_mask & (1 << r.index()) == 0 {
                        imms.entry(r).or_default().insert(i64::from(imm));
                        if seen_here.insert(r) {
                            *branches.entry(r).or_default() += 1;
                        }
                    }
                }
            }
        }
        // A register tested by a single branch cannot produce an
        // exclusivity fact: the max over its half-spaces equals the
        // unconstrained max.
        imms.retain(|r, _| branches.get(r).copied().unwrap_or(0) >= 2);

        let mut contexts: Vec<Vec<(Reg, i64)>> = vec![Vec::new()];
        for (r, points) in imms {
            let mut candidates: BTreeSet<i64> = BTreeSet::new();
            for p in points {
                candidates.extend([p - 1, p, p + 1]);
            }
            if contexts.len().saturating_mul(candidates.len()) > MAX_CONTEXTS {
                break; // drop remaining facts, keep soundness
            }
            contexts = contexts
                .into_iter()
                .flat_map(|ctx| {
                    candidates.iter().map(move |v| {
                        let mut c = ctx.clone();
                        c.push((r, *v));
                        c
                    })
                })
                .collect();
        }
        if contexts.len() == 1 {
            contexts[0].clear(); // no facts — single unconstrained pass
        }
        contexts
    }

    /// Is the edge feasible under the context's register values?
    fn feasible(e: &FlowEdge, ctx: &[(Reg, i64)]) -> bool {
        match e.pred {
            None => true,
            Some((r, imm, cond)) => ctx
                .iter()
                .find(|(cr, _)| *cr == r)
                .is_none_or(|(_, v)| cond_holds_i64(cond, *v, i64::from(imm))),
        }
    }

    /// Longest path costs from `start` to every member reachable under
    /// `ctx`, or `Err` if the region (minus edges back to `start`) is
    /// cyclic. Paths sum node costs (both endpoints included) and
    /// internal edge costs.
    fn longest_paths(&self, ctx: &[(Reg, i64)]) -> Result<HashMap<usize, u64>, FlowError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let internal = |e: &FlowEdge| {
            let t = self.target(e);
            t != self.start && self.members.contains(&t) && Self::feasible(e, ctx)
        };
        // Iterative DFS for a reverse topological order + cycle check.
        let mut colour: HashMap<usize, Colour> =
            self.members.iter().map(|&m| (m, Colour::White)).collect();
        let mut topo: Vec<usize> = Vec::with_capacity(self.members.len());
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let kids_of = |node: usize| -> Vec<usize> {
            self.edges[node]
                .iter()
                .filter(|e| internal(e))
                .map(|e| self.target(e))
                .collect()
        };
        colour.insert(self.start, Colour::Grey);
        stack.push((self.start, kids_of(self.start), 0));
        while let Some((node, kids, idx)) = stack.last_mut() {
            if *idx < kids.len() {
                let k = kids[*idx];
                *idx += 1;
                match colour[&k] {
                    Colour::White => {
                        colour.insert(k, Colour::Grey);
                        let kk = kids_of(k);
                        stack.push((k, kk, 0));
                    }
                    Colour::Grey => return Err(FlowError::Irreducible),
                    Colour::Black => {}
                }
            } else {
                colour.insert(*node, Colour::Black);
                topo.push(*node);
                stack.pop();
            }
        }
        // Relax in topological (parents-first) order.
        let mut d: HashMap<usize, u64> = HashMap::with_capacity(topo.len());
        d.insert(self.start, self.cost[self.start]);
        for &node in topo.iter().rev() {
            let Some(dn) = d.get(&node).copied() else {
                continue;
            };
            for e in &self.edges[node] {
                if !internal(e) {
                    continue;
                }
                let t = self.target(e);
                let via = dn.saturating_add(e.cost).saturating_add(self.cost[t]);
                let entry = d.entry(t).or_insert(0);
                *entry = (*entry).max(via);
            }
        }
        Ok(d)
    }

    /// Run the DP across every context and maximise the outputs.
    fn analyse(&self) -> Result<RegionOut, FlowError> {
        let mut latch = 0u64;
        let mut exit: Option<u64> = None;
        let mut deepest = 0u64;
        // External edges keep their full identity — source block,
        // original target *and* predicate (merging two differently
        // predicated exits would let one predicate gate the other's
        // cost); contexts maximise each one's weight.
        type EdgeKey = (usize, usize, Option<(Reg, i32, Cond)>);
        let mut external: HashMap<EdgeKey, u64> = HashMap::new();
        for ctx in self.contexts() {
            let d = self.longest_paths(&ctx)?;
            for (&m, &dm) in &d {
                deepest = deepest.max(dm);
                if let Some(t) = self.exit_cost[m] {
                    let total = dm.saturating_add(t);
                    exit = Some(exit.map_or(total, |e| e.max(total)));
                }
                for e in &self.edges[m] {
                    if !Self::feasible(e, &ctx) {
                        continue;
                    }
                    let t = self.target(e);
                    if t == self.start {
                        latch = latch.max(dm.saturating_add(e.cost));
                    } else if !self.members.contains(&t) {
                        let weight = dm.saturating_add(e.cost);
                        let slot = external.entry((m, e.to, e.pred)).or_insert(0);
                        *slot = (*slot).max(weight);
                    }
                }
            }
        }
        let mut external: Vec<FlowEdge> = external
            .into_iter()
            .map(|((_, to, pred), cost)| FlowEdge { to, cost, pred })
            .collect();
        external.sort_by_key(|e| (e.to, e.cost));
        Ok(RegionOut {
            latch,
            external,
            exit,
            deepest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built problems exercise the solver below the ISA layer.
    fn problem(
        costs: &[u64],
        edges: &[(usize, usize, u64)],
        exits: &[(usize, u64)],
        bounds: &[(usize, u64)],
    ) -> FlowProblem {
        let n = costs.len();
        let mut e: Vec<Vec<FlowEdge>> = vec![Vec::new(); n];
        for &(u, v, c) in edges {
            e[u].push(FlowEdge {
                to: v,
                cost: c,
                pred: None,
            });
        }
        let mut exit_cost: Vec<Option<u64>> = vec![None; n];
        for &(b, c) in exits {
            exit_cost[b] = Some(c);
        }
        FlowProblem {
            node_cost: costs.to_vec(),
            edges: e,
            exit_cost,
            loop_bounds: bounds.iter().copied().collect(),
            writes: vec![0; n],
        }
    }

    #[test]
    fn straight_line_sums() {
        // 0 → 1 → 2(ret)
        let p = problem(&[5, 7, 2], &[(0, 1, 3), (1, 2, 3)], &[(2, 4)], &[]);
        assert_eq!(p.solve(), Ok(5 + 3 + 7 + 3 + 2 + 4));
    }

    #[test]
    fn diamond_takes_the_heavier_arm_with_its_edge_cost() {
        // 0 → {1 (cost 10, edge 3), 2 (cost 20, edge 1)} → 3(ret)
        let p = problem(
            &[1, 10, 20, 0],
            &[(0, 1, 3), (0, 2, 1), (1, 3, 3), (2, 3, 3)],
            &[(3, 4)],
            &[],
        );
        // Heavy arm via the cheap fall-through: 1 + 1 + 20 + 3 + 0 + 4.
        assert_eq!(p.solve(), Ok(29));
    }

    #[test]
    fn loop_charges_body_bound_times_and_header_once_more() {
        // 0 →(3) 1(h, cost 1) →(3) 2(body, cost 6) →(3) 1; 1 →(1) 3(ret 4)
        let p = problem(
            &[0, 1, 6, 0],
            &[(0, 1, 3), (1, 2, 3), (2, 1, 3), (1, 3, 1)],
            &[(3, 4)],
            &[(1, 8)],
        );
        // Latch circuit: 1 + 3 + 6 + 3 = 13; eight of them, then the
        // final header check leaving via the cheap exit edge.
        assert_eq!(p.solve(), Ok(3 + 8 * 13 + 1 + 1 + 4));
    }

    #[test]
    fn zero_bound_loop_still_pays_the_final_check() {
        let p = problem(
            &[0, 2, 9, 0],
            &[(0, 1, 3), (1, 2, 3), (2, 1, 3), (1, 3, 1)],
            &[(3, 4)],
            &[(1, 0)],
        );
        assert_eq!(p.solve(), Ok(3 + 2 + 1 + 4));
    }

    #[test]
    fn missing_bound_is_reported_with_the_header() {
        let p = problem(&[0, 1, 1], &[(0, 1, 1), (1, 2, 1), (2, 1, 1)], &[], &[]);
        assert_eq!(p.solve(), Err(FlowError::Unbounded { header: 1 }));
    }

    #[test]
    fn irreducible_cycle_is_reported() {
        // 0 → 1 and 0 → 2, 1 ↔ 2: a cycle no header dominates.
        let p = problem(
            &[1, 1, 1],
            &[(0, 1, 1), (0, 2, 1), (1, 2, 1), (2, 1, 1)],
            &[],
            &[],
        );
        assert_eq!(p.solve(), Err(FlowError::Irreducible));
    }

    #[test]
    fn return_inside_a_loop_is_the_condensed_exit() {
        // Loop 1↔2 (bound 3); body 2 may return directly (cost 4).
        let p = problem(
            &[0, 1, 5, 0],
            &[(0, 1, 0), (1, 2, 0), (2, 1, 0), (1, 3, 0)],
            &[(2, 4), (3, 1)],
            &[(1, 3)],
        );
        // Worst: 3 latch circuits (6 each), then header → body → ret.
        assert_eq!(p.solve(), Ok(3 * 6 + 1 + 5 + 4));
    }

    #[test]
    fn exclusive_branches_cannot_both_take_their_long_arm() {
        // Two diamonds in sequence, both testing R5 (never written):
        //   b0: if r5 < 3 → heavy 1 (cost 100) else light (0)
        //   b3: if r5 > 7 → heavy 2 (cost 100) else light (0)
        let pred = |imm, cond| Some((Reg::R5, imm, cond));
        let mut e: Vec<Vec<FlowEdge>> = vec![Vec::new(); 7];
        e[0].push(FlowEdge {
            to: 1,
            cost: 0,
            pred: pred(3, Cond::Lt),
        });
        e[0].push(FlowEdge {
            to: 2,
            cost: 0,
            pred: pred(3, Cond::Ge),
        });
        e[1].push(FlowEdge {
            to: 3,
            cost: 0,
            pred: None,
        });
        e[2].push(FlowEdge {
            to: 3,
            cost: 0,
            pred: None,
        });
        e[3].push(FlowEdge {
            to: 4,
            cost: 0,
            pred: pred(7, Cond::Gt),
        });
        e[3].push(FlowEdge {
            to: 5,
            cost: 0,
            pred: pred(7, Cond::Le),
        });
        e[4].push(FlowEdge {
            to: 6,
            cost: 0,
            pred: None,
        });
        e[5].push(FlowEdge {
            to: 6,
            cost: 0,
            pred: None,
        });
        let p = FlowProblem {
            node_cost: vec![1, 100, 0, 1, 100, 0, 1],
            edges: e,
            exit_cost: {
                let mut x = vec![None; 7];
                x[6] = Some(2);
                x
            },
            loop_bounds: BTreeMap::new(),
            writes: vec![0; 7],
        };
        // Structurally both heavy arms stack (205); value-wise r5 can
        // satisfy only one of r5<3 / r5>7.
        assert_eq!(p.solve(), Ok(105)); // 1 + 100 + 1 + light(0) + 1 + 2
    }

    #[test]
    fn written_register_disables_the_exclusivity_fact() {
        let pred = |imm, cond| Some((Reg::R5, imm, cond));
        let mut e: Vec<Vec<FlowEdge>> = vec![Vec::new(); 7];
        e[0].push(FlowEdge {
            to: 1,
            cost: 0,
            pred: pred(3, Cond::Lt),
        });
        e[0].push(FlowEdge {
            to: 2,
            cost: 0,
            pred: pred(3, Cond::Ge),
        });
        e[1].push(FlowEdge {
            to: 3,
            cost: 0,
            pred: None,
        });
        e[2].push(FlowEdge {
            to: 3,
            cost: 0,
            pred: None,
        });
        e[3].push(FlowEdge {
            to: 4,
            cost: 0,
            pred: pred(7, Cond::Gt),
        });
        e[3].push(FlowEdge {
            to: 5,
            cost: 0,
            pred: pred(7, Cond::Le),
        });
        e[4].push(FlowEdge {
            to: 6,
            cost: 0,
            pred: None,
        });
        e[5].push(FlowEdge {
            to: 6,
            cost: 0,
            pred: None,
        });
        let mut writes = vec![0u16; 7];
        writes[2] = 1 << Reg::R5.index(); // the light arm rewrites r5
        let p = FlowProblem {
            node_cost: vec![1, 100, 0, 1, 100, 0, 1],
            edges: e,
            exit_cost: {
                let mut x = vec![None; 7];
                x[6] = Some(2);
                x
            },
            loop_bounds: BTreeMap::new(),
            writes,
        };
        assert_eq!(p.solve(), Ok(1 + 100 + 1 + 100 + 1 + 2));
    }
}
