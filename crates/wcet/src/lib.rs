//! # teamplay-wcet — static worst-case execution time analysis
//!
//! The reproduction's analogue of the aiT tool (paper ref \[6\]) that the
//! multi-criteria compiler invokes as a plug-in (Fig. 1). Because PG32 is
//! a *predictable* architecture — every instruction has a statically known
//! cycle cost — WCET analysis reduces to a flow problem, and since PR 5 it
//! is solved with a genuine **IPET** (implicit path enumeration)
//! formulation, the technique the paper inherits from the WCC/aiT
//! toolchain:
//!
//! 1. cost every basic block from the shared [`teamplay_isa::CycleModel`]
//!    (so the analyser and the simulator can never disagree on unit
//!    costs; only path feasibility is approximated) — conditional-branch
//!    costs are attached *per edge*, so a fall-through no longer pays the
//!    taken-branch worst case;
//! 2. formulate per-edge execution-count flow constraints over the CFG:
//!    Kirchhoff conservation at every block, loop-bound caps on the
//!    back-edge counts (from CSL annotations, counted-loop inference, and
//!    the trip counts the compiler's `unroll` pass proves), and
//!    infeasible-path facts for mutually exclusive branches on the same
//!    unwritten register;
//! 3. solve the resulting max-cost flow problem **exactly** with the
//!    in-tree loop-nest dynamic program in [`flow`] (reducible CFGs; no
//!    external LP crate, consistent with the vendored-offline rule),
//!    falling back to [`structural_bound`] on irreducible graphs; and
//! 4. resolve calls bottom-up over the (recursion-free) call graph,
//!    memoizing per-function results by content hash in an
//!    [`AnalysisCache`] so the thousands of variants a Pareto search
//!    compiles never re-analyse an unchanged function.
//!
//! The same flow solver serves the worst-case *energy* analysis in
//! `teamplay-energy` through [`flow_bound_with`]: per-block picojoule
//! costs ride the identical constraint system, exactly as WCC shares its
//! flow facts between its aiT and EnergyAnalyser plug-ins. On every
//! program the IPET bound is at most the structural bound (kept available
//! as [`analyze_program_structural`] for tightness measurement —
//! `BENCH_wcet.json` records the per-kernel ratios) and never below the
//! simulator's observed cycles; both properties are property-tested.
//!
//! ```
//! use teamplay_isa::{Block, CycleModel, Function, Program, Terminator};
//! use teamplay_wcet::analyze_program;
//!
//! let mut program = Program::new();
//! program.add_function(Function::stub("main"));
//! let report = analyze_program(&program, &CycleModel::pg32())?;
//! assert!(report.wcet_cycles("main").is_some());
//! # Ok::<(), teamplay_wcet::WcetError>(())
//! ```

pub mod flow;

use flow::{FlowError, FlowProblem};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use teamplay_isa::{CycleModel, Function, Insn, Program, Terminator};
use teamplay_minic::cfg::{natural_loops, reverse_postorder, CfgView};

/// Errors the analysis can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WcetError {
    /// A loop has no bound annotation and none could be inferred.
    UnboundedLoop {
        /// Function containing the loop.
        function: String,
        /// Header block index.
        header: u32,
    },
    /// The program's call graph contains recursion.
    Recursion(String),
    /// The CFG is irreducible (a cycle remains after loop condensation).
    IrreducibleCfg(String),
    /// A called function does not exist.
    UnknownCallee {
        /// The caller.
        function: String,
        /// The missing callee.
        callee: String,
    },
    /// Structural validation of the program failed.
    InvalidProgram(String),
}

impl fmt::Display for WcetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetError::UnboundedLoop { function, header } => {
                write!(
                    f,
                    "function `{function}`: loop at block {header} has no bound; \
                     add a `/*@ loop bound(n) @*/` annotation"
                )
            }
            WcetError::Recursion(func) => {
                write!(
                    f,
                    "recursion involving `{func}` — WCET analysis requires a call tree"
                )
            }
            WcetError::IrreducibleCfg(func) => {
                write!(f, "function `{func}` has irreducible control flow")
            }
            WcetError::UnknownCallee { function, callee } => {
                write!(f, "function `{function}` calls unknown `{callee}`")
            }
            WcetError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for WcetError {}

/// Per-program WCET results.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WcetReport {
    per_function: BTreeMap<String, u64>,
}

impl WcetReport {
    /// The WCET bound for a function, in cycles.
    pub fn wcet_cycles(&self, function: &str) -> Option<u64> {
        self.per_function.get(function).copied()
    }

    /// Iterate all `(function, wcet)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.per_function.iter().map(|(n, w)| (n.as_str(), *w))
    }

    /// WCET in microseconds at the given clock frequency.
    pub fn wcet_us(&self, function: &str, clock_mhz: f64) -> Option<f64> {
        self.wcet_cycles(function).map(|c| c as f64 / clock_mhz)
    }
}

/// Adapter giving the generic CFG algorithms a view of a PG32 function.
struct FnView<'a>(&'a Function);

impl CfgView for FnView<'_> {
    fn num_blocks(&self) -> usize {
        self.0.blocks.len()
    }
    fn entry(&self) -> usize {
        0
    }
    fn successors(&self, block: usize) -> Vec<usize> {
        self.0.blocks[block]
            .terminator
            .successors()
            .iter()
            .map(|b| b.index())
            .collect()
    }
}

/// Per-block instruction-body costs (terminators excluded, callee WCETs
/// folded in) for the flow formulation; unreachable blocks cost zero.
fn body_costs(
    f: &Function,
    model: &CycleModel,
    callee_wcets: &BTreeMap<String, u64>,
) -> Result<Vec<u64>, WcetError> {
    let view = FnView(f);
    let reachable: HashSet<usize> = reverse_postorder(&view).into_iter().collect();
    let mut cost = vec![0u64; f.blocks.len()];
    for (i, b) in f.blocks.iter().enumerate() {
        if !reachable.contains(&i) {
            continue;
        }
        let mut c = 0u64;
        for insn in &b.insns {
            c += model.cycles(insn, false);
            if let Insn::Call { func } = insn {
                let callee = callee_wcets
                    .get(func)
                    .ok_or_else(|| WcetError::UnknownCallee {
                        function: f.name.clone(),
                        callee: func.clone(),
                    })?;
                c += *callee;
            }
        }
        cost[i] = c;
    }
    Ok(cost)
}

/// The shared time/energy flow bound: build the IPET problem for `f`
/// from per-block body costs (terminators excluded) and a per-edge
/// terminator-cost closure, solve it exactly, and fall back to the
/// [`structural_bound`] on irreducible control flow.
///
/// This is the single engine behind both the cycle-based WCET analysis
/// here and the worst-case *energy* analysis in `teamplay-energy`
/// (which supplies millipicojoule costs) — one flow solver, two
/// non-functional properties, exactly as WCC shares its flow facts
/// between its aiT and EnergyAnalyser plug-ins.
///
/// # Errors
/// See [`WcetError`].
pub fn flow_bound_with(
    f: &Function,
    node_cost: &[u64],
    term_cost: &dyn Fn(&Terminator, bool) -> u64,
) -> Result<u64, WcetError> {
    let problem = FlowProblem::from_function(f, node_cost, term_cost);
    match problem.solve() {
        Ok(bound) => Ok(bound),
        Err(FlowError::Unbounded { header }) => Err(WcetError::UnboundedLoop {
            function: f.name.clone(),
            header: header as u32,
        }),
        Err(FlowError::Irreducible) => {
            // Structural fallback: fold the worst-case terminator cost
            // back into the block costs, as the structural engine
            // expects.
            let cost: Vec<u64> = node_cost
                .iter()
                .zip(&f.blocks)
                .map(|(c, b)| {
                    c.saturating_add(
                        term_cost(&b.terminator, true).max(term_cost(&b.terminator, false)),
                    )
                })
                .collect();
            structural_bound(f, &cost)
        }
    }
}

/// Analyse one function given already-known callee WCETs (IPET engine).
///
/// Exposed for the compiler's per-variant evaluation loop, which analyses
/// a single function against a cache of callee results.
///
/// # Errors
/// See [`WcetError`].
pub fn analyze_function(
    f: &Function,
    model: &CycleModel,
    callee_wcets: &BTreeMap<String, u64>,
) -> Result<u64, WcetError> {
    let cost = body_costs(f, model, callee_wcets)?;
    flow_bound_with(f, &cost, &|t, taken| model.terminator_cycles(t, taken))
}

/// [`analyze_function`] under the pre-IPET structural engine: loops are
/// condensed at `(bound + 1) × worst-iteration-path` and every block
/// pays its worst-case terminator. Kept as the tightness baseline the
/// benches and the oracle tests compare the IPET bound against (IPET ≤
/// structural on every function).
///
/// # Errors
/// See [`WcetError`].
pub fn analyze_function_structural(
    f: &Function,
    model: &CycleModel,
    callee_wcets: &BTreeMap<String, u64>,
) -> Result<u64, WcetError> {
    let body = body_costs(f, model, callee_wcets)?;
    let cost: Vec<u64> = body
        .iter()
        .zip(&f.blocks)
        .map(|(c, b)| c.saturating_add(model.terminator_worst_case(&b.terminator)))
        .collect();
    structural_bound(f, &cost)
}

/// Compute the structural worst-case bound of `f` for arbitrary per-block
/// costs: loops are condensed innermost-first at `(bound + 1) ×
/// iteration-cost` and the condensed DAG's longest path is returned.
///
/// Costs must *include* each block's (worst-case) terminator cost; the
/// engine is path-insensitive and edge-cost-blind, which is exactly what
/// makes it the conservative baseline for the IPET solver in [`flow`].
///
/// # Errors
/// See [`WcetError`].
pub fn structural_bound(f: &Function, cost: &[u64]) -> Result<u64, WcetError> {
    let view = FnView(f);
    let reachable: HashSet<usize> = reverse_postorder(&view).into_iter().collect();

    // Union-find style node mapping: block -> current super-node.
    let n = f.blocks.len();
    let mut node_of: Vec<usize> = (0..n).collect();
    // Node costs and successor sets (on super-node ids; reuse block ids of
    // loop headers as super-node ids).
    let mut node_cost: Vec<u64> = cost.to_vec();
    let mut succs: Vec<HashSet<usize>> = (0..n)
        .map(|i| {
            if reachable.contains(&i) {
                view.successors(i).into_iter().collect()
            } else {
                HashSet::new()
            }
        })
        .collect();

    // Innermost-first: sort loops by body size ascending.
    let mut loops = natural_loops(&view);
    loops.sort_by_key(|l| l.body.len());

    for l in &loops {
        let header_node = node_of[l.header];
        let bound = *f
            .loop_bounds
            .get(&teamplay_isa::BlockId(l.header as u32))
            .ok_or(WcetError::UnboundedLoop {
                function: f.name.clone(),
                header: l.header as u32,
            })?;

        // Current super-nodes that make up this loop.
        let members: HashSet<usize> = l.body.iter().map(|b| node_of[*b]).collect();

        // Longest path from the header node within the members, with
        // edges back to the header removed (acyclic once inner loops are
        // condensed).
        let iter_cost = longest_path_within(&members, header_node, &succs, &node_cost)
            .ok_or_else(|| WcetError::IrreducibleCfg(f.name.clone()))?;

        // Condense: the header node becomes the super-node.
        let total = iter_cost.saturating_mul(bound as u64 + 1);
        node_cost[header_node] = total;
        let mut external: HashSet<usize> = HashSet::new();
        for &m in &members {
            for &s in &succs[m] {
                let sn = node_of[s];
                if !members.contains(&sn) {
                    external.insert(sn);
                }
            }
        }
        succs[header_node] = external;
        for node in node_of.iter_mut().take(n) {
            if members.contains(node) {
                *node = header_node;
            }
        }
    }

    // Longest path over the condensed DAG from the entry node.
    let entry_node = node_of[0];
    let all_nodes: HashSet<usize> = (0..n)
        .filter(|b| reachable.contains(b))
        .map(|b| node_of[b])
        .collect();
    longest_path_within(&all_nodes, entry_node, &succs, &node_cost)
        .ok_or_else(|| WcetError::IrreducibleCfg(f.name.clone()))
}

/// Longest node-weighted path from `start` within `members`, following
/// `succs` but never re-entering `start`. Returns `None` if a cycle is
/// found (graph not properly condensed / irreducible CFG).
fn longest_path_within(
    members: &HashSet<usize>,
    start: usize,
    succs: &[HashSet<usize>],
    node_cost: &[u64],
) -> Option<u64> {
    // Iterative DFS computing topological order; cycle detection via
    // colour marking.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<usize, Colour> = members.iter().map(|&m| (m, Colour::White)).collect();
    let mut topo: Vec<usize> = Vec::with_capacity(members.len());
    let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    let next_of = |node: usize| -> Vec<usize> {
        succs[node]
            .iter()
            .copied()
            .filter(|s| members.contains(s) && *s != start)
            .collect()
    };
    colour.insert(start, Colour::Grey);
    stack.push((start, next_of(start), 0));
    while let Some((node, kids, idx)) = stack.last_mut() {
        if *idx < kids.len() {
            let k = kids[*idx];
            *idx += 1;
            match colour[&k] {
                Colour::White => {
                    colour.insert(k, Colour::Grey);
                    let kk = next_of(k);
                    stack.push((k, kk, 0));
                }
                Colour::Grey => return None, // cycle
                Colour::Black => {}
            }
        } else {
            colour.insert(*node, Colour::Black);
            topo.push(*node);
            stack.pop();
        }
    }
    // topo is reverse topological order (children before parents).
    let mut best: HashMap<usize, u64> = HashMap::new();
    for &node in &topo {
        let kid_best = succs[node]
            .iter()
            .filter(|s| members.contains(s) && **s != start)
            .map(|s| best.get(s).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        best.insert(node, node_cost[node].saturating_add(kid_best));
    }
    Some(best.get(&start).copied().unwrap_or(node_cost[start]))
}

/// A thread-safe memo of per-function analysis results, keyed by the
/// function's *content hash* (its blocks, bounds and frame, plus the
/// callee bounds it was analysed against).
///
/// The compiler's variant search compiles thousands of configurations of
/// one module; most configurations leave most functions byte-identical,
/// so their analyses are pure replays. One `AnalysisCache` per
/// (cost-model, metric) pair — e.g. one for cycles and one for energy
/// inside the driver's `EvalCache` — turns those replays into hash-map
/// hits. Results are exact values of a pure function of the key, so
/// sharing a cache across threads or searches cannot change any result.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    entries: Mutex<HashMap<u64, u64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl AnalysisCache {
    /// An empty cache. Use one per cost model and metric.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The content key of `f` analysed against `callee_bounds`: a hash
    /// of the function body plus the bound of every callee (in callee
    /// order, so a callee's change re-keys its callers too).
    pub fn key(f: &Function, callee_bounds: &BTreeMap<String, u64>) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        f.hash(&mut h);
        for callee in f.callees() {
            callee_bounds.get(&callee).hash(&mut h);
        }
        h.finish()
    }

    /// Look up `key`, or compute and remember it. Errors are not cached
    /// (the program-level drivers abort on the first error anyway).
    pub fn get_or_try_insert(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<u64, WcetError>,
    ) -> Result<u64, WcetError> {
        if let Some(v) = self.entries.lock().expect("analysis cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*v);
        }
        let v = compute()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("analysis cache lock")
            .insert(key, v);
        Ok(v)
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the analysis.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The callee-first analysis order over the (recursion-free) call graph.
fn call_order(program: &Program) -> Vec<&str> {
    let mut order: Vec<&str> = Vec::new();
    let mut done: HashSet<&str> = HashSet::new();
    let mut visiting: Vec<(&str, usize)> = Vec::new();
    for start in program.functions.keys() {
        if done.contains(start.as_str()) {
            continue;
        }
        visiting.push((start.as_str(), 0));
        let mut callee_cache: HashMap<&str, Vec<String>> = HashMap::new();
        while let Some((name, idx)) = visiting.pop() {
            let callees = callee_cache
                .entry(name)
                .or_insert_with(|| program.functions[name].callees());
            if idx < callees.len() {
                let next = callees[idx].clone();
                visiting.push((name, idx + 1));
                if let Some((key, _)) = program.functions.get_key_value(next.as_str()) {
                    if !done.contains(key.as_str())
                        && !visiting.iter().any(|(n, _)| *n == key.as_str())
                    {
                        visiting.push((key.as_str(), 0));
                    }
                }
            } else if done.insert(name) {
                order.push(name);
            }
        }
    }
    order
}

/// The shared program-level analysis driver: validate, reject
/// recursion, then analyse every function in callee-first order with
/// `analyse` (handing each its already-resolved callee bounds),
/// optionally memoized through a per-function content-hash `cache`.
///
/// Returns the raw per-function bounds; both this crate's WCET drivers
/// and `teamplay-energy`'s WCEC drivers wrap their reports around it,
/// so validation, ordering and cache-keying policy live in exactly one
/// place.
///
/// # Errors
/// See [`WcetError`].
pub fn resolve_bottom_up(
    program: &Program,
    cache: Option<&AnalysisCache>,
    analyse: impl Fn(&Function, &BTreeMap<String, u64>) -> Result<u64, WcetError>,
) -> Result<BTreeMap<String, u64>, WcetError> {
    program.validate().map_err(WcetError::InvalidProgram)?;
    if program.has_recursion() {
        let name = program.functions.keys().next().cloned().unwrap_or_default();
        return Err(WcetError::Recursion(name));
    }
    let mut bounds: BTreeMap<String, u64> = BTreeMap::new();
    for name in call_order(program) {
        let f = &program.functions[name];
        let w = match cache {
            Some(cache) => {
                cache.get_or_try_insert(AnalysisCache::key(f, &bounds), || analyse(f, &bounds))?
            }
            None => analyse(f, &bounds)?,
        };
        bounds.insert(name.to_string(), w);
    }
    Ok(bounds)
}

/// Analyse a whole program with the IPET engine: every function gets a
/// WCET, resolved bottom-up over the call graph.
///
/// # Errors
/// See [`WcetError`].
pub fn analyze_program(program: &Program, model: &CycleModel) -> Result<WcetReport, WcetError> {
    Ok(WcetReport {
        per_function: resolve_bottom_up(program, None, |f, callees| {
            analyze_function(f, model, callees)
        })?,
    })
}

/// [`analyze_program`] with per-function memoization: unchanged
/// functions (same content hash, same callee bounds) are answered from
/// `cache` instead of re-analysed. Use one cache per [`CycleModel`] —
/// the model is not part of the key.
///
/// # Errors
/// See [`WcetError`].
pub fn analyze_program_cached(
    program: &Program,
    model: &CycleModel,
    cache: &AnalysisCache,
) -> Result<WcetReport, WcetError> {
    Ok(WcetReport {
        per_function: resolve_bottom_up(program, Some(cache), |f, callees| {
            analyze_function(f, model, callees)
        })?,
    })
}

/// Whole-program analysis under the structural baseline engine (see
/// [`analyze_function_structural`]); the tightness denominator in
/// `BENCH_wcet.json`.
///
/// # Errors
/// See [`WcetError`].
pub fn analyze_program_structural(
    program: &Program,
    model: &CycleModel,
) -> Result<WcetReport, WcetError> {
    Ok(WcetReport {
        per_function: resolve_bottom_up(program, None, |f, callees| {
            analyze_function_structural(f, model, callees)
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use teamplay_isa::{AluOp, Block, BlockId, Cond, Operand, Reg, Terminator};

    fn alu() -> Insn {
        Insn::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Imm(1),
        }
    }

    fn straight_function(name: &str, n_insns: usize) -> Function {
        Function {
            name: name.into(),
            blocks: vec![Block {
                insns: (0..n_insns).map(|_| alu()).collect(),
                terminator: Terminator::Return,
            }],
            loop_bounds: Map::new(),
            frame_size: 0,
        }
    }

    #[test]
    fn straight_line_wcet_is_exact_sum() {
        let mut p = Program::new();
        p.add_function(straight_function("f", 5));
        let r = analyze_program(&p, &CycleModel::pg32()).expect("analysis");
        // 5 ALU + ret(4)
        assert_eq!(r.wcet_cycles("f"), Some(9));
    }

    #[test]
    fn diamond_takes_the_longer_arm() {
        // bb0: cmp; branch -> bb1 (10 alu) | bb2 (2 alu); both -> bb3 ret
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R0,
                        src: Operand::Imm(0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Eq,
                        taken: BlockId(1),
                        fallthrough: BlockId(2),
                    },
                },
                Block {
                    insns: (0..10).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(3)),
                },
                Block {
                    insns: (0..2).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(3)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: Map::new(),
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        let r = analyze_program(&p, &CycleModel::pg32()).expect("analysis");
        // cmp(1)+cond_taken(3) + 10 alu + b(3) + ret(4) = 21
        assert_eq!(r.wcet_cycles("f"), Some(21));
    }

    #[test]
    fn heavier_fallthrough_arm_is_charged_the_cheap_edge() {
        // Same diamond, long arm on the *fall-through* side: IPET pays
        // cond_not_taken (1) into it, the structural engine still pays
        // the worst-case terminator (3).
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R0,
                        src: Operand::Imm(0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Eq,
                        taken: BlockId(2),
                        fallthrough: BlockId(1),
                    },
                },
                Block {
                    insns: (0..10).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(3)),
                },
                Block {
                    insns: (0..2).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(3)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: Map::new(),
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        let model = CycleModel::pg32();
        let ipet = analyze_program(&p, &model)
            .expect("ipet")
            .wcet_cycles("f")
            .expect("f");
        let structural = analyze_program_structural(&p, &model)
            .expect("structural")
            .wcet_cycles("f")
            .expect("f");
        // cmp(1) + not-taken(1) + 10 alu + b(3) + ret(4) = 19.
        assert_eq!(ipet, 19);
        assert_eq!(structural, 21);
    }

    fn loop_function(bound: Option<u32>) -> Function {
        // bb0 -> bb1(header: cmp, cond) -> bb2(body: 3 alu) -> bb1; exit bb3
        let mut loop_bounds = Map::new();
        if let Some(b) = bound {
            loop_bounds.insert(BlockId(1), b);
        }
        Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R1,
                        src: Operand::Imm(8),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(3),
                    },
                },
                Block {
                    insns: (0..3).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds,
            frame_size: 0,
        }
    }

    #[test]
    fn loop_wcet_scales_with_bound() {
        let mut p8 = Program::new();
        p8.add_function(loop_function(Some(8)));
        let mut p16 = Program::new();
        p16.add_function(loop_function(Some(16)));
        let model = CycleModel::pg32();
        let w8 = analyze_program(&p8, &model)
            .expect("w8")
            .wcet_cycles("f")
            .expect("f");
        let w16 = analyze_program(&p16, &model)
            .expect("w16")
            .wcet_cycles("f")
            .expect("f");
        // IPET charges the body exactly `bound` times and the header
        // once more: entry b(3) + bound × [cmp(1) + taken(3) + 3 alu +
        // b(3)] + final check cmp(1) + not-taken(1) + ret(4).
        assert_eq!(w8, 3 + 8 * 10 + 1 + 1 + 4);
        assert_eq!(w16, 3 + 16 * 10 + 1 + 1 + 4);
    }

    #[test]
    fn ipet_is_tighter_than_structural_on_loops() {
        let mut p = Program::new();
        p.add_function(loop_function(Some(8)));
        let model = CycleModel::pg32();
        let ipet = analyze_program(&p, &model)
            .expect("ipet")
            .wcet_cycles("f")
            .expect("f");
        let structural = analyze_program_structural(&p, &model)
            .expect("structural")
            .wcet_cycles("f")
            .expect("f");
        // Structural: (8+1) × worst iteration (10) + entry 3 + ret 4.
        assert_eq!(structural, 3 + 9 * 10 + 4);
        assert!(ipet < structural, "{ipet} vs {structural}");
    }

    #[test]
    fn unbounded_loop_is_rejected_with_header() {
        let mut p = Program::new();
        p.add_function(loop_function(None));
        match analyze_program(&p, &CycleModel::pg32()) {
            Err(WcetError::UnboundedLoop { function, header }) => {
                assert_eq!(function, "f");
                assert_eq!(header, 1);
            }
            other => panic!("expected UnboundedLoop, got {other:?}"),
        }
    }

    #[test]
    fn calls_are_resolved_bottom_up() {
        let mut p = Program::new();
        p.add_function(straight_function("leaf", 7));
        let mut caller = straight_function("caller", 1);
        caller.blocks[0].insns.push(Insn::Call {
            func: "leaf".into(),
        });
        p.add_function(caller);
        let r = analyze_program(&p, &CycleModel::pg32()).expect("analysis");
        let leaf = r.wcet_cycles("leaf").expect("leaf");
        let caller_w = r.wcet_cycles("caller").expect("caller");
        // caller = 1 alu + call(4) + leaf + ret(4)
        assert_eq!(caller_w, 1 + 4 + leaf + 4);
    }

    #[test]
    fn recursion_is_rejected() {
        let mut p = Program::new();
        let mut f = straight_function("f", 0);
        f.blocks[0].insns.push(Insn::Call { func: "f".into() });
        p.add_function(f);
        assert!(matches!(
            analyze_program(&p, &CycleModel::pg32()),
            Err(WcetError::Recursion(_))
        ));
    }

    #[test]
    fn nested_loops_multiply() {
        // outer bound 4, inner bound 6; inner body 2 alu.
        let mut loop_bounds = Map::new();
        loop_bounds.insert(BlockId(1), 4);
        loop_bounds.insert(BlockId(2), 6);
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                // outer header
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R1,
                        src: Operand::Imm(4),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(4),
                    },
                },
                // inner header
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R2,
                        src: Operand::Imm(6),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(3),
                        fallthrough: BlockId(1),
                    },
                },
                // inner body
                Block {
                    insns: vec![alu(), alu()],
                    terminator: Terminator::Branch(BlockId(2)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds,
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        let w = analyze_program(&p, &CycleModel::pg32())
            .expect("analysis")
            .wcet_cycles("f")
            .expect("f");
        // Inner latch circuit: header 1+3 + body 2+3 = 9; six of them
        // plus the inner final check (1 + not-taken 1) = 56 per outer
        // iteration. Outer circuit: 1 + 3 + 56 = 60; four of them plus
        // the outer final check (1 + 1), entry 3, ret 4.
        assert_eq!(w, 3 + 4 * 60 + 1 + 1 + 4);
        // And that is strictly below the structural 342.
        let s = analyze_program_structural(&p, &CycleModel::pg32())
            .expect("structural")
            .wcet_cycles("f")
            .expect("f");
        assert_eq!(s, 342);
        assert!(w < s);
    }

    #[test]
    fn unreachable_blocks_do_not_contribute() {
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![alu()],
                    terminator: Terminator::Return,
                },
                Block {
                    insns: (0..100).map(|_| alu()).collect(),
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: Map::new(),
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        let r = analyze_program(&p, &CycleModel::pg32()).expect("analysis");
        assert_eq!(r.wcet_cycles("f"), Some(5));
    }

    #[test]
    fn report_time_conversion() {
        let mut p = Program::new();
        p.add_function(straight_function("f", 96));
        let r = analyze_program(&p, &CycleModel::pg32()).expect("analysis");
        // 100 cycles at 50 MHz = 2 µs.
        assert!((r.wcet_us("f", 50.0).expect("f") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn irreducible_cfg_is_rejected_by_both_engines() {
        // 0 branches into a 1 ↔ 2 cycle at both nodes: no header
        // dominates the other, so there is no natural loop to condense
        // and the flow solver's structural fallback rejects it too.
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R0,
                        src: Operand::Imm(0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Eq,
                        taken: BlockId(1),
                        fallthrough: BlockId(2),
                    },
                },
                Block {
                    insns: vec![alu()],
                    terminator: Terminator::Branch(BlockId(2)),
                },
                Block {
                    insns: vec![alu()],
                    terminator: Terminator::Branch(BlockId(1)),
                },
            ],
            loop_bounds: Map::new(),
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        assert!(matches!(
            analyze_program(&p, &CycleModel::pg32()),
            Err(WcetError::IrreducibleCfg(_))
        ));
    }

    #[test]
    fn exclusive_branches_tighten_the_dag_bound() {
        // Two diamonds testing R0 (a parameter, never written): r0 < 3
        // guards a heavy arm, r0 > 7 guards another. Value-wise only one
        // can fire; the structural engine charges both.
        let heavy = |n: usize| Block {
            insns: (0..n).map(|_| alu()).collect(),
            terminator: Terminator::Branch(BlockId(3)),
        };
        let f = Function {
            name: "f".into(),
            blocks: vec![
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R1,
                        src: Operand::Imm(3),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(1),
                        fallthrough: BlockId(2),
                    },
                },
                heavy(50),
                Block {
                    insns: vec![],
                    terminator: Terminator::Branch(BlockId(3)),
                },
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R1,
                        src: Operand::Imm(7),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Gt,
                        taken: BlockId(4),
                        fallthrough: BlockId(5),
                    },
                },
                Block {
                    insns: (0..50).map(|_| alu()).collect(),
                    terminator: Terminator::Branch(BlockId(6)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Branch(BlockId(6)),
                },
                Block {
                    insns: vec![],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: Map::new(),
            frame_size: 0,
        };
        let mut p = Program::new();
        p.add_function(f);
        let model = CycleModel::pg32();
        let ipet = analyze_program(&p, &model)
            .expect("ipet")
            .wcet_cycles("f")
            .expect("f");
        let structural = analyze_program_structural(&p, &model)
            .expect("structural")
            .wcet_cycles("f")
            .expect("f");
        // One heavy arm (50) plus one light arm; structurally both stack.
        assert!(structural >= ipet + 50, "{ipet} vs {structural}");
        // cmp(1)+taken(3)+50+b(3) + cmp(1)+nt(1)+b(3) + ret(4) = 66.
        assert_eq!(ipet, 66);
    }

    #[test]
    fn analysis_cache_replays_unchanged_functions() {
        let mut p = Program::new();
        p.add_function(straight_function("leaf", 7));
        let mut caller = straight_function("caller", 1);
        caller.blocks[0].insns.push(Insn::Call {
            func: "leaf".into(),
        });
        p.add_function(caller);
        let model = CycleModel::pg32();
        let cache = AnalysisCache::new();
        let a = analyze_program_cached(&p, &model, &cache).expect("first");
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        let b = analyze_program_cached(&p, &model, &cache).expect("second");
        assert_eq!(a, b);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        // Cached and uncached agree.
        assert_eq!(a, analyze_program(&p, &model).expect("uncached"));

        // Changing the *leaf* re-keys the caller too (its callee bound
        // is part of the key).
        let mut p2 = p.clone();
        p2.functions.get_mut("leaf").expect("leaf").blocks[0]
            .insns
            .push(alu());
        let c = analyze_program_cached(&p2, &model, &cache).expect("third");
        assert_eq!((cache.hits(), cache.misses()), (2, 4));
        assert!(c.wcet_cycles("caller") > a.wcet_cycles("caller"));
        assert_eq!(c, analyze_program(&p2, &model).expect("uncached"));
    }

    #[test]
    fn ipet_never_exceeds_structural_on_every_fixture() {
        let model = CycleModel::pg32();
        let fixtures: Vec<Function> = vec![
            straight_function("f", 5),
            loop_function(Some(8)),
            loop_function(Some(0)),
        ];
        for f in fixtures {
            let mut p = Program::new();
            p.add_function(f);
            let ipet = analyze_program(&p, &model)
                .expect("ipet")
                .wcet_cycles("f")
                .expect("f");
            let s = analyze_program_structural(&p, &model)
                .expect("structural")
                .wcet_cycles("f")
                .expect("f");
            assert!(ipet <= s, "{ipet} > {s}");
        }
    }
}
