//! The analytical ISA-level energy model.
//!
//! Structure follows paper refs \[8\]/\[9\]: per-class base energy,
//! inter-instruction (circuit-state) overhead, per-cycle leakage, and a
//! per-register stack-transfer cost. Two constructors matter:
//!
//! * [`IsaEnergyModel::pg32_datasheet`] — the hand-characterised model a
//!   tool vendor would ship: rounded numbers, a single pessimistic
//!   overhead constant, everything ≥ the true silicon cost so that
//!   worst-case claims stay safe.
//! * [`IsaEnergyModel::from_coefficients`] — built by the fitting flow
//!   from measurements; accurate on average but not guaranteed
//!   conservative (used for estimation, not certification).

use serde::{Deserialize, Serialize};
use teamplay_isa::{EnergyClass, ENERGY_CLASS_COUNT};

/// An analytical per-instruction energy model (all values picojoules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaEnergyModel {
    /// Base dynamic energy per class.
    pub base: [f64; ENERGY_CLASS_COUNT],
    /// Pessimistic inter-instruction overhead applied between *any* two
    /// instructions of different classes (the datasheet abstraction of
    /// the full pairwise matrix).
    pub overhead: f64,
    /// Static leakage per cycle.
    pub leakage_per_cycle: f64,
    /// Extra energy per register moved by push/pop.
    pub stack_per_reg: f64,
    /// `true` if every coefficient is intended as an upper bound (safe
    /// for WCEC); fitted models set this to `false`.
    pub conservative: bool,
}

impl IsaEnergyModel {
    /// The shipped PG32 characterisation: rounded, conservative numbers.
    pub fn pg32_datasheet() -> IsaEnergyModel {
        IsaEnergyModel {
            base: [
                850.0,  // Alu
                3600.0, // Mul
                4500.0, // Div
                1750.0, // Load
                1600.0, // Store
                1200.0, // Branch
                1250.0, // Stack
                3100.0, // Io
                450.0,  // Idle
            ],
            overhead: 260.0, // ≥ max true pairwise overhead
            leakage_per_cycle: 100.0,
            stack_per_reg: 260.0,
            conservative: true,
        }
    }

    /// A LEON3 characterisation matching the costlier rad-hard memory
    /// subsystem.
    pub fn leon3_datasheet() -> IsaEnergyModel {
        let mut m = IsaEnergyModel::pg32_datasheet();
        m.base[EnergyClass::Load.index()] *= 1.6;
        m.base[EnergyClass::Store.index()] *= 1.6;
        m.leakage_per_cycle = 220.0;
        m
    }

    /// Build a model from fitted per-class coefficients (overhead folded
    /// into the class averages, as the regression cannot separate them).
    pub fn from_coefficients(
        base: [f64; ENERGY_CLASS_COUNT],
        leakage_per_cycle: f64,
    ) -> IsaEnergyModel {
        IsaEnergyModel {
            base,
            overhead: 0.0,
            leakage_per_cycle,
            stack_per_reg: 0.0,
            conservative: false,
        }
    }

    /// Base energy of a class.
    pub fn base(&self, class: EnergyClass) -> f64 {
        self.base[class.index()]
    }

    /// Worst-case energy of one instruction occurrence: base + overhead
    /// (+ stack-transfer costs), excluding leakage.
    pub fn worst_case_insn(&self, class: EnergyClass, regs_moved: usize) -> f64 {
        let mut e = self.base(class) + self.overhead;
        if class == EnergyClass::Stack {
            e += self.stack_per_reg * regs_moved as f64;
        }
        e
    }

    /// Predicted energy for a whole run from per-class retirement counts
    /// and total cycles — the estimation interface used when comparing
    /// against measurements.
    pub fn predict_pj(&self, class_counts: &[u64; ENERGY_CLASS_COUNT], cycles: u64) -> f64 {
        let mut e = self.leakage_per_cycle * cycles as f64;
        for (class, count) in EnergyClass::ALL.iter().zip(class_counts) {
            e += self.base(*class) * *count as f64;
            if !self.conservative {
                continue;
            }
            // A conservative model charges the pessimistic overhead on
            // every instruction.
            e += self.overhead * *count as f64;
        }
        e
    }
}

impl Default for IsaEnergyModel {
    fn default() -> Self {
        IsaEnergyModel::pg32_datasheet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_is_marked_conservative() {
        let m = IsaEnergyModel::pg32_datasheet();
        assert!(m.conservative);
        for c in EnergyClass::ALL {
            assert!(m.base(c) > 0.0);
        }
    }

    #[test]
    fn worst_case_includes_overhead_and_stack() {
        let m = IsaEnergyModel::pg32_datasheet();
        let alu = m.worst_case_insn(EnergyClass::Alu, 0);
        assert!((alu - m.base(EnergyClass::Alu) - m.overhead).abs() < 1e-9);
        let stack3 = m.worst_case_insn(EnergyClass::Stack, 3);
        let stack1 = m.worst_case_insn(EnergyClass::Stack, 1);
        assert!((stack3 - stack1 - 2.0 * m.stack_per_reg).abs() < 1e-9);
    }

    #[test]
    fn prediction_scales_linearly() {
        let m = IsaEnergyModel::pg32_datasheet();
        let mut counts = [0u64; ENERGY_CLASS_COUNT];
        counts[EnergyClass::Alu.index()] = 10;
        let e10 = m.predict_pj(&counts, 10);
        counts[EnergyClass::Alu.index()] = 20;
        let e20 = m.predict_pj(&counts, 20);
        assert!((e20 - 2.0 * e10).abs() < 1e-9);
    }

    #[test]
    fn leon3_memory_is_costlier_than_pg32() {
        let pg = IsaEnergyModel::pg32_datasheet();
        let leon = IsaEnergyModel::leon3_datasheet();
        assert!(leon.base(EnergyClass::Load) > pg.base(EnergyClass::Load));
    }
}
