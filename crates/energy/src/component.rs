//! Component-based energy modelling for complex platforms.
//!
//! Paper refs \[18\]/\[19\] model heterogeneous platform power as a base draw
//! plus per-component utilisation terms:
//!
//! ```text
//!   P(t) ≈ P_base + Σ_k β_k · u_k(t)
//! ```
//!
//! which is fitted from coarse-grained measurements and then used by the
//! coordination layer for in-flight, battery-aware schedulability (the
//! precision-agriculture use case, Section IV-C). The same OLS machinery
//! as the ISA model applies, just over utilisation columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One coarse measurement: component utilisations (each 0–1) and the
/// observed total power in milliwatts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSample {
    /// Utilisation per component, in the model's component order.
    pub utilisation: Vec<f64>,
    /// Measured platform power (mW).
    pub power_mw: f64,
}

/// A fitted component-based power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentModel {
    /// Component names, fixing the column order.
    pub components: Vec<String>,
    /// Baseline platform power (mW).
    pub base_mw: f64,
    /// Per-component full-utilisation power (mW).
    pub coefficients: Vec<f64>,
}

/// Fitting errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentFitError {
    /// Fewer samples than coefficients.
    TooFewSamples,
    /// A sample's utilisation vector length disagrees with the component
    /// list.
    ShapeMismatch,
    /// Singular normal equations.
    Singular,
}

impl fmt::Display for ComponentFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentFitError::TooFewSamples => write!(f, "not enough samples to fit"),
            ComponentFitError::ShapeMismatch => {
                write!(f, "sample utilisation length differs from component count")
            }
            ComponentFitError::Singular => write!(f, "degenerate utilisation samples"),
        }
    }
}

impl std::error::Error for ComponentFitError {}

impl ComponentModel {
    /// Fit from samples (OLS with an intercept).
    ///
    /// # Errors
    /// See [`ComponentFitError`].
    pub fn fit(
        components: Vec<String>,
        samples: &[ComponentSample],
    ) -> Result<ComponentModel, ComponentFitError> {
        let k = components.len();
        let n_coef = k + 1;
        if samples.len() < n_coef {
            return Err(ComponentFitError::TooFewSamples);
        }
        if samples.iter().any(|s| s.utilisation.len() != k) {
            return Err(ComponentFitError::ShapeMismatch);
        }
        let mut xtx = vec![vec![0.0f64; n_coef]; n_coef];
        let mut xty = vec![0.0f64; n_coef];
        for s in samples {
            let mut row = Vec::with_capacity(n_coef);
            row.push(1.0);
            row.extend_from_slice(&s.utilisation);
            for i in 0..n_coef {
                for j in 0..n_coef {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * s.power_mw;
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let beta = gaussian_solve(xtx, xty).ok_or(ComponentFitError::Singular)?;
        Ok(ComponentModel {
            components,
            base_mw: beta[0].max(0.0),
            coefficients: beta[1..].iter().map(|b| b.max(0.0)).collect(),
        })
    }

    /// Predict platform power for the given utilisations (mW).
    ///
    /// # Panics
    /// Panics if `utilisation.len()` differs from the component count.
    pub fn predict_mw(&self, utilisation: &[f64]) -> f64 {
        assert_eq!(
            utilisation.len(),
            self.coefficients.len(),
            "utilisation shape"
        );
        self.base_mw
            + self
                .coefficients
                .iter()
                .zip(utilisation)
                .map(|(c, u)| c * u)
                .sum::<f64>()
    }

    /// Predict energy (mJ) over a duration at constant utilisation.
    pub fn predict_energy_mj(&self, utilisation: &[f64], duration_ms: f64) -> f64 {
        self.predict_mw(utilisation) * duration_ms / 1000.0
    }
}

fn gaussian_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col].clone();
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot_row[col];
            for (entry, pivot) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *entry -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k2 in (row + 1)..n {
            acc -= a[row][k2] * x[k2];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth(n: usize, seed: u64) -> Vec<ComponentSample> {
        // Truth: base 2000 mW, cpu 4500 mW, gpu 6000 mW, radio 800 mW.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
                let p = 2000.0 + 4500.0 * u[0] + 6000.0 * u[1] + 800.0 * u[2];
                ComponentSample {
                    utilisation: u,
                    power_mw: p,
                }
            })
            .collect()
    }

    fn names() -> Vec<String> {
        vec!["cpu".into(), "gpu".into(), "radio".into()]
    }

    #[test]
    fn recovers_exact_linear_truth() {
        let model = ComponentModel::fit(names(), &synth(50, 1)).expect("fit");
        // The ridge dust on the normal equations perturbs the exact
        // solution at the ~1e-4 level; compare with a relative tolerance.
        let close = |got: f64, truth: f64| (got - truth).abs() / truth < 1e-4;
        assert!(close(model.base_mw, 2000.0), "base {}", model.base_mw);
        assert!(
            close(model.coefficients[0], 4500.0),
            "cpu {}",
            model.coefficients[0]
        );
        assert!(
            close(model.coefficients[1], 6000.0),
            "gpu {}",
            model.coefficients[1]
        );
        assert!(
            close(model.coefficients[2], 800.0),
            "radio {}",
            model.coefficients[2]
        );
    }

    #[test]
    fn prediction_matches_truth() {
        let model = ComponentModel::fit(names(), &synth(50, 2)).expect("fit");
        let p = model.predict_mw(&[0.5, 0.25, 1.0]);
        let truth = 2000.0 + 4500.0 * 0.5 + 6000.0 * 0.25 + 800.0;
        assert!((p - truth).abs() / truth < 1e-4, "{p} vs {truth}");
        let e = model.predict_energy_mj(&[0.5, 0.25, 1.0], 2000.0);
        assert!((e - truth * 2.0).abs() / (truth * 2.0) < 1e-4);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bad = vec![
            ComponentSample {
                utilisation: vec![0.5],
                power_mw: 100.0
            };
            10
        ];
        assert_eq!(
            ComponentModel::fit(names(), &bad),
            Err(ComponentFitError::ShapeMismatch)
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = synth(2, 3);
        assert_eq!(
            ComponentModel::fit(names(), &s),
            Err(ComponentFitError::TooFewSamples)
        );
    }

    #[test]
    #[should_panic(expected = "utilisation shape")]
    fn predict_checks_shape() {
        let model = ComponentModel::fit(names(), &synth(50, 4)).expect("fit");
        let _ = model.predict_mw(&[0.5]);
    }
}
