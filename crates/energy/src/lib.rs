//! # teamplay-energy — energy modelling and static energy analysis
//!
//! The reproduction of TeamPlay's EnergyAnalyser (paper refs \[7\]–\[9\]) and
//! of its energy-modelling methodology:
//!
//! * [`model`] — the analytical ISA-level energy model (Tiwari-style base
//!   cost + inter-instruction overhead + leakage). The "datasheet" model
//!   is a deliberately *conservative* hand-written characterisation; it is
//!   close to, but not identical with, the simulator's hidden ground
//!   truth, so analysis-vs-measurement comparisons stay meaningful.
//! * [`analysis`] — static worst-case energy consumption (WCEC) analysis
//!   over PG32 programs, reusing the WCET crate's structural flow solver
//!   with picojoule block costs.
//! * [`fitting`] — ordinary-least-squares model *fitting* from measured
//!   runs (per-class retirement counters + energy), the reproduction of
//!   ref \[8\]'s "robust and accurate fine-grain power models with no
//!   on-chip PMU".
//! * [`component`] — the coarse component-based utilisation model for
//!   complex platforms (refs \[18\], \[19\]) used by the dynamic-profiling
//!   workflow.

pub mod analysis;
pub mod component;
pub mod fitting;
pub mod model;

pub use analysis::{
    analyze_program_energy, analyze_program_energy_cached, analyze_program_energy_structural,
    EnergyReport,
};
pub use component::{ComponentModel, ComponentSample};
pub use fitting::{fit_isa_model, FitQuality, FitSample};
pub use model::IsaEnergyModel;
