//! Static worst-case energy consumption (WCEC) analysis.
//!
//! Mirrors the WCET analysis exactly — per-block worst-case picojoule
//! costs fed to `teamplay_wcet::structural_bound` — which is how WCC's
//! EnergyAnalyser plug-in shares flow facts with aiT in the paper's
//! toolchain. With a conservative model the result is a safe upper bound
//! on the energy of any run (the property tests check this against the
//! simulator's ground truth).

use crate::model::IsaEnergyModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use teamplay_isa::{CycleModel, EnergyClass, Function, Insn, Program};
use teamplay_wcet::{structural_bound, WcetError};

/// Scale factor: picojoules are analysed in integer millipicojoules so
/// the shared integer flow solver can be reused without rounding drift.
const MILLI: f64 = 1000.0;

/// Per-program WCEC results (picojoules).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    per_function: BTreeMap<String, f64>,
}

impl EnergyReport {
    /// Worst-case energy for a function in picojoules.
    pub fn wcec_pj(&self, function: &str) -> Option<f64> {
        self.per_function.get(function).copied()
    }

    /// Worst-case energy in nanojoules.
    pub fn wcec_nj(&self, function: &str) -> Option<f64> {
        self.wcec_pj(function).map(|e| e / 1e3)
    }

    /// Worst-case energy in microjoules.
    pub fn wcec_uj(&self, function: &str) -> Option<f64> {
        self.wcec_pj(function).map(|e| e / 1e6)
    }

    /// Iterate all `(function, wcec_pj)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.per_function.iter().map(|(n, e)| (n.as_str(), *e))
    }
}

/// Worst-case energy of one function given callee results, in
/// millipicojoules (internal).
fn function_wcec_mpj(
    f: &Function,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
    callee_mpj: &HashMap<String, u64>,
) -> Result<u64, WcetError> {
    let mut cost = vec![0u64; f.blocks.len()];
    for (i, b) in f.blocks.iter().enumerate() {
        let mut pj = 0.0f64;
        let mut cycles = 0u64;
        let mut extra_mpj = 0u64;
        for insn in &b.insns {
            let class = EnergyClass::of_insn(insn);
            let regs_moved = match insn {
                Insn::Push { regs } | Insn::Pop { regs } => regs.len(),
                _ => 0,
            };
            pj += energy_model.worst_case_insn(class, regs_moved);
            cycles += cycle_model.cycles(insn, false);
            if let Insn::Call { func } = insn {
                let callee =
                    callee_mpj.get(func).ok_or_else(|| WcetError::UnknownCallee {
                        function: f.name.clone(),
                        callee: func.clone(),
                    })?;
                extra_mpj = extra_mpj.saturating_add(*callee);
            }
        }
        let tclass = EnergyClass::of_terminator(&b.terminator);
        pj += energy_model.worst_case_insn(tclass, 0);
        cycles += cycle_model.terminator_worst_case(&b.terminator);
        pj += energy_model.leakage_per_cycle * cycles as f64;
        cost[i] = (pj * MILLI).ceil() as u64 + extra_mpj;
    }
    structural_bound(f, &cost)
}

/// Static WCEC analysis of every function in the program, resolved
/// bottom-up over the (recursion-free) call graph.
///
/// # Errors
/// The same classes of error as the WCET analysis (unbounded loops,
/// recursion, unknown callees).
pub fn analyze_program_energy(
    program: &Program,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
) -> Result<EnergyReport, WcetError> {
    program.validate().map_err(WcetError::InvalidProgram)?;
    if program.has_recursion() {
        let name = program.functions.keys().next().cloned().unwrap_or_default();
        return Err(WcetError::Recursion(name));
    }
    // Bottom-up over the call graph: repeatedly pick functions whose
    // callees are all resolved (the call graph is acyclic).
    let mut resolved: HashMap<String, u64> = HashMap::new();
    let mut pending: Vec<&Function> = program.functions.values().collect();
    while !pending.is_empty() {
        let before = pending.len();
        let mut still_pending = Vec::new();
        for f in pending {
            let callees = f.callees();
            let ready = callees.iter().all(|c| resolved.contains_key(c));
            if ready {
                let w = function_wcec_mpj(f, energy_model, cycle_model, &resolved)?;
                resolved.insert(f.name.clone(), w);
            } else {
                still_pending.push(f);
            }
        }
        pending = still_pending;
        assert!(
            pending.len() < before,
            "call graph resolution must progress (recursion was pre-checked)"
        );
    }
    let per_function =
        resolved.into_iter().map(|(n, mpj)| (n, mpj as f64 / MILLI)).collect();
    Ok(EnergyReport { per_function })
}

/// Quick sanity statistic: the set of energy classes a function actually
/// uses (useful in reports and tests).
pub fn classes_used(f: &Function) -> HashSet<EnergyClass> {
    let mut set = HashSet::new();
    for b in &f.blocks {
        for insn in &b.insns {
            set.insert(EnergyClass::of_insn(insn));
        }
        set.insert(EnergyClass::of_terminator(&b.terminator));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use teamplay_isa::{AluOp, Block, BlockId, Cond, Operand, Reg, Terminator};

    fn alu() -> Insn {
        Insn::Alu { op: AluOp::Add, rd: Reg::R0, rn: Reg::R0, src: Operand::Imm(1) }
    }

    fn straight(name: &str, n: usize) -> Function {
        Function {
            name: name.into(),
            blocks: vec![Block {
                insns: (0..n).map(|_| alu()).collect(),
                terminator: Terminator::Return,
            }],
            loop_bounds: Map::new(),
            frame_size: 0,
        }
    }

    #[test]
    fn straight_line_energy_is_exact_sum() {
        let mut p = Program::new();
        p.add_function(straight("f", 3));
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        let expected = 3.0 * m.worst_case_insn(EnergyClass::Alu, 0)
            + m.worst_case_insn(EnergyClass::Branch, 0)
            + m.leakage_per_cycle * (3.0 + 4.0);
        let got = r.wcec_pj("f").expect("f");
        assert!((got - expected).abs() < 1e-2, "{got} vs {expected}");
    }

    #[test]
    fn loops_scale_energy_with_bound() {
        let make = |bound: u32| {
            let mut loop_bounds = Map::new();
            loop_bounds.insert(BlockId(1), bound);
            let f = Function {
                name: "f".into(),
                blocks: vec![
                    Block { insns: vec![], terminator: Terminator::Branch(BlockId(1)) },
                    Block {
                        insns: vec![Insn::Cmp { rn: Reg::R1, src: Operand::Imm(8) }],
                        terminator: Terminator::CondBranch {
                            cond: Cond::Lt,
                            taken: BlockId(2),
                            fallthrough: BlockId(3),
                        },
                    },
                    Block {
                        insns: vec![alu(), alu()],
                        terminator: Terminator::Branch(BlockId(1)),
                    },
                    Block { insns: vec![], terminator: Terminator::Return },
                ],
                loop_bounds,
                frame_size: 0,
            };
            let mut p = Program::new();
            p.add_function(f);
            p
        };
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let e4 = analyze_program_energy(&make(4), &m, &cm)
            .expect("e4")
            .wcec_pj("f")
            .expect("f");
        let e8 = analyze_program_energy(&make(8), &m, &cm)
            .expect("e8")
            .wcec_pj("f")
            .expect("f");
        assert!(e8 > e4 * 1.5, "energy must grow with the bound: {e4} -> {e8}");
    }

    #[test]
    fn calls_include_callee_energy() {
        let mut p = Program::new();
        p.add_function(straight("leaf", 10));
        let mut caller = straight("caller", 0);
        caller.blocks[0].insns.push(Insn::Call { func: "leaf".into() });
        p.add_function(caller);
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        assert!(r.wcec_pj("caller").expect("caller") > r.wcec_pj("leaf").expect("leaf"));
    }

    #[test]
    fn mul_heavy_code_costs_more_than_alu_heavy() {
        let mul = Insn::Alu { op: AluOp::Mul, rd: Reg::R0, rn: Reg::R0, src: Operand::Reg(Reg::R1) };
        let mut p = Program::new();
        p.add_function(straight("adds", 20));
        let mut f = straight("muls", 0);
        f.blocks[0].insns = (0..20).map(|_| mul.clone()).collect();
        p.add_function(f);
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        assert!(r.wcec_pj("muls").expect("muls") > r.wcec_pj("adds").expect("adds"));
    }

    #[test]
    fn unit_conversions() {
        let mut p = Program::new();
        p.add_function(straight("f", 1));
        let r = analyze_program_energy(
            &p,
            &IsaEnergyModel::pg32_datasheet(),
            &CycleModel::pg32(),
        )
        .expect("analysis");
        let pj = r.wcec_pj("f").expect("f");
        assert!((r.wcec_nj("f").expect("f") - pj / 1e3).abs() < 1e-12);
        assert!((r.wcec_uj("f").expect("f") - pj / 1e6).abs() < 1e-12);
    }

    #[test]
    fn classes_used_reports_actual_mix() {
        let f = straight("f", 2);
        let used = classes_used(&f);
        assert!(used.contains(&EnergyClass::Alu));
        assert!(used.contains(&EnergyClass::Branch));
        assert!(!used.contains(&EnergyClass::Mul));
    }
}
