//! Static worst-case energy consumption (WCEC) analysis.
//!
//! Mirrors the WCET analysis exactly — per-block worst-case picojoule
//! costs fed to the *same IPET flow solver*
//! (`teamplay_wcet::flow_bound_with`) — which is how WCC's
//! EnergyAnalyser plug-in shares flow facts with aiT in the paper's
//! toolchain: one constraint system (Kirchhoff conservation, loop-bound
//! caps, infeasible-path facts), two objective vectors. Terminator
//! energy and leakage ride the CFG *edges*, so a fall-through branch is
//! charged its actual single leakage cycle, and loop bodies are charged
//! `bound` times rather than `bound + 1` — WCEC tightens exactly as WCET
//! does. With a conservative model the result remains a safe upper bound
//! on the energy of any run (the property tests check this against the
//! simulator's ground truth); the pre-IPET engine survives as
//! [`analyze_program_energy_structural`] for tightness measurement.

use crate::model::IsaEnergyModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use teamplay_isa::{CycleModel, EnergyClass, Function, Insn, Program, Terminator};
use teamplay_wcet::{
    flow_bound_with, resolve_bottom_up, structural_bound, AnalysisCache, WcetError,
};

/// Scale factor: picojoules are analysed in integer millipicojoules so
/// the shared integer flow solver can be reused without rounding drift.
const MILLI: f64 = 1000.0;

/// Per-program WCEC results (picojoules).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    per_function: BTreeMap<String, f64>,
}

impl EnergyReport {
    /// Worst-case energy for a function in picojoules.
    pub fn wcec_pj(&self, function: &str) -> Option<f64> {
        self.per_function.get(function).copied()
    }

    /// Worst-case energy in nanojoules.
    pub fn wcec_nj(&self, function: &str) -> Option<f64> {
        self.wcec_pj(function).map(|e| e / 1e3)
    }

    /// Worst-case energy in microjoules.
    pub fn wcec_uj(&self, function: &str) -> Option<f64> {
        self.wcec_pj(function).map(|e| e / 1e6)
    }

    /// Iterate all `(function, wcec_pj)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.per_function.iter().map(|(n, e)| (n.as_str(), *e))
    }
}

/// Per-block instruction-body energy in millipicojoules (terminators
/// excluded, callee WCECs and per-cycle leakage folded in).
fn body_costs_mpj(
    f: &Function,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
    callee_mpj: &BTreeMap<String, u64>,
) -> Result<Vec<u64>, WcetError> {
    let mut cost = vec![0u64; f.blocks.len()];
    for (i, b) in f.blocks.iter().enumerate() {
        let mut pj = 0.0f64;
        let mut cycles = 0u64;
        let mut extra_mpj = 0u64;
        for insn in &b.insns {
            let class = EnergyClass::of_insn(insn);
            let regs_moved = match insn {
                Insn::Push { regs } | Insn::Pop { regs } => regs.len(),
                _ => 0,
            };
            pj += energy_model.worst_case_insn(class, regs_moved);
            cycles += cycle_model.cycles(insn, false);
            if let Insn::Call { func } = insn {
                let callee = callee_mpj
                    .get(func)
                    .ok_or_else(|| WcetError::UnknownCallee {
                        function: f.name.clone(),
                        callee: func.clone(),
                    })?;
                extra_mpj = extra_mpj.saturating_add(*callee);
            }
        }
        pj += energy_model.leakage_per_cycle * cycles as f64;
        cost[i] = (pj * MILLI).ceil() as u64 + extra_mpj;
    }
    Ok(cost)
}

/// One terminator traversal in millipicojoules: its switching class
/// plus the leakage of the cycles that traversal actually takes (the
/// per-edge `taken` flag is the IPET tightening — a fall-through leaks
/// for one cycle, not three).
fn term_cost_mpj(
    t: &Terminator,
    taken: bool,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
) -> u64 {
    let pj = energy_model.worst_case_insn(EnergyClass::of_terminator(t), 0)
        + energy_model.leakage_per_cycle * cycle_model.terminator_cycles(t, taken) as f64;
    (pj * MILLI).ceil() as u64
}

/// Worst-case energy of one function given callee results, in
/// millipicojoules (internal): the shared IPET flow solver over energy
/// costs.
fn function_wcec_mpj(
    f: &Function,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
    callee_mpj: &BTreeMap<String, u64>,
) -> Result<u64, WcetError> {
    let cost = body_costs_mpj(f, energy_model, cycle_model, callee_mpj)?;
    flow_bound_with(f, &cost, &|t, taken| {
        term_cost_mpj(t, taken, energy_model, cycle_model)
    })
}

/// [`function_wcec_mpj`] under the pre-IPET structural engine (worst
/// terminator folded into every block, loops at `(bound + 1) ×` the
/// worst iteration) — the WCEC tightness baseline.
fn function_wcec_mpj_structural(
    f: &Function,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
    callee_mpj: &BTreeMap<String, u64>,
) -> Result<u64, WcetError> {
    let body = body_costs_mpj(f, energy_model, cycle_model, callee_mpj)?;
    let cost: Vec<u64> = body
        .iter()
        .zip(&f.blocks)
        .map(|(c, b)| {
            let worst = term_cost_mpj(&b.terminator, true, energy_model, cycle_model).max(
                term_cost_mpj(&b.terminator, false, energy_model, cycle_model),
            );
            c.saturating_add(worst)
        })
        .collect();
    structural_bound(f, &cost)
}

/// Wrap the shared `teamplay-wcet` bottom-up driver (validation,
/// recursion rejection, callee-first ordering, content-hash cache
/// routing — one policy for both metrics) and scale the resolved
/// millipicojoule bounds back to picojoules.
fn analyze_energy_with(
    program: &Program,
    cache: Option<&AnalysisCache>,
    analyse: impl Fn(&Function, &BTreeMap<String, u64>) -> Result<u64, WcetError>,
) -> Result<EnergyReport, WcetError> {
    let per_function = resolve_bottom_up(program, cache, analyse)?
        .into_iter()
        .map(|(n, mpj)| (n, mpj as f64 / MILLI))
        .collect();
    Ok(EnergyReport { per_function })
}

/// Static WCEC analysis of every function in the program (IPET engine),
/// resolved bottom-up over the (recursion-free) call graph.
///
/// # Errors
/// The same classes of error as the WCET analysis (unbounded loops,
/// recursion, unknown callees).
pub fn analyze_program_energy(
    program: &Program,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
) -> Result<EnergyReport, WcetError> {
    analyze_energy_with(program, None, |f, callees| {
        function_wcec_mpj(f, energy_model, cycle_model, callees)
    })
}

/// [`analyze_program_energy`] with per-function memoization: unchanged
/// functions (same content hash, same callee bounds) are answered from
/// `cache`. Use one cache per (energy-model, cycle-model) pair — the
/// models are not part of the key.
///
/// # Errors
/// See [`analyze_program_energy`].
pub fn analyze_program_energy_cached(
    program: &Program,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
    cache: &AnalysisCache,
) -> Result<EnergyReport, WcetError> {
    analyze_energy_with(program, Some(cache), |f, callees| {
        function_wcec_mpj(f, energy_model, cycle_model, callees)
    })
}

/// Whole-program WCEC under the structural baseline engine — the
/// tightness denominator next to [`analyze_program_energy`].
///
/// # Errors
/// See [`analyze_program_energy`].
pub fn analyze_program_energy_structural(
    program: &Program,
    energy_model: &IsaEnergyModel,
    cycle_model: &CycleModel,
) -> Result<EnergyReport, WcetError> {
    analyze_energy_with(program, None, |f, callees| {
        function_wcec_mpj_structural(f, energy_model, cycle_model, callees)
    })
}

/// Quick sanity statistic: the set of energy classes a function actually
/// uses (useful in reports and tests).
pub fn classes_used(f: &Function) -> HashSet<EnergyClass> {
    let mut set = HashSet::new();
    for b in &f.blocks {
        for insn in &b.insns {
            set.insert(EnergyClass::of_insn(insn));
        }
        set.insert(EnergyClass::of_terminator(&b.terminator));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use teamplay_isa::{AluOp, Block, BlockId, Cond, Operand, Reg, Terminator};

    fn alu() -> Insn {
        Insn::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Imm(1),
        }
    }

    fn straight(name: &str, n: usize) -> Function {
        Function {
            name: name.into(),
            blocks: vec![Block {
                insns: (0..n).map(|_| alu()).collect(),
                terminator: Terminator::Return,
            }],
            loop_bounds: Map::new(),
            frame_size: 0,
        }
    }

    #[test]
    fn straight_line_energy_is_exact_sum() {
        let mut p = Program::new();
        p.add_function(straight("f", 3));
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        let expected = 3.0 * m.worst_case_insn(EnergyClass::Alu, 0)
            + m.worst_case_insn(EnergyClass::Branch, 0)
            + m.leakage_per_cycle * (3.0 + 4.0);
        let got = r.wcec_pj("f").expect("f");
        assert!((got - expected).abs() < 1e-2, "{got} vs {expected}");
    }

    #[test]
    fn loops_scale_energy_with_bound() {
        let make = |bound: u32| {
            let mut loop_bounds = Map::new();
            loop_bounds.insert(BlockId(1), bound);
            let f = Function {
                name: "f".into(),
                blocks: vec![
                    Block {
                        insns: vec![],
                        terminator: Terminator::Branch(BlockId(1)),
                    },
                    Block {
                        insns: vec![Insn::Cmp {
                            rn: Reg::R1,
                            src: Operand::Imm(8),
                        }],
                        terminator: Terminator::CondBranch {
                            cond: Cond::Lt,
                            taken: BlockId(2),
                            fallthrough: BlockId(3),
                        },
                    },
                    Block {
                        insns: vec![alu(), alu()],
                        terminator: Terminator::Branch(BlockId(1)),
                    },
                    Block {
                        insns: vec![],
                        terminator: Terminator::Return,
                    },
                ],
                loop_bounds,
                frame_size: 0,
            };
            let mut p = Program::new();
            p.add_function(f);
            p
        };
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let e4 = analyze_program_energy(&make(4), &m, &cm)
            .expect("e4")
            .wcec_pj("f")
            .expect("f");
        let e8 = analyze_program_energy(&make(8), &m, &cm)
            .expect("e8")
            .wcec_pj("f")
            .expect("f");
        assert!(
            e8 > e4 * 1.5,
            "energy must grow with the bound: {e4} -> {e8}"
        );
    }

    #[test]
    fn calls_include_callee_energy() {
        let mut p = Program::new();
        p.add_function(straight("leaf", 10));
        let mut caller = straight("caller", 0);
        caller.blocks[0].insns.push(Insn::Call {
            func: "leaf".into(),
        });
        p.add_function(caller);
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        assert!(r.wcec_pj("caller").expect("caller") > r.wcec_pj("leaf").expect("leaf"));
    }

    #[test]
    fn mul_heavy_code_costs_more_than_alu_heavy() {
        let mul = Insn::Alu {
            op: AluOp::Mul,
            rd: Reg::R0,
            rn: Reg::R0,
            src: Operand::Reg(Reg::R1),
        };
        let mut p = Program::new();
        p.add_function(straight("adds", 20));
        let mut f = straight("muls", 0);
        f.blocks[0].insns = (0..20).map(|_| mul.clone()).collect();
        p.add_function(f);
        let m = IsaEnergyModel::pg32_datasheet();
        let cm = CycleModel::pg32();
        let r = analyze_program_energy(&p, &m, &cm).expect("analysis");
        assert!(r.wcec_pj("muls").expect("muls") > r.wcec_pj("adds").expect("adds"));
    }

    #[test]
    fn unit_conversions() {
        let mut p = Program::new();
        p.add_function(straight("f", 1));
        let r = analyze_program_energy(&p, &IsaEnergyModel::pg32_datasheet(), &CycleModel::pg32())
            .expect("analysis");
        let pj = r.wcec_pj("f").expect("f");
        assert!((r.wcec_nj("f").expect("f") - pj / 1e3).abs() < 1e-12);
        assert!((r.wcec_uj("f").expect("f") - pj / 1e6).abs() < 1e-12);
    }

    #[test]
    fn classes_used_reports_actual_mix() {
        let f = straight("f", 2);
        let used = classes_used(&f);
        assert!(used.contains(&EnergyClass::Alu));
        assert!(used.contains(&EnergyClass::Branch));
        assert!(!used.contains(&EnergyClass::Mul));
    }
}
