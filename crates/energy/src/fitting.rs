//! Energy-model fitting from measurements.
//!
//! Paper ref \[8\] ("Robust and accurate fine-grain power models for
//! embedded systems with no on-chip PMU") builds linear power models by
//! regressing measured energy against software-visible event counts. The
//! reproduction does the same: the simulator reports per-class retirement
//! counts and (noisy) measured energy per run; [`fit_isa_model`] solves
//! the ordinary-least-squares problem
//!
//! ```text
//!   E ≈ Σ_class β_class · count_class + β_leak · cycles
//! ```
//!
//! with a hand-rolled normal-equations solver (the matrix is only
//! 10 × 10). [`FitQuality`] reports MAPE and maximum error on a held-out
//! set, which the ablation bench sweeps against trace count.

use crate::model::IsaEnergyModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use teamplay_isa::ENERGY_CLASS_COUNT;

/// One measured run: event counts plus observed energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitSample {
    /// Instructions retired per energy class.
    pub class_counts: [u64; ENERGY_CLASS_COUNT],
    /// Total cycles of the run.
    pub cycles: u64,
    /// Measured energy (pJ), noise included.
    pub energy_pj: f64,
}

impl FitSample {
    /// Apply multiplicative Gaussian measurement noise (σ relative), as a
    /// power rig would introduce. Deterministic given the seed.
    pub fn with_noise(mut self, sigma: f64, rng: &mut StdRng) -> FitSample {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.energy_pj *= 1.0 + sigma * z.clamp(-3.0, 3.0);
        self
    }
}

/// Fit failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// Fewer samples than coefficients.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The normal-equations matrix was singular (degenerate workload mix —
    /// e.g. every run had identical class ratios).
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { got, need } => {
                write!(f, "need at least {need} samples to fit, got {got}")
            }
            FitError::Singular => {
                write!(
                    f,
                    "degenerate sample set: workloads must vary their instruction mix"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Accuracy of a fitted model on an evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitQuality {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Worst-case absolute percentage error.
    pub max_ape: f64,
}

const N_COEF: usize = ENERGY_CLASS_COUNT + 1; // classes + leakage·cycles

/// Solve `A x = b` for a small dense system by Gaussian elimination with
/// partial pivoting. Returns `None` when singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col].clone();
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot_row[col];
            for (entry, pivot) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *entry -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

fn design_row(s: &FitSample) -> [f64; N_COEF] {
    let mut row = [0.0; N_COEF];
    for (i, c) in s.class_counts.iter().enumerate() {
        row[i] = *c as f64;
    }
    row[ENERGY_CLASS_COUNT] = s.cycles as f64;
    row
}

/// Fit an ISA energy model from measured runs via OLS.
///
/// Negative fitted coefficients are clamped to zero (they arise only from
/// noise on rarely exercised classes) — the shipped ref \[8\] methodology
/// applies the same non-negativity post-processing.
///
/// # Errors
/// [`FitError::TooFewSamples`] below `classes + 1` samples;
/// [`FitError::Singular`] for degenerate mixes.
pub fn fit_isa_model(samples: &[FitSample]) -> Result<IsaEnergyModel, FitError> {
    if samples.len() < N_COEF {
        return Err(FitError::TooFewSamples {
            got: samples.len(),
            need: N_COEF,
        });
    }
    // Normal equations: (XᵀX) β = Xᵀy.
    let mut xtx = vec![vec![0.0f64; N_COEF]; N_COEF];
    let mut xty = vec![0.0f64; N_COEF];
    for s in samples {
        let row = design_row(s);
        for i in 0..N_COEF {
            for j in 0..N_COEF {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * s.energy_pj;
        }
    }
    // Ridge dust on the diagonal stabilises near-collinear mixes without
    // visibly biasing well-conditioned fits.
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-6;
    }
    let beta = solve(xtx, xty).ok_or(FitError::Singular)?;
    let mut base = [0.0; ENERGY_CLASS_COUNT];
    for (i, b) in beta.iter().take(ENERGY_CLASS_COUNT).enumerate() {
        base[i] = b.max(0.0);
    }
    let leakage = beta[ENERGY_CLASS_COUNT].max(0.0);
    Ok(IsaEnergyModel::from_coefficients(base, leakage))
}

/// Evaluate a model against samples.
pub fn evaluate(model: &IsaEnergyModel, samples: &[FitSample]) -> FitQuality {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0usize;
    for s in samples {
        if s.energy_pj <= 0.0 {
            continue;
        }
        let pred = model.predict_pj(&s.class_counts, s.cycles);
        let ape = ((pred - s.energy_pj) / s.energy_pj).abs();
        sum += ape;
        max = max.max(ape);
        n += 1;
    }
    FitQuality {
        mape: if n == 0 { 0.0 } else { sum / n as f64 },
        max_ape: max,
    }
}

/// Deterministic RNG for noise injection in experiments.
pub fn noise_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_isa::EnergyClass;

    /// Generate synthetic samples from a known linear truth.
    fn synth_samples(n: usize, seed: u64, noise: f64) -> (Vec<FitSample>, [f64; N_COEF]) {
        let truth: [f64; N_COEF] = [
            800.0, 1900.0, 2700.0, 1600.0, 1500.0, 1100.0, 1300.0, 2900.0, 400.0, 95.0,
        ];
        let mut rng = noise_rng(seed);
        let samples = (0..n)
            .map(|_| {
                let mut counts = [0u64; ENERGY_CLASS_COUNT];
                let mut cycles = 0u64;
                for c in counts.iter_mut() {
                    *c = rng.gen_range(0..500);
                    cycles += *c * rng.gen_range(1..3);
                }
                let mut energy = truth[N_COEF - 1] * cycles as f64;
                for (i, c) in counts.iter().enumerate() {
                    energy += truth[i] * *c as f64;
                }
                let s = FitSample {
                    class_counts: counts,
                    cycles,
                    energy_pj: energy,
                };
                if noise > 0.0 {
                    s.with_noise(noise, &mut rng)
                } else {
                    s
                }
            })
            .collect();
        (samples, truth)
    }

    #[test]
    fn exact_recovery_without_noise() {
        let (samples, truth) = synth_samples(200, 1, 0.0);
        let model = fit_isa_model(&samples).expect("fit");
        for (i, class) in EnergyClass::ALL.iter().enumerate() {
            let rel = (model.base(*class) - truth[i]).abs() / truth[i];
            assert!(
                rel < 1e-6,
                "class {class}: {} vs {}",
                model.base(*class),
                truth[i]
            );
        }
        assert!((model.leakage_per_cycle - truth[N_COEF - 1]).abs() < 1e-3);
    }

    #[test]
    fn noisy_recovery_is_close_and_quality_reported() {
        let (samples, _) = synth_samples(400, 2, 0.02);
        let model = fit_isa_model(&samples).expect("fit");
        let (eval, _) = synth_samples(100, 3, 0.0);
        let q = evaluate(&model, &eval);
        assert!(q.mape < 0.02, "MAPE too high: {}", q.mape);
    }

    #[test]
    fn more_samples_fit_better() {
        let (few, _) = synth_samples(12, 4, 0.05);
        let (many, _) = synth_samples(600, 4, 0.05);
        let (eval, _) = synth_samples(200, 5, 0.0);
        let m_few = fit_isa_model(&few).expect("fit few");
        let m_many = fit_isa_model(&many).expect("fit many");
        let q_few = evaluate(&m_few, &eval);
        let q_many = evaluate(&m_many, &eval);
        assert!(
            q_many.mape <= q_few.mape,
            "more data should not fit worse: {} vs {}",
            q_many.mape,
            q_few.mape
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let (samples, _) = synth_samples(5, 6, 0.0);
        assert!(matches!(
            fit_isa_model(&samples),
            Err(FitError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn degenerate_mix_rejected() {
        // Every sample has the same single-class mix → columns collinear.
        let samples: Vec<FitSample> = (0..40)
            .map(|i| {
                let mut counts = [0u64; ENERGY_CLASS_COUNT];
                counts[0] = 10 * (i + 1) as u64;
                FitSample {
                    class_counts: counts,
                    cycles: 10 * (i + 1) as u64,
                    energy_pj: 1000.0 * (i + 1) as f64,
                }
            })
            .collect();
        // Columns 0 and `cycles` are perfectly collinear; the remaining
        // class columns are all zero → singular despite ridge dust.
        let result = fit_isa_model(&samples);
        match result {
            Err(FitError::Singular) => {}
            Ok(model) => {
                // With ridge regularisation the solver may return a model;
                // it must at least reproduce the (degenerate) data.
                let q = evaluate(&model, &samples);
                assert!(
                    q.mape < 0.05,
                    "degenerate fit must still explain its own data"
                );
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn noise_is_deterministic_given_seed() {
        let (s1, _) = synth_samples(10, 9, 0.05);
        let (s2, _) = synth_samples(10, 9, 0.05);
        assert_eq!(s1, s2);
    }
}
