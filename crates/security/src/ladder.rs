//! Ladderisation: taint-driven if-conversion to constant-time selects.
//!
//! Paper refs \[11\] ("A Hole in the Ladder: Interleaved Variables in
//! Iterative Conditional Branching") and \[12\] ("Semi-automatic
//! Ladderisation") harden code by replacing secret-dependent conditional
//! branching with straight-line computation of *both* arms, combined with
//! a constant-time select — the structure of the Montgomery ladder.
//!
//! The optimiser here works on Mini-C IR:
//!
//! 1. **taint analysis** — temps derived from `secret` parameters
//!    (transitively, through arithmetic, copies, selects and loads with
//!    tainted indices) are tainted, and so is memory written under
//!    secret control: a store of a tainted value (or at a tainted index)
//!    taints its base array, and later loads from — or by-ref calls
//!    with — that array carry the taint onward;
//! 2. **diamond matching** — a branch on a tainted condition whose arms
//!    are single, pure (arithmetic-only) blocks joining at a common
//!    continuation;
//! 3. **if-conversion** — both arms are renamed apart, executed
//!    unconditionally, and every written variable is merged with
//!    [`IrOp::Select`] (compiled to the constant-time `csel`).
//!
//! Secret-guarded *loops* and arms with memory writes or calls cannot be
//! converted; they are counted as residual risk in the [`LadderReport`]
//! so the contract layer can refuse to certify the task.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use teamplay_minic::ir::{
    CallArg, IrBlockId, IrFunction, IrModule, IrOp, IrTerm, MemBase, Operand, Temp,
};

/// Outcome of ladderising one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LadderReport {
    /// Secret-guarded diamonds successfully if-converted.
    pub converted: usize,
    /// Secret-tainted branches that could not be converted (loops, arms
    /// with side effects) — residual side-channel risk.
    pub residual: usize,
}

impl LadderReport {
    /// `true` when no secret-dependent branching remains.
    pub fn fully_hardened(&self) -> bool {
        self.residual == 0
    }
}

/// Temps transitively derived from the given secret parameters.
pub fn tainted_temps(f: &IrFunction, secret_params: &HashSet<String>) -> HashSet<Temp> {
    tainted_state(f, secret_params).0
}

/// Flow-insensitive taint fixpoint over temps *and* memory bases.
///
/// A [`MemBase`] becomes tainted when a store writes a tainted value (or
/// uses a tainted index — the written slot's identity then depends on
/// the secret) through it; any load from a tainted base, and any
/// `CallArg::ArrayRef` passing one, then carries the taint onward. This
/// is what makes a global array *written under secret control earlier in
/// the function* taint a later by-ref call — the old
/// `CallArg::ArrayRef(_) => false` rule silently dropped exactly that
/// flow. The analysis stays intra-procedural: callees' own global reads
/// and writes are not modelled, which is why the workflow ladderises and
/// then *measures* (`assess_leakage`) rather than trusting taint alone.
fn tainted_state(
    f: &IrFunction,
    secret_params: &HashSet<String>,
) -> (HashSet<Temp>, HashSet<MemBase>) {
    let mut tainted: HashSet<Temp> = f
        .params
        .iter()
        .filter(|p| secret_params.contains(&p.name))
        .map(|p| p.temp)
        .collect();
    let mut tainted_bases: HashSet<MemBase> = HashSet::new();
    let is_tainted = |t: &HashSet<Temp>, o: &Operand| match o {
        Operand::Temp(x) => t.contains(x),
        Operand::Const(_) => false,
    };
    loop {
        let mut changed = false;
        for b in &f.blocks {
            for op in &b.ops {
                // `Param` bases are tainted through the base-address
                // temp; `Global`/`Local` bases through the store rule.
                let base_is_tainted = |t: &HashSet<Temp>, bases: &HashSet<MemBase>, base| {
                    matches!(base, &MemBase::Param(p) if t.contains(&p)) || bases.contains(base)
                };
                let (dst, sources_tainted): (Option<Temp>, bool) = match op {
                    IrOp::Bin { dst, a, b, .. } => (
                        Some(*dst),
                        is_tainted(&tainted, a) || is_tainted(&tainted, b),
                    ),
                    IrOp::Un { dst, a, .. } => (Some(*dst), is_tainted(&tainted, a)),
                    IrOp::Copy { dst, src } => (Some(*dst), is_tainted(&tainted, src)),
                    IrOp::Select { dst, cond, t, f } => (
                        Some(*dst),
                        is_tainted(&tainted, cond)
                            || is_tainted(&tainted, t)
                            || is_tainted(&tainted, f),
                    ),
                    IrOp::Load { dst, base, index } => (
                        Some(*dst),
                        is_tainted(&tainted, index)
                            || base_is_tainted(&tainted, &tainted_bases, base),
                    ),
                    // Calls are conservative: a call with any tainted
                    // argument — by value, or by ref to tainted memory —
                    // taints its result.
                    IrOp::Call { dst, args, .. } => {
                        let any = args.iter().any(|a| match a {
                            CallArg::Value(v) => is_tainted(&tainted, v),
                            CallArg::ArrayRef(base) => {
                                base_is_tainted(&tainted, &tainted_bases, base)
                            }
                        });
                        (*dst, any)
                    }
                    IrOp::Store { base, index, value } => {
                        if (is_tainted(&tainted, value) || is_tainted(&tainted, index))
                            && tainted_bases.insert(base.clone())
                        {
                            changed = true;
                        }
                        (None, false)
                    }
                    IrOp::In { .. } | IrOp::Out { .. } => (None, false),
                };
                if sources_tainted {
                    if let Some(d) = dst {
                        if tainted.insert(d) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return (tainted, tainted_bases);
        }
    }
}

/// Is this op safe to execute unconditionally (pure, no memory writes, no
/// I/O, cannot trap)?
fn is_speculatable(op: &IrOp) -> bool {
    matches!(
        op,
        IrOp::Bin { .. } | IrOp::Un { .. } | IrOp::Copy { .. } | IrOp::Select { .. }
    )
}

/// Rename the writes of a block's ops apart, so the arm can run
/// unconditionally without clobbering the other arm's inputs. Returns the
/// rewritten ops and the final name of every variable the arm wrote.
fn rename_arm(f: &mut IrFunction, ops: &[IrOp]) -> (Vec<IrOp>, HashMap<Temp, Temp>) {
    let mut subst: HashMap<Temp, Temp> = HashMap::new();
    let rewrite = |subst: &HashMap<Temp, Temp>, o: Operand| -> Operand {
        match o {
            Operand::Temp(t) => Operand::Temp(subst.get(&t).copied().unwrap_or(t)),
            c => c,
        }
    };
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let new_op = match op {
            IrOp::Bin { op, dst, a, b } => {
                let a = rewrite(&subst, *a);
                let b = rewrite(&subst, *b);
                let nd = f.fresh_temp();
                subst.insert(*dst, nd);
                IrOp::Bin {
                    op: *op,
                    dst: nd,
                    a,
                    b,
                }
            }
            IrOp::Un { op, dst, a } => {
                let a = rewrite(&subst, *a);
                let nd = f.fresh_temp();
                subst.insert(*dst, nd);
                IrOp::Un {
                    op: *op,
                    dst: nd,
                    a,
                }
            }
            IrOp::Copy { dst, src } => {
                let src = rewrite(&subst, *src);
                let nd = f.fresh_temp();
                subst.insert(*dst, nd);
                IrOp::Copy { dst: nd, src }
            }
            IrOp::Select {
                dst,
                cond,
                t,
                f: fv,
            } => {
                let cond = rewrite(&subst, *cond);
                let t = rewrite(&subst, *t);
                let fv = rewrite(&subst, *fv);
                let nd = f.fresh_temp();
                subst.insert(*dst, nd);
                IrOp::Select {
                    dst: nd,
                    cond,
                    t,
                    f: fv,
                }
            }
            other => unreachable!("non-speculatable op in arm: {other:?}"),
        };
        out.push(new_op);
    }
    (out, subst)
}

/// Ladderise one function: if-convert every secret-guarded diamond.
///
/// `secret_params` names the function's secret parameters. Functions
/// without secrets are untouched. Conversion is iterated to a fixpoint;
/// unconvertible tainted branches are reported as residual.
pub fn ladderise(f: &mut IrFunction, secret_params: &HashSet<String>) -> LadderReport {
    let mut report = LadderReport::default();
    if secret_params.is_empty() {
        return report;
    }
    // Iterate: each conversion can expose new opportunities.
    for _round in 0..64 {
        let tainted = tainted_temps(f, secret_params);
        // Predecessor counts (conversion requires single-entry arms).
        let mut pred_count: HashMap<IrBlockId, usize> = HashMap::new();
        for b in &f.blocks {
            for s in b.term.successors() {
                *pred_count.entry(s).or_insert(0) += 1;
            }
        }
        let mut candidate: Option<usize> = None;
        for (bi, b) in f.blocks.iter().enumerate() {
            let IrTerm::Branch {
                cond,
                taken,
                fallthrough,
            } = &b.term
            else {
                continue;
            };
            let cond_tainted = match cond {
                Operand::Temp(t) => tainted.contains(t),
                Operand::Const(_) => false,
            };
            if !cond_tainted {
                continue;
            }
            let tb = &f.blocks[taken.index()];
            let eb = &f.blocks[fallthrough.index()];
            let ok = taken != fallthrough
                && taken.index() != bi
                && fallthrough.index() != bi
                && matches!((&tb.term, &eb.term), (IrTerm::Jump(a), IrTerm::Jump(b)) if a == b)
                && tb.ops.iter().all(is_speculatable)
                && eb.ops.iter().all(is_speculatable)
                && pred_count.get(taken).copied().unwrap_or(0) == 1
                && pred_count.get(fallthrough).copied().unwrap_or(0) == 1;
            // A jump target equal to either arm would re-enter them.
            let join = match (&tb.term, &eb.term) {
                (IrTerm::Jump(a), _) => *a,
                _ => continue,
            };
            if ok && join != *taken && join != *fallthrough {
                candidate = Some(bi);
                break;
            }
        }
        let Some(bi) = candidate else { break };

        // Destructure the diamond.
        let IrTerm::Branch {
            cond,
            taken,
            fallthrough,
        } = f.blocks[bi].term.clone()
        else {
            unreachable!("candidate was a branch");
        };
        let IrTerm::Jump(join) = f.blocks[taken.index()].term.clone() else {
            unreachable!("arm terminates in a jump");
        };
        let t_ops = f.blocks[taken.index()].ops.clone();
        let e_ops = f.blocks[fallthrough.index()].ops.clone();

        let (t_renamed, t_subst) = rename_arm(f, &t_ops);
        let (e_renamed, e_subst) = rename_arm(f, &e_ops);

        let block = &mut f.blocks[bi];
        block.ops.extend(t_renamed);
        // Arms are *interleaved-safe* after renaming; appending is fine.
        let mut merged: Vec<Temp> = t_subst.keys().chain(e_subst.keys()).copied().collect();
        merged.sort();
        merged.dedup();
        block.ops.extend(e_renamed);
        for w in merged {
            let tv = t_subst.get(&w).copied().unwrap_or(w);
            let ev = e_subst.get(&w).copied().unwrap_or(w);
            block.ops.push(IrOp::Select {
                dst: w,
                cond,
                t: Operand::Temp(tv),
                f: Operand::Temp(ev),
            });
        }
        block.term = IrTerm::Jump(join);
        // Empty the converted arms (now unreachable).
        f.blocks[taken.index()].ops.clear();
        f.blocks[fallthrough.index()].ops.clear();
        report.converted += 1;
    }

    // Residual: tainted branches that remain.
    let tainted = tainted_temps(f, secret_params);
    for b in &f.blocks {
        if let IrTerm::Branch {
            cond: Operand::Temp(t),
            ..
        } = &b.term
        {
            if tainted.contains(t) {
                report.residual += 1;
            }
        }
    }
    report
}

/// Ladderise every function of a module. `secrets` maps function name →
/// secret parameter names (as extracted from `secret(param)` CSL
/// annotations).
pub fn ladderise_module(
    module: &mut IrModule,
    secrets: &HashMap<String, HashSet<String>>,
) -> HashMap<String, LadderReport> {
    let mut reports = HashMap::new();
    for f in &mut module.functions {
        if let Some(params) = secrets.get(&f.name) {
            let r = ladderise(f, params);
            reports.insert(f.name.clone(), r);
        }
    }
    reports
}

/// Extract `secret(name)` annotations from an IR function's annotation
/// strings.
pub fn secret_params_of(f: &IrFunction) -> HashSet<String> {
    let mut out = HashSet::new();
    for ann in &f.annotations {
        for part in ann.split_whitespace() {
            if let Some(rest) = part.strip_prefix("secret(") {
                if let Some(name) = rest.strip_suffix(')') {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_minic::interp::RecordingPorts;
    use teamplay_minic::ir::exec_module;

    fn secrets(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    const GUARDED: &str = "int f(int k, int x) {
        int r = 0;
        if (k > 0) { r = x * 3 + 1; } else { r = x - 7; }
        return r;
    }";

    #[test]
    fn taint_propagates_through_arithmetic() {
        let m = compile_to_ir(GUARDED).expect("front-end");
        let f = m.function("f").expect("f");
        let t = tainted_temps(f, &secrets(&["k"]));
        // The parameter temp itself plus the comparison result at least.
        assert!(t.len() >= 2, "taint set too small: {t:?}");
        let t_none = tainted_temps(f, &secrets(&[]));
        assert!(t_none.is_empty());
    }

    #[test]
    fn converts_secret_diamond_and_preserves_semantics() {
        let mut m = compile_to_ir(GUARDED).expect("front-end");
        let reference = compile_to_ir(GUARDED).expect("front-end");
        let f = m.function_mut("f").expect("f");
        let report = ladderise(f, &secrets(&["k"]));
        assert_eq!(report.converted, 1, "diamond should convert");
        assert!(report.fully_hardened());
        m.validate().expect("valid after ladderising");
        for k in [-5, 0, 1, 42] {
            for x in [-3, 0, 9] {
                let mut p1 = RecordingPorts::new();
                let mut p2 = RecordingPorts::new();
                let want =
                    exec_module(&reference, "f", &[k, x], &mut p1, 100_000).expect("reference");
                let got = exec_module(&m, "f", &[k, x], &mut p2, 100_000).expect("hardened");
                assert_eq!(got, want, "diverged at k={k}, x={x}");
            }
        }
    }

    #[test]
    fn public_branches_are_untouched() {
        let mut m = compile_to_ir(GUARDED).expect("front-end");
        let f = m.function_mut("f").expect("f");
        let report = ladderise(f, &secrets(&["x"]));
        // The guard is on k, which is public here.
        assert_eq!(report.converted, 0);
        assert_eq!(report.residual, 0);
    }

    #[test]
    fn secret_loop_is_residual() {
        let src = "int f(int k) {
            int s = 0;
            /*@ loop bound(64) @*/
            while (k > 0) { k = k - 1; s = s + 1; }
            return s;
        }";
        let mut m = compile_to_ir(src).expect("front-end");
        let f = m.function_mut("f").expect("f");
        let report = ladderise(f, &secrets(&["k"]));
        assert_eq!(report.converted, 0);
        assert!(report.residual >= 1, "loop guard must be reported");
        assert!(!report.fully_hardened());
    }

    #[test]
    fn arm_with_store_is_residual() {
        let src = "int buf[4];
        int f(int k, int x) {
            if (k > 0) { buf[0] = x; } else { buf[1] = x; }
            return buf[0] + buf[1];
        }";
        let mut m = compile_to_ir(src).expect("front-end");
        let f = m.function_mut("f").expect("f");
        let report = ladderise(f, &secrets(&["k"]));
        assert_eq!(report.converted, 0, "stores must not be speculated");
        assert!(report.residual >= 1);
    }

    #[test]
    fn nested_secret_diamonds_convert() {
        let src = "int f(int k, int x) {
            int r = 0;
            if (k > 3) {
                r = x + 1;
            } else {
                r = x + 2;
            }
            int q = 0;
            if (k & 1) { q = r * 2; } else { q = r * 5; }
            return q;
        }";
        let mut m = compile_to_ir(src).expect("front-end");
        let reference = compile_to_ir(src).expect("front-end");
        let f = m.function_mut("f").expect("f");
        let report = ladderise(f, &secrets(&["k"]));
        assert_eq!(report.converted, 2);
        assert!(report.fully_hardened());
        for k in [0, 1, 4, 7] {
            let mut p1 = RecordingPorts::new();
            let mut p2 = RecordingPorts::new();
            let want = exec_module(&reference, "f", &[k, 10], &mut p1, 100_000).expect("ref");
            let got = exec_module(&m, "f", &[k, 10], &mut p2, 100_000).expect("hardened");
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn secret_store_taints_the_array_through_loads_and_refs() {
        // A global array written under secret control earlier in the
        // function must taint everything read back from it — including a
        // by-ref call argument. The old `CallArg::ArrayRef(_) => false`
        // rule dropped this flow, so the branch on `probe` below went
        // unreported.
        let src = "int keybuf[2];
        int mix(int buf[], int x) { return buf[0] + x; }
        int f(int k, int x) {
            keybuf[0] = k * 3;
            int probe = mix(keybuf, x);
            int r = 0;
            if (probe > 0) { r = x + 1; } else { r = x - 1; }
            return r;
        }";
        let m = compile_to_ir(src).expect("front-end");
        let f = m.function("f").expect("f");
        let t = tainted_temps(f, &secrets(&["k"]));
        // The call result (and hence the branch condition) is tainted.
        let mut m2 = compile_to_ir(src).expect("front-end");
        let report = ladderise(m2.function_mut("f").expect("f"), &secrets(&["k"]));
        assert_eq!(
            report.converted + report.residual,
            1,
            "the probe branch must be accounted for (tainted temps: {t:?})"
        );
        // Control: with the secret store replaced by a constant store the
        // very same branch is public — the taint above really flowed
        // store → array → by-ref call, not from some blanket rule.
        let control = src.replace("keybuf[0] = k * 3;", "keybuf[0] = 3;");
        let mut m3 = compile_to_ir(&control).expect("front-end");
        let report = ladderise(m3.function_mut("f").expect("f"), &secrets(&["k"]));
        assert_eq!((report.converted, report.residual), (0, 0));
    }

    #[test]
    fn secret_indexed_store_taints_the_array() {
        // Writing to a secret-selected slot makes the array's contents
        // secret-dependent even when the stored value is public.
        let src = "int table[4];
        int f(int k, int x) {
            table[k & 3] = x;
            return table[0];
        }";
        let m = compile_to_ir(src).expect("front-end");
        let f = m.function("f").expect("f");
        let t = tainted_temps(f, &secrets(&["k"]));
        let untainted = tainted_temps(f, &secrets(&[]));
        assert!(
            t.len() > untainted.len() + 1,
            "load from table must be tainted: {t:?}"
        );
    }

    #[test]
    fn secret_annotation_extraction() {
        let src = "/*@ task crypt secret(key) secret(nonce) @*/
                   int f(int key, int nonce, int x) { return key ^ nonce ^ x; }";
        let m = compile_to_ir(src).expect("front-end");
        let f = m.function("f").expect("f");
        let s = secret_params_of(f);
        assert!(s.contains("key") && s.contains("nonce"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn module_level_ladderising() {
        let src = "/*@ secret(k) @*/
                   int sel(int k, int a, int b) { int r = 0; if (k) { r = a; } else { r = b; } return r; }
                   int pub_fn(int x) { int r = 0; if (x) { r = 1; } return r; }";
        let mut m = compile_to_ir(src).expect("front-end");
        let mut secrets_map = HashMap::new();
        for f in &m.functions {
            secrets_map.insert(f.name.clone(), secret_params_of(f));
        }
        let reports = ladderise_module(&mut m, &secrets_map);
        assert_eq!(reports["sel"].converted, 1);
        assert_eq!(reports["pub_fn"].converted, 0);
    }
}
