//! # teamplay-security — side-channel analysis and hardening
//!
//! The reproduction of TeamPlay's SecurityAnalyser and SecurityOptimiser
//! (paper refs \[10\]–\[12\]):
//!
//! * [`metrics`] — the **Indiscernibility Methodology** (ref \[10\]):
//!   objective, attack-agnostic metrics that quantify how distinguishable
//!   two secret classes are from observable time/energy traces, with no
//!   prior knowledge of the leakage model (Welch's t — the TVLA statistic
//!   — Kolmogorov–Smirnov distance, and histogram-overlap
//!   indiscernibility). Every statistic is total: degenerate sample sets
//!   (zero variance, identical traces) saturate at [`WELCH_T_CAP`]
//!   instead of producing NaN/∞, so scores can feed straight into
//!   numeric optimisers.
//! * [`analyser`] — drives the PG32 simulator as the "measurement rig":
//!   runs a compiled task under two fixed secrets over many random public
//!   inputs and scores the timing and power channels.
//! * [`ladder`] — the SecurityOptimiser: taint-driven **ladderisation**
//!   (refs \[11\], \[12\]) that if-converts secret-guarded branches into
//!   straight-line code over constant-time selects, making the
//!   instruction stream secret-independent.
//!
//! # Security as a search objective
//!
//! Since the 3-D search landed, these pieces are not a standalone study
//! but the **third objective family of the compiler's Pareto search**
//! (`teamplay_compiler::secure`): a ladder-rung gene picks whether a
//! candidate compiles from the plain or the [`ladderise_module`]-hardened
//! IR, [`assess_leakage`] scores each compiled variant's worse channel,
//! and the resulting time/energy/leakage fronts flow into the
//! coordination layer, where per-variant security levels are matched
//! against each task's CSL `security_floor(n)` clause before placement.
//! The finiteness guarantee above is what makes that wiring safe: the
//! archive's crowding-distance arithmetic rejects non-finite objectives
//! structurally, and capped |t| scores never trip it.
//!
//! Per Section IV of the paper, security was validated on *synthetic
//! benchmarks on the Cortex-M0*; bench `e5_security` reproduces that
//! study on PG32, and `BENCH_search.json`'s `security` section tracks
//! the per-rung leakage of the camera-pill crypto front.

pub mod analyser;
pub mod ladder;
pub mod metrics;

pub use analyser::{assess_leakage, LeakageReport, SecretSpec};
pub use ladder::{ladderise, ladderise_module, secret_params_of, LadderReport};
pub use metrics::{
    indiscernibility, ks_distance, welch_t, LeakageAssessment, Verdict, WELCH_T_CAP,
};
