//! # teamplay-security — side-channel analysis and hardening
//!
//! The reproduction of TeamPlay's SecurityAnalyser and SecurityOptimiser
//! (paper refs \[10\]–\[12\]):
//!
//! * [`metrics`] — the **Indiscernibility Methodology** (ref \[10\]):
//!   objective, attack-agnostic metrics that quantify how distinguishable
//!   two secret classes are from observable time/energy traces, with no
//!   prior knowledge of the leakage model (Welch's t — the TVLA statistic
//!   — Kolmogorov–Smirnov distance, and histogram-overlap
//!   indiscernibility).
//! * [`analyser`] — drives the PG32 simulator as the "measurement rig":
//!   runs a compiled task under two fixed secrets over many random public
//!   inputs and scores the timing and power channels.
//! * [`ladder`] — the SecurityOptimiser: taint-driven **ladderisation**
//!   (refs \[11\], \[12\]) that if-converts secret-guarded branches into
//!   straight-line code over constant-time selects, making the
//!   instruction stream secret-independent.
//!
//! Per Section IV of the paper, security was validated on *synthetic
//! benchmarks on the Cortex-M0*; benches `e5_security` reproduces that
//! study on PG32.

pub mod analyser;
pub mod ladder;
pub mod metrics;

pub use analyser::{assess_leakage, LeakageReport, SecretSpec};
pub use ladder::{ladderise, ladderise_module, secret_params_of, LadderReport};
pub use metrics::{indiscernibility, ks_distance, welch_t, LeakageAssessment, Verdict};
