//! The SecurityAnalyser: leakage assessment of compiled tasks.
//!
//! Runs a compiled PG32 task on the cycle simulator — the reproduction's
//! measurement rig — under two fixed secrets while drawing the public
//! inputs at random, then scores the **timing channel** (cycle counts)
//! and the **power channel** (per-run energy) with the indiscernibility
//! metrics. This is exactly the experimental setup of the paper's
//! synthetic Cortex-M0 security validation (Section IV).

use crate::metrics::LeakageAssessment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use teamplay_isa::Program;
use teamplay_sim::{LoadError, Machine, MachineError, NullDevice};

/// Which argument is secret and which two values to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretSpec {
    /// Index of the secret argument.
    pub arg_index: usize,
    /// First secret class value.
    pub class0: i32,
    /// Second secret class value.
    pub class1: i32,
}

/// Leakage scores for both observable channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageReport {
    /// Timing channel (cycles per run).
    pub time: LeakageAssessment,
    /// Power channel (energy per run).
    pub energy: LeakageAssessment,
    /// Traces collected per class.
    pub traces_per_class: usize,
}

impl LeakageReport {
    /// `true` if either channel leaks.
    pub fn leaks(&self) -> bool {
        use crate::metrics::Verdict;
        self.time.verdict == Verdict::Leaking || self.energy.verdict == Verdict::Leaking
    }
}

/// Assessment failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssessError {
    /// Machine trap during a measurement run.
    Machine(MachineError),
    /// Bad argument shape (secret index out of range, > 6 args).
    BadSpec(String),
    /// Program failed to load.
    Load(LoadError),
}

impl fmt::Display for AssessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssessError::Machine(e) => write!(f, "measurement run trapped: {e}"),
            AssessError::BadSpec(msg) => write!(f, "bad secret spec: {msg}"),
            AssessError::Load(e) => write!(f, "program load failed: {e}"),
        }
    }
}

impl std::error::Error for AssessError {}

impl From<MachineError> for AssessError {
    fn from(e: MachineError) -> Self {
        AssessError::Machine(e)
    }
}

/// Assess the leakage of `func` in `program`.
///
/// `arg_count` is the function's total scalar argument count; non-secret
/// arguments are drawn uniformly from `public_range` with a seeded RNG,
/// identically for both classes (paired sampling isolates the secret's
/// contribution).
///
/// # Errors
/// See [`AssessError`].
pub fn assess_leakage(
    program: &Program,
    func: &str,
    arg_count: usize,
    spec: SecretSpec,
    traces_per_class: usize,
    public_range: std::ops::Range<i32>,
    seed: u64,
) -> Result<LeakageReport, AssessError> {
    if spec.arg_index >= arg_count {
        return Err(AssessError::BadSpec(format!(
            "secret index {} out of range for {arg_count} args",
            spec.arg_index
        )));
    }
    if arg_count > 6 {
        return Err(AssessError::BadSpec("more than 6 arguments".into()));
    }
    let mut machine = Machine::new(program.clone()).map_err(AssessError::Load)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut time = [
        Vec::with_capacity(traces_per_class),
        Vec::with_capacity(traces_per_class),
    ];
    let mut energy = [
        Vec::with_capacity(traces_per_class),
        Vec::with_capacity(traces_per_class),
    ];

    for _ in 0..traces_per_class {
        // One public draw, replayed for both classes.
        let publics: Vec<i32> = (0..arg_count)
            .map(|_| rng.gen_range(public_range.clone()))
            .collect();
        for (class, secret) in [(0usize, spec.class0), (1usize, spec.class1)] {
            let mut args = publics.clone();
            args[spec.arg_index] = secret;
            machine.reset_data();
            let r = machine.call(func, &args, &mut NullDevice::new())?;
            time[class].push(r.cycles as f64);
            energy[class].push(r.energy_pj);
        }
    }

    Ok(LeakageReport {
        time: LeakageAssessment::from_samples(&time[0], &time[1]),
        energy: LeakageAssessment::from_samples(&energy[0], &energy[1]),
        traces_per_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{ladderise, secret_params_of};
    use crate::metrics::Verdict;
    use std::collections::HashMap;
    use teamplay_compiler::{compile_module, CompilerConfig};
    use teamplay_minic::compile_to_ir;

    /// A branchy comparator: classic timing leak (arms differ in cost).
    const BRANCHY: &str = "/*@ secret(k) @*/
        int check(int k, int x) {
            int r = 0;
            if (k > 100) { r = (x * 3 + k) * (x - 2) + x / 3; } else { r = x; }
            return r;
        }";

    fn compile(src: &str, harden: bool) -> Program {
        let mut ir = compile_to_ir(src).expect("front-end");
        if harden {
            let mut secrets = HashMap::new();
            for f in &ir.functions {
                secrets.insert(f.name.clone(), secret_params_of(f));
            }
            for f in &mut ir.functions {
                let s = secrets[&f.name].clone();
                let report = ladderise(f, &s);
                assert!(report.fully_hardened(), "{report:?}");
            }
        }
        // No optimisation: keep the branch structure as written.
        compile_module(&ir, &CompilerConfig::traditional()).expect("compile")
    }

    fn spec() -> SecretSpec {
        SecretSpec {
            arg_index: 0,
            class0: 0,
            class1: 200,
        }
    }

    #[test]
    fn branchy_code_leaks_time_and_energy() {
        let program = compile(BRANCHY, false);
        let report = assess_leakage(&program, "check", 2, spec(), 64, 0..1000, 7).expect("assess");
        assert_eq!(report.time.verdict, Verdict::Leaking, "{report:?}");
        assert_eq!(report.energy.verdict, Verdict::Leaking, "{report:?}");
    }

    #[test]
    fn ladderised_code_is_indistinguishable() {
        let program = compile(BRANCHY, true);
        let report = assess_leakage(&program, "check", 2, spec(), 64, 0..1000, 7).expect("assess");
        assert_eq!(
            report.time.verdict,
            Verdict::Indistinguishable,
            "{report:?}"
        );
        assert_eq!(
            report.energy.verdict,
            Verdict::Indistinguishable,
            "{report:?}"
        );
        assert!(!report.leaks());
    }

    #[test]
    fn hardening_costs_some_time() {
        // The ladder executes both arms: protection is not free — this is
        // the security/time trade-off of paper Section III-C.
        use teamplay_sim::{NullDevice, RecordingDevice};
        let _ = RecordingDevice::new();
        let plain = compile(BRANCHY, false);
        let hard = compile(BRANCHY, true);
        let mut mp = Machine::new(plain).expect("load");
        let mut mh = Machine::new(hard).expect("load");
        // k=0 takes the cheap arm in the branchy version.
        let rp = mp
            .call("check", &[0, 5], &mut NullDevice::new())
            .expect("run");
        let rh = mh
            .call("check", &[0, 5], &mut NullDevice::new())
            .expect("run");
        assert_eq!(rp.return_value, rh.return_value);
        assert!(
            rh.cycles > rp.cycles,
            "ladder must cost cycles on the cheap path"
        );
    }

    #[test]
    fn bad_spec_is_rejected() {
        let program = compile(BRANCHY, false);
        let err = assess_leakage(
            &program,
            "check",
            2,
            SecretSpec {
                arg_index: 5,
                class0: 0,
                class1: 1,
            },
            8,
            0..10,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, AssessError::BadSpec(_)));
    }

    #[test]
    fn deterministic_given_seed() {
        let program = compile(BRANCHY, false);
        let a = assess_leakage(&program, "check", 2, spec(), 32, 0..100, 3).expect("a");
        let b = assess_leakage(&program, "check", 2, spec(), 32, 0..100, 3).expect("b");
        assert_eq!(a, b);
    }
}
