//! The Indiscernibility Methodology: leakage metrics over trace samples.
//!
//! Given two sample sets of an observable (execution time or energy) —
//! one per secret class — the metrics quantify how distinguishable the
//! classes are. Following paper ref \[10\], no leakage model is assumed:
//! the metrics operate directly on the empirical distributions.
//!
//! * [`welch_t`] — Welch's t-statistic, the TVLA industry standard
//!   (|t| > 4.5 is the conventional "leaks" threshold);
//! * [`ks_distance`] — the Kolmogorov–Smirnov statistic, sensitive to any
//!   distributional difference, not just means;
//! * [`indiscernibility`] — 1 minus the histogram overlap of the two
//!   distributions: 0 means the attacker's best guess is chance, 1 means
//!   a single trace identifies the secret.

use serde::{Deserialize, Serialize};

/// Classification of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The classes are statistically indistinguishable at the threshold.
    Indistinguishable,
    /// The channel leaks the secret.
    Leaking,
}

/// The TVLA t-statistic threshold conventionally separating the verdicts.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Saturation value for [`welch_t`]: the statistic is clamped to
/// `±WELCH_T_CAP` so that degenerate sample sets (zero variance,
/// constant-but-distinct observables — exactly what hardened
/// constant-time code produces) yield a *defined, finite* number that
/// can safely enter a Pareto objective vector. Any real leak saturates
/// far above [`TVLA_THRESHOLD`] long before the cap matters.
pub const WELCH_T_CAP: f64 = 1e9;

/// A scored observable channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageAssessment {
    /// Welch's t-statistic (absolute value).
    pub welch_t: f64,
    /// Kolmogorov–Smirnov distance in [0, 1].
    pub ks: f64,
    /// Indiscernibility metric in [0, 1] (0 = indistinguishable).
    pub indiscernibility: f64,
    /// Verdict at the TVLA threshold.
    pub verdict: Verdict,
}

impl LeakageAssessment {
    /// Score two sample sets.
    ///
    /// # Panics
    /// Panics if either sample set is empty.
    pub fn from_samples(class0: &[f64], class1: &[f64]) -> LeakageAssessment {
        assert!(
            !class0.is_empty() && !class1.is_empty(),
            "need samples for both classes"
        );
        let t = welch_t(class0, class1).abs();
        let ks = ks_distance(class0, class1);
        let ind = indiscernibility(class0, class1);
        let verdict = if t > TVLA_THRESHOLD || ks > 0.5 {
            Verdict::Leaking
        } else {
            Verdict::Indistinguishable
        };
        LeakageAssessment {
            welch_t: t,
            ks,
            indiscernibility: ind,
            verdict,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64], m: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Welch's two-sample t-statistic, saturated to `±`[`WELCH_T_CAP`].
///
/// When both samples are constant: 0 if equal (no information),
/// `±WELCH_T_CAP` if different — a constant, distinct observable
/// identifies the secret with one trace. The result is always finite
/// (never NaN, never ±∞), including for non-finite inputs, so it can be
/// used directly as a search objective.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    let ma = mean(a);
    let mb = mean(b);
    let va = variance(a, ma);
    let vb = variance(b, mb);
    let denom = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    let t = if denom == 0.0 {
        if ma == mb {
            0.0
        } else {
            WELCH_T_CAP.copysign(ma - mb)
        }
    } else {
        (ma - mb) / denom
    };
    if t.is_nan() {
        // NaN means the inputs themselves were degenerate (e.g. a NaN
        // sample, or ∞ − ∞ of two infinite means): report the
        // conservative "maximally distinguishable" cap rather than
        // poisoning downstream comparisons.
        WELCH_T_CAP
    } else {
        t.clamp(-WELCH_T_CAP, WELCH_T_CAP)
    }
}

/// Two-sample Kolmogorov–Smirnov distance (sup |F_a − F_b|).
///
/// NaN samples are dropped before comparison (they carry no ordering
/// information and would otherwise wedge the merge scan); ±∞ samples
/// participate normally. An entirely-NaN sample set contributes an
/// empty distribution, scoring 0 against anything.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut sa: Vec<f64> = a.iter().copied().filter(|x| !x.is_nan()).collect();
    let mut sb: Vec<f64> = b.iter().copied().filter(|x| !x.is_nan()).collect();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Indiscernibility: `1 − Σ_bins min(p_a, p_b)` over a shared histogram.
///
/// 0 means the distributions overlap completely (an attacker learns
/// nothing from one trace); 1 means they are disjoint (one trace reveals
/// the secret). The bin count follows the Freedman–Diaconis-flavoured
/// `√n` rule on the pooled samples.
///
/// Non-finite samples are dropped (a NaN or ±∞ observation has no bin;
/// keeping ±∞ would stretch the histogram range to ∞ and collapse every
/// finite sample into one bin). The result is always finite and in
/// `[0, 1]`: if exactly one class survives filtering the distributions
/// are trivially disjoint (1.0); if neither survives, nothing is
/// observable (0.0).
pub fn indiscernibility(a: &[f64], b: &[f64]) -> f64 {
    let fa: Vec<f64> = a.iter().copied().filter(|x| x.is_finite()).collect();
    let fb: Vec<f64> = b.iter().copied().filter(|x| x.is_finite()).collect();
    match (fa.is_empty(), fb.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let lo = fa.iter().chain(&fb).copied().fold(f64::INFINITY, f64::min);
    let hi = fa
        .iter()
        .chain(&fb)
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return 0.0; // all observations identical across both classes
    }
    let n = (fa.len() + fb.len()) as f64;
    let bins = (n.sqrt().ceil() as usize).clamp(4, 256);
    let width = (hi - lo) / bins as f64;
    let histogram = |xs: &[f64]| -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        for &x in xs {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            h[idx] += 1.0 / xs.len() as f64;
        }
        h
    };
    let ha = histogram(&fa);
    let hb = histogram(&fb);
    let overlap: f64 = ha.iter().zip(&hb).map(|(p, q)| p.min(*q)).sum();
    (1.0 - overlap).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| offset + (i % 10) as f64).collect()
    }

    #[test]
    fn identical_distributions_are_indistinguishable() {
        let a = shifted(200, 0.0);
        let b = shifted(200, 0.0);
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Indistinguishable);
        assert!(r.welch_t < 1e-9);
        assert!(r.indiscernibility < 0.05, "{}", r.indiscernibility);
    }

    #[test]
    fn disjoint_distributions_leak() {
        let a = shifted(200, 0.0);
        let b = shifted(200, 100.0);
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Leaking);
        assert!(r.welch_t > TVLA_THRESHOLD);
        assert!(r.ks > 0.99);
        assert!(r.indiscernibility > 0.99);
    }

    #[test]
    fn constant_equal_traces_score_zero() {
        let a = vec![42.0; 50];
        let b = vec![42.0; 50];
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Indistinguishable);
        assert_eq!(r.indiscernibility, 0.0);
    }

    #[test]
    fn constant_distinct_traces_leak_maximally() {
        let a = vec![42.0; 50];
        let b = vec![43.0; 50];
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Leaking);
        assert!(r.welch_t >= 1e9);
        assert!(r.indiscernibility > 0.99);
    }

    #[test]
    fn ks_bounds() {
        let a = shifted(100, 0.0);
        let b = shifted(100, 3.0);
        let d = ks_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.0);
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn welch_t_is_symmetric_in_magnitude() {
        let a = shifted(100, 0.0);
        let b = shifted(100, 2.0);
        assert!((welch_t(&a, &b) + welch_t(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let a: Vec<f64> = (0..300).map(|i| (i % 20) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| 10.0 + (i % 20) as f64).collect();
        let ind = indiscernibility(&a, &b);
        assert!(ind > 0.2 && ind < 0.9, "{ind}");
    }

    #[test]
    #[should_panic(expected = "need samples")]
    fn empty_samples_panic() {
        let _ = LeakageAssessment::from_samples(&[], &[1.0]);
    }

    #[test]
    fn welch_t_is_always_finite_on_degenerate_inputs() {
        // Zero variance, distinct means: saturates at the cap instead of ∞.
        assert_eq!(welch_t(&[1.0; 8], &[2.0; 8]), -WELCH_T_CAP);
        assert_eq!(welch_t(&[2.0; 8], &[1.0; 8]), WELCH_T_CAP);
        // Zero variance, equal means: exactly zero.
        assert_eq!(welch_t(&[5.0; 3], &[5.0; 9]), 0.0);
        // NaN / ±∞ samples must not escape as NaN.
        let degenerates: [&[f64]; 4] = [
            &[f64::NAN, 1.0],
            &[f64::INFINITY, 0.0],
            &[f64::NEG_INFINITY],
            &[f64::INFINITY],
        ];
        for a in degenerates {
            for b in degenerates {
                let t = welch_t(a, b);
                assert!(t.is_finite(), "welch_t({a:?}, {b:?}) = {t}");
                assert!(t.abs() <= WELCH_T_CAP);
            }
        }
        // Huge but finite separations clamp instead of overflowing.
        assert_eq!(
            welch_t(&[f64::MAX, f64::MAX], &[f64::MIN, f64::MIN]).abs(),
            WELCH_T_CAP
        );
    }

    #[test]
    fn ks_distance_tolerates_nan_and_infinite_samples() {
        // NaN samples are dropped; the remainder still compares sanely.
        let a = [f64::NAN, 0.0, 1.0, 2.0];
        let b = [10.0, 11.0, f64::NAN, 12.0];
        let d = ks_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.9, "disjoint finite parts: {d}");
        // All-NaN sets degrade to an empty distribution (distance 0),
        // and ±∞ participates as an extreme order statistic.
        assert_eq!(ks_distance(&[f64::NAN, f64::NAN], &[1.0, 2.0]), 0.0);
        let inf = [f64::INFINITY, f64::NEG_INFINITY, 0.0];
        let d = ks_distance(&inf, &inf);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn indiscernibility_is_defined_on_degenerate_inputs() {
        // Non-finite samples are filtered, not smeared into the bins.
        let a = [f64::INFINITY, 0.0, 1.0];
        let b = [f64::NAN, 0.5, 1.5];
        let ind = indiscernibility(&a, &b);
        assert!((0.0..=1.0).contains(&ind));
        // One class entirely non-finite: trivially disjoint.
        assert_eq!(indiscernibility(&[f64::NAN], &[1.0, 2.0]), 1.0);
        assert_eq!(indiscernibility(&[1.0], &[f64::INFINITY]), 1.0);
        // Both classes non-finite: nothing observable.
        assert_eq!(indiscernibility(&[f64::NAN], &[f64::INFINITY]), 0.0);
    }

    #[test]
    fn degenerate_assessments_stay_finite_end_to_end() {
        // Constant-time code yields exactly this shape: zero variance in
        // both classes. Every metric must come back finite so the
        // assessment can feed a Pareto objective.
        let r = LeakageAssessment::from_samples(&[7.0; 16], &[9.0; 16]);
        assert!(r.welch_t.is_finite() && r.ks.is_finite() && r.indiscernibility.is_finite());
        assert_eq!(r.welch_t, WELCH_T_CAP);
        assert_eq!(r.verdict, Verdict::Leaking);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn metrics_are_bounded(
            a in proptest::collection::vec(-1e6f64..1e6, 1..80),
            b in proptest::collection::vec(-1e6f64..1e6, 1..80),
        ) {
            let ks = ks_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ks));
            let ind = indiscernibility(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ind));
        }

        #[test]
        fn self_comparison_never_leaks(
            a in proptest::collection::vec(-1e6f64..1e6, 2..80),
        ) {
            let r = LeakageAssessment::from_samples(&a, &a);
            prop_assert_eq!(r.verdict, Verdict::Indistinguishable);
        }
    }
}
