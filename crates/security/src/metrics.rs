//! The Indiscernibility Methodology: leakage metrics over trace samples.
//!
//! Given two sample sets of an observable (execution time or energy) —
//! one per secret class — the metrics quantify how distinguishable the
//! classes are. Following paper ref \[10\], no leakage model is assumed:
//! the metrics operate directly on the empirical distributions.
//!
//! * [`welch_t`] — Welch's t-statistic, the TVLA industry standard
//!   (|t| > 4.5 is the conventional "leaks" threshold);
//! * [`ks_distance`] — the Kolmogorov–Smirnov statistic, sensitive to any
//!   distributional difference, not just means;
//! * [`indiscernibility`] — 1 minus the histogram overlap of the two
//!   distributions: 0 means the attacker's best guess is chance, 1 means
//!   a single trace identifies the secret.

use serde::{Deserialize, Serialize};

/// Classification of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The classes are statistically indistinguishable at the threshold.
    Indistinguishable,
    /// The channel leaks the secret.
    Leaking,
}

/// The TVLA t-statistic threshold conventionally separating the verdicts.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// A scored observable channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageAssessment {
    /// Welch's t-statistic (absolute value).
    pub welch_t: f64,
    /// Kolmogorov–Smirnov distance in [0, 1].
    pub ks: f64,
    /// Indiscernibility metric in [0, 1] (0 = indistinguishable).
    pub indiscernibility: f64,
    /// Verdict at the TVLA threshold.
    pub verdict: Verdict,
}

impl LeakageAssessment {
    /// Score two sample sets.
    ///
    /// # Panics
    /// Panics if either sample set is empty.
    pub fn from_samples(class0: &[f64], class1: &[f64]) -> LeakageAssessment {
        assert!(
            !class0.is_empty() && !class1.is_empty(),
            "need samples for both classes"
        );
        let t = welch_t(class0, class1).abs();
        let ks = ks_distance(class0, class1);
        let ind = indiscernibility(class0, class1);
        let verdict = if t > TVLA_THRESHOLD || ks > 0.5 {
            Verdict::Leaking
        } else {
            Verdict::Indistinguishable
        };
        LeakageAssessment {
            welch_t: t,
            ks,
            indiscernibility: ind,
            verdict,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64], m: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Welch's two-sample t-statistic.
///
/// When both samples are constant: 0 if equal (no information), `+∞` in
/// magnitude (represented as a large sentinel) if different — a constant,
/// distinct observable identifies the secret with one trace.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    let ma = mean(a);
    let mb = mean(b);
    let va = variance(a, ma);
    let vb = variance(b, mb);
    let denom = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    if denom == 0.0 {
        if ma == mb {
            0.0
        } else {
            1e9
        }
    } else {
        (ma - mb) / denom
    }
}

/// Two-sample Kolmogorov–Smirnov distance (sup |F_a − F_b|).
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Indiscernibility: `1 − Σ_bins min(p_a, p_b)` over a shared histogram.
///
/// 0 means the distributions overlap completely (an attacker learns
/// nothing from one trace); 1 means they are disjoint (one trace reveals
/// the secret). The bin count follows the Freedman–Diaconis-flavoured
/// `√n` rule on the pooled samples.
pub fn indiscernibility(a: &[f64], b: &[f64]) -> f64 {
    let lo = a.iter().chain(b).copied().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(b).copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return 0.0; // all observations identical across both classes
    }
    let n = (a.len() + b.len()) as f64;
    let bins = (n.sqrt().ceil() as usize).clamp(4, 256);
    let width = (hi - lo) / bins as f64;
    let histogram = |xs: &[f64]| -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        for &x in xs {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            h[idx] += 1.0 / xs.len() as f64;
        }
        h
    };
    let ha = histogram(a);
    let hb = histogram(b);
    let overlap: f64 = ha.iter().zip(&hb).map(|(p, q)| p.min(*q)).sum();
    (1.0 - overlap).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| offset + (i % 10) as f64).collect()
    }

    #[test]
    fn identical_distributions_are_indistinguishable() {
        let a = shifted(200, 0.0);
        let b = shifted(200, 0.0);
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Indistinguishable);
        assert!(r.welch_t < 1e-9);
        assert!(r.indiscernibility < 0.05, "{}", r.indiscernibility);
    }

    #[test]
    fn disjoint_distributions_leak() {
        let a = shifted(200, 0.0);
        let b = shifted(200, 100.0);
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Leaking);
        assert!(r.welch_t > TVLA_THRESHOLD);
        assert!(r.ks > 0.99);
        assert!(r.indiscernibility > 0.99);
    }

    #[test]
    fn constant_equal_traces_score_zero() {
        let a = vec![42.0; 50];
        let b = vec![42.0; 50];
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Indistinguishable);
        assert_eq!(r.indiscernibility, 0.0);
    }

    #[test]
    fn constant_distinct_traces_leak_maximally() {
        let a = vec![42.0; 50];
        let b = vec![43.0; 50];
        let r = LeakageAssessment::from_samples(&a, &b);
        assert_eq!(r.verdict, Verdict::Leaking);
        assert!(r.welch_t >= 1e9);
        assert!(r.indiscernibility > 0.99);
    }

    #[test]
    fn ks_bounds() {
        let a = shifted(100, 0.0);
        let b = shifted(100, 3.0);
        let d = ks_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.0);
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn welch_t_is_symmetric_in_magnitude() {
        let a = shifted(100, 0.0);
        let b = shifted(100, 2.0);
        assert!((welch_t(&a, &b) + welch_t(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let a: Vec<f64> = (0..300).map(|i| (i % 20) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| 10.0 + (i % 20) as f64).collect();
        let ind = indiscernibility(&a, &b);
        assert!(ind > 0.2 && ind < 0.9, "{ind}");
    }

    #[test]
    #[should_panic(expected = "need samples")]
    fn empty_samples_panic() {
        let _ = LeakageAssessment::from_samples(&[], &[1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn metrics_are_bounded(
            a in proptest::collection::vec(-1e6f64..1e6, 1..80),
            b in proptest::collection::vec(-1e6f64..1e6, 1..80),
        ) {
            let ks = ks_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ks));
            let ind = indiscernibility(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ind));
        }

        #[test]
        fn self_comparison_never_leaks(
            a in proptest::collection::vec(-1e6f64..1e6, 2..80),
        ) {
            let r = LeakageAssessment::from_samples(&a, &a);
            prop_assert_eq!(r.verdict, Verdict::Indistinguishable);
        }
    }
}
