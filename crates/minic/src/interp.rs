//! Reference interpreter for Mini-C — the toolchain's semantic oracle.
//!
//! The optimising compiler is differential-tested against this interpreter:
//! for random programs and inputs, the value computed here must equal the
//! value computed by the PG32 simulator running the compiled binary, for
//! *every* optimisation configuration. The interpreter is deliberately
//! naive (a direct AST walk) so that it is easy to audit.
//!
//! Execution is fuel-limited so that property tests can run arbitrary
//! programs without hanging, and array accesses are bounds-checked so that
//! undefined behaviour (which the compiled code does not trap) is excluded
//! from differential comparisons.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Runtime errors (all of which make a program ineligible as a
/// differential-testing witness rather than indicating interpreter bugs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel budget was exhausted (possible non-termination).
    OutOfFuel,
    /// Array access outside its bounds (undefined behaviour in Mini-C).
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i32,
        /// Array length.
        len: u32,
    },
    /// Call stack exceeded the limit (deep recursion).
    StackOverflow,
    /// Entry function not found or not callable with scalar arguments.
    BadEntry(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "execution fuel exhausted"),
            InterpError::OutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}[{len}]`")
            }
            InterpError::StackOverflow => write!(f, "call stack overflow"),
            InterpError::BadEntry(name) => write!(f, "cannot call entry function `{name}`"),
        }
    }
}

impl std::error::Error for InterpError {}

/// External world for the `__in` / `__out` builtins.
pub trait Ports {
    /// Produce the next value available on `port`.
    fn input(&mut self, port: u8) -> i32;
    /// Consume a value written to `port`.
    fn output(&mut self, port: u8, value: i32);
}

/// A [`Ports`] implementation backed by per-port input queues, recording
/// all outputs — used by tests and by the side-channel analyses, which
/// compare output *traces*.
#[derive(Debug, Clone, Default)]
pub struct RecordingPorts {
    inputs: HashMap<u8, Vec<i32>>,
    cursor: HashMap<u8, usize>,
    /// Every `(port, value)` written, in order.
    pub outputs: Vec<(u8, i32)>,
}

impl RecordingPorts {
    /// No inputs queued; reads return 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue input values on a port; reads past the end return 0.
    pub fn queue(&mut self, port: u8, values: impl IntoIterator<Item = i32>) {
        self.inputs.entry(port).or_default().extend(values);
    }
}

impl Ports for RecordingPorts {
    fn input(&mut self, port: u8) -> i32 {
        let idx = self.cursor.entry(port).or_insert(0);
        let v = self
            .inputs
            .get(&port)
            .and_then(|q| q.get(*idx))
            .copied()
            .unwrap_or(0);
        *idx += 1;
        v
    }

    fn output(&mut self, port: u8, value: i32) {
        self.outputs.push((port, value));
    }
}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value returned by the entry function (`None` for `void`).
    pub return_value: Option<i32>,
    /// AST evaluation steps consumed (a machine-independent "time" proxy).
    pub steps: u64,
}

const MAX_CALL_DEPTH: usize = 128;

/// Values bound in a frame.
#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(i32),
    Array(usize), // arena index
}

struct Frame {
    vars: Vec<HashMap<String, Binding>>,
}

enum Flow {
    Normal,
    Return(Option<i32>),
}

/// The interpreter; owns global state so that successive calls observe
/// prior mutations, mirroring a device that runs task after task.
pub struct Interp<'p, P: Ports> {
    program: &'p Program,
    arena: Vec<Vec<i32>>,
    globals: HashMap<String, Binding>,
    ports: P,
    fuel: u64,
    steps: u64,
}

impl<'p, P: Ports> Interp<'p, P> {
    /// Create an interpreter with the given port device and fuel budget
    /// (in AST steps).
    pub fn new(program: &'p Program, ports: P, fuel: u64) -> Self {
        let mut arena = Vec::new();
        let mut globals = HashMap::new();
        for g in program.globals() {
            let idx = arena.len();
            arena.push(g.init.clone());
            if g.array_len.is_some() {
                globals.insert(g.name.clone(), Binding::Array(idx));
            } else {
                globals.insert(g.name.clone(), Binding::Scalar(g.init[0]));
            }
        }
        Interp {
            program,
            arena,
            globals,
            ports,
            fuel,
            steps: 0,
        }
    }

    /// Read back a scalar global after a run.
    pub fn global_scalar(&self, name: &str) -> Option<i32> {
        match self.globals.get(name) {
            Some(Binding::Scalar(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read back an array global after a run.
    pub fn global_array(&self, name: &str) -> Option<&[i32]> {
        match self.globals.get(name) {
            Some(Binding::Array(idx)) => Some(&self.arena[*idx]),
            _ => None,
        }
    }

    /// Consume the interpreter and return the port device (e.g. to inspect
    /// recorded outputs).
    pub fn into_ports(self) -> P {
        self.ports
    }

    /// Call `name` with scalar arguments.
    ///
    /// # Errors
    /// [`InterpError::BadEntry`] if the function does not exist, has an
    /// array parameter, or the argument count differs; or any runtime
    /// error during execution.
    pub fn call(&mut self, name: &str, args: &[i32]) -> Result<ExecOutcome, InterpError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| InterpError::BadEntry(name.to_string()))?;
        if f.params.len() != args.len() || f.params.iter().any(|p| p.is_array) {
            return Err(InterpError::BadEntry(name.to_string()));
        }
        let bindings: Vec<Binding> = args.iter().map(|v| Binding::Scalar(*v)).collect();
        let start = self.steps;
        let ret = self.call_function(f, bindings, 0)?;
        Ok(ExecOutcome {
            return_value: ret,
            steps: self.steps - start,
        })
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(InterpError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    fn call_function(
        &mut self,
        f: &'p Function,
        args: Vec<Binding>,
        depth: usize,
    ) -> Result<Option<i32>, InterpError> {
        if depth >= MAX_CALL_DEPTH {
            return Err(InterpError::StackOverflow);
        }
        let mut frame = Frame {
            vars: vec![HashMap::new()],
        };
        for (p, b) in f.params.iter().zip(args) {
            frame.vars[0].insert(p.name.clone(), b);
        }
        for stmt in &f.body {
            if let Flow::Return(v) = self.exec_stmt(stmt, &mut frame, depth)? {
                return Ok(v);
            }
        }
        Ok(None)
    }

    fn exec_stmt(
        &mut self,
        stmt: &'p Stmt,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, InterpError> {
        self.tick()?;
        match stmt {
            Stmt::Decl {
                name,
                array_len,
                init,
            } => {
                let binding = if let Some(len) = array_len {
                    let idx = self.arena.len();
                    self.arena.push(vec![0; *len as usize]);
                    Binding::Array(idx)
                } else {
                    let v = match init {
                        Some(e) => self.eval(e, frame, depth)?,
                        None => 0,
                    };
                    Binding::Scalar(v)
                };
                frame
                    .vars
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), binding);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, frame, depth)?;
                match target {
                    LValue::Var(name) => {
                        self.set_scalar(name, v, frame);
                    }
                    LValue::Index { array, index } => {
                        let i = self.eval(index, frame, depth)?;
                        let arena_idx = self.array_binding(array, frame);
                        let arr = &mut self.arena[arena_idx];
                        if i < 0 || i as usize >= arr.len() {
                            return Err(InterpError::OutOfBounds {
                                array: array.clone(),
                                index: i,
                                len: arr.len() as u32,
                            });
                        }
                        arr[i as usize] = v;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, frame, depth)? != 0 {
                    self.exec_scoped(then_branch, frame, depth)
                } else if let Some(e) = else_branch {
                    self.exec_scoped(e, frame, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.eval(cond, frame, depth)? != 0 {
                    if let Flow::Return(v) = self.exec_scoped(body, frame, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                frame.vars.push(HashMap::new());
                let result = (|| {
                    if let Some(init) = init {
                        if let Flow::Return(v) = self.exec_stmt(init, frame, depth)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                    loop {
                        let go = match cond {
                            Some(c) => self.eval(c, frame, depth)? != 0,
                            None => true,
                        };
                        if !go {
                            return Ok(Flow::Normal);
                        }
                        if let Flow::Return(v) = self.exec_scoped(body, frame, depth)? {
                            return Ok(Flow::Return(v));
                        }
                        if let Some(step) = step {
                            if let Flow::Return(v) = self.exec_stmt(step, frame, depth)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                    }
                })();
                frame.vars.pop();
                result
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e, frame, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                self.eval_call_any(e, frame, depth)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(stmts) => {
                frame.vars.push(HashMap::new());
                let mut out = Flow::Normal;
                for s in stmts {
                    match self.exec_stmt(s, frame, depth)? {
                        Flow::Return(v) => {
                            out = Flow::Return(v);
                            break;
                        }
                        Flow::Normal => {}
                    }
                }
                frame.vars.pop();
                Ok(out)
            }
        }
    }

    fn exec_scoped(
        &mut self,
        stmt: &'p Stmt,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, InterpError> {
        // Non-block single statements still execute in a fresh scope so a
        // `Decl` directly under `if` cannot leak.
        frame.vars.push(HashMap::new());
        let r = self.exec_stmt(stmt, frame, depth);
        frame.vars.pop();
        r
    }

    fn lookup(&self, name: &str, frame: &Frame) -> Binding {
        for scope in frame.vars.iter().rev() {
            if let Some(b) = scope.get(name) {
                return *b;
            }
        }
        *self
            .globals
            .get(name)
            .expect("sema guarantees declared names")
    }

    fn set_scalar(&mut self, name: &str, value: i32, frame: &mut Frame) {
        for scope in frame.vars.iter_mut().rev() {
            if let Some(b) = scope.get_mut(name) {
                *b = Binding::Scalar(value);
                return;
            }
        }
        self.globals
            .insert(name.to_string(), Binding::Scalar(value));
    }

    fn array_binding(&self, name: &str, frame: &Frame) -> usize {
        match self.lookup(name, frame) {
            Binding::Array(idx) => idx,
            Binding::Scalar(_) => unreachable!("sema guarantees array shape"),
        }
    }

    fn eval(&mut self, e: &'p Expr, frame: &mut Frame, depth: usize) -> Result<i32, InterpError> {
        self.tick()?;
        match e {
            Expr::Lit(v) => Ok(*v),
            Expr::Var(name) => match self.lookup(name, frame) {
                Binding::Scalar(v) => Ok(v),
                Binding::Array(_) => unreachable!("sema guarantees scalar shape"),
            },
            Expr::Index { array, index } => {
                let i = self.eval(index, frame, depth)?;
                let arena_idx = self.array_binding(array, frame);
                let arr = &self.arena[arena_idx];
                if i < 0 || i as usize >= arr.len() {
                    return Err(InterpError::OutOfBounds {
                        array: array.clone(),
                        index: i,
                        len: arr.len() as u32,
                    });
                }
                Ok(arr[i as usize])
            }
            Expr::Bin { op, lhs, rhs } => match op {
                BinOp::LogAnd => {
                    let l = self.eval(lhs, frame, depth)?;
                    if l == 0 {
                        Ok(0)
                    } else {
                        Ok((self.eval(rhs, frame, depth)? != 0) as i32)
                    }
                }
                BinOp::LogOr => {
                    let l = self.eval(lhs, frame, depth)?;
                    if l != 0 {
                        Ok(1)
                    } else {
                        Ok((self.eval(rhs, frame, depth)? != 0) as i32)
                    }
                }
                _ => {
                    let a = self.eval(lhs, frame, depth)?;
                    let b = self.eval(rhs, frame, depth)?;
                    Ok(eval_binop(*op, a, b))
                }
            },
            Expr::Un { op, operand } => {
                let v = self.eval(operand, frame, depth)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                    UnOp::LogNot => (v == 0) as i32,
                })
            }
            Expr::Call { .. } => {
                let v = self.eval_call_any(e, frame, depth)?;
                Ok(v.expect("sema guarantees value-producing call"))
            }
        }
    }

    fn eval_call_any(
        &mut self,
        e: &'p Expr,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Option<i32>, InterpError> {
        let Expr::Call { func, args } = e else {
            unreachable!("eval_call_any invoked on non-call");
        };
        match func.as_str() {
            "__in" => {
                let Expr::Lit(port) = &args[0] else {
                    unreachable!("sema checked port literal")
                };
                return Ok(Some(self.ports.input(*port as u8)));
            }
            "__out" => {
                let Expr::Lit(port) = &args[0] else {
                    unreachable!("sema checked port literal")
                };
                let v = self.eval(&args[1], frame, depth)?;
                self.ports.output(*port as u8, v);
                return Ok(None);
            }
            _ => {}
        }
        let f = self
            .program
            .function(func)
            .expect("sema guarantees defined callee");
        let mut bindings = Vec::with_capacity(args.len());
        for (arg, param) in args.iter().zip(&f.params) {
            if param.is_array {
                let Expr::Var(name) = arg else {
                    unreachable!("sema checked array arg")
                };
                bindings.push(Binding::Array(self.array_binding(name, frame)));
            } else {
                bindings.push(Binding::Scalar(self.eval(arg, frame, depth)?));
            }
        }
        let ret = self.call_function(f, bindings, depth + 1)?;
        Ok(ret)
    }
}

/// Evaluate a non-short-circuit binary operator with Mini-C/PG32
/// semantics (wrapping, zero on divide-by-zero, masked logical shifts).
pub fn eval_binop(op: BinOp, a: i32, b: i32) -> i32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
        BinOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
        BinOp::Lt => (a < b) as i32,
        BinOp::Le => (a <= b) as i32,
        BinOp::Gt => (a > b) as i32,
        BinOp::Ge => (a >= b) as i32,
        BinOp::Eq => (a == b) as i32,
        BinOp::Ne => (a != b) as i32,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as i32,
        BinOp::LogOr => ((a != 0) || (b != 0)) as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    fn run(src: &str, func: &str, args: &[i32]) -> i32 {
        let program = parse_and_check(src).expect("front-end");
        let mut interp = Interp::new(&program, RecordingPorts::new(), 1_000_000);
        interp
            .call(func, args)
            .expect("run")
            .return_value
            .expect("value")
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = "int sq(int x) { return x * x; } int f(int a, int b) { return sq(a) + b; }";
        assert_eq!(run(src, "f", &[3, 4]), 13);
    }

    #[test]
    fn loops_and_arrays() {
        let src = "int sum(int n) {
            int a[10];
            for (int i = 0; i < n; i = i + 1) { a[i] = i * 2; }
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
            return s;
        }";
        assert_eq!(run(src, "sum", &[5]), 20);
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // If && evaluated its RHS, the out-of-bounds read would trap.
        let src = "int f(int n) { int a[2]; if (n < 0 && a[100] == 0) { return 1; } return 2; }";
        assert_eq!(run(src, "f", &[1]), 2);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let src = "int f(int a, int b) { return a / b + a % b; }";
        assert_eq!(run(src, "f", &[7, 0]), 0);
    }

    #[test]
    fn globals_persist_across_calls() {
        let src = "int counter = 0; int bump() { counter = counter + 1; return counter; }";
        let program = parse_and_check(src).expect("front-end");
        let mut interp = Interp::new(&program, RecordingPorts::new(), 10_000);
        interp.call("bump", &[]).expect("run");
        let out = interp.call("bump", &[]).expect("run");
        assert_eq!(out.return_value, Some(2));
        assert_eq!(interp.global_scalar("counter"), Some(2));
    }

    #[test]
    fn array_params_alias_caller_storage() {
        let src = "void fill(int a[], int v) { a[0] = v; return; }
                   int buf[3];
                   int f() { fill(buf, 9); return buf[0]; }";
        assert_eq!(run(src, "f", &[]), 9);
    }

    #[test]
    fn ports_queue_and_record() {
        let src = "int f() { int x = __in(4); __out(7, x + 1); return x; }";
        let program = parse_and_check(src).expect("front-end");
        let mut ports = RecordingPorts::new();
        ports.queue(4, [41]);
        let mut interp = Interp::new(&program, ports, 10_000);
        let out = interp.call("f", &[]).expect("run");
        assert_eq!(out.return_value, Some(41));
        assert_eq!(interp.into_ports().outputs, vec![(7, 42)]);
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let src = "int f() { while (1) { } return 0; }";
        let program = parse_and_check(src).expect("front-end");
        let mut interp = Interp::new(&program, RecordingPorts::new(), 1_000);
        assert_eq!(interp.call("f", &[]), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn out_of_bounds_is_trapped() {
        let src = "int f(int i) { int a[2]; return a[i]; }";
        let program = parse_and_check(src).expect("front-end");
        let mut interp = Interp::new(&program, RecordingPorts::new(), 1_000);
        assert!(matches!(
            interp.call("f", &[5]),
            Err(InterpError::OutOfBounds { .. })
        ));
        assert!(matches!(
            interp.call("f", &[-1]),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn recursion_is_depth_limited() {
        let src = "int f(int n) { if (n <= 0) { return 0; } return f(n - 1) + 1; }";
        let program = parse_and_check(src).expect("front-end");
        let mut interp = Interp::new(&program, RecordingPorts::new(), 10_000_000);
        assert_eq!(interp.call("f", &[10]).expect("run").return_value, Some(10));
        assert_eq!(
            interp.call("f", &[100_000]),
            Err(InterpError::StackOverflow)
        );
    }

    #[test]
    fn if_scope_does_not_leak() {
        // A decl directly under `if` (no braces) lives in its own scope;
        // the outer x is unaffected.
        let src = "int f(int c) { int x = 1; if (c) { int x = 5; x = x + 1; } return x; }";
        assert_eq!(run(src, "f", &[1]), 1);
    }

    #[test]
    fn shifts_are_logical_and_masked() {
        let src = "int f(int a, int b) { return a >> b; }";
        assert_eq!(run(src, "f", &[-1, 28]), 0xF);
        assert_eq!(run(src, "f", &[1 << 20, 32]), 1 << 20);
    }
}
