//! Semantic analysis: symbols, scopes, types and definite-return checking.
//!
//! Mini-C has two value shapes — `int` scalars and `int[]` arrays — and the
//! checker enforces the usual C-subset rules: declare before use, no
//! duplicate names in a scope, arrays only indexed, scalars only used as
//! values, call arity/shape agreement, and `int` functions returning on
//! every control path. The port builtins `__in(port)` and
//! `__out(port, value)` require a literal port number 0–255.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Human-readable message naming the offending symbol.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SemaError {}

fn err<T>(message: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError {
        message: message.into(),
    })
}

/// Shape of a named value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Scalar,
    Array,
}

struct FuncSig {
    params: Vec<bool>, // true = array
    returns_value: bool,
}

struct Checker<'a> {
    funcs: HashMap<&'a str, FuncSig>,
    globals: HashMap<&'a str, Shape>,
    scopes: Vec<HashMap<String, Shape>>,
    current_returns_value: bool,
}

impl<'a> Checker<'a> {
    fn lookup(&self, name: &str) -> Option<Shape> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(*s);
            }
        }
        self.globals.get(name).copied()
    }

    fn declare(&mut self, name: &str, shape: Shape) -> Result<(), SemaError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return err(format!("`{name}` redeclared in the same scope"));
        }
        if self.funcs.contains_key(name) {
            return err(format!(
                "`{name}` conflicts with a function of the same name"
            ));
        }
        scope.insert(name.to_string(), shape);
        Ok(())
    }

    fn check_scalar_expr(&self, e: &Expr) -> Result<(), SemaError> {
        match e {
            Expr::Lit(_) => Ok(()),
            Expr::Var(name) => match self.lookup(name) {
                Some(Shape::Scalar) => Ok(()),
                Some(Shape::Array) => err(format!("array `{name}` used as a scalar value")),
                None => err(format!("use of undeclared variable `{name}`")),
            },
            Expr::Index { array, index } => {
                match self.lookup(array) {
                    Some(Shape::Array) => {}
                    Some(Shape::Scalar) => return err(format!("`{array}` is not an array")),
                    None => return err(format!("use of undeclared array `{array}`")),
                }
                self.check_scalar_expr(index)
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.check_scalar_expr(lhs)?;
                self.check_scalar_expr(rhs)
            }
            Expr::Un { operand, .. } => self.check_scalar_expr(operand),
            Expr::Call { .. } => {
                let returns = self.check_call(e)?;
                if returns {
                    Ok(())
                } else {
                    err("void function call used as a value")
                }
            }
        }
    }

    /// Check a call expression; returns whether it produces a value.
    fn check_call(&self, e: &Expr) -> Result<bool, SemaError> {
        let Expr::Call { func, args } = e else {
            unreachable!("check_call invoked on non-call");
        };
        // Builtins.
        match func.as_str() {
            "__in" => {
                if args.len() != 1 {
                    return err("`__in` takes exactly one argument");
                }
                let Expr::Lit(port) = &args[0] else {
                    return err("`__in` port must be an integer literal");
                };
                if !(0..=255).contains(port) {
                    return err("`__in` port must be 0..=255");
                }
                return Ok(true);
            }
            "__out" => {
                if args.len() != 2 {
                    return err("`__out` takes exactly two arguments");
                }
                let Expr::Lit(port) = &args[0] else {
                    return err("`__out` port must be an integer literal");
                };
                if !(0..=255).contains(port) {
                    return err("`__out` port must be 0..=255");
                }
                self.check_scalar_expr(&args[1])?;
                return Ok(false);
            }
            _ => {}
        }
        let Some(sig) = self.funcs.get(func.as_str()) else {
            return err(format!("call to undefined function `{func}`"));
        };
        if sig.params.len() != args.len() {
            return err(format!(
                "`{func}` expects {} argument(s), got {}",
                sig.params.len(),
                args.len()
            ));
        }
        for (arg, is_array) in args.iter().zip(&sig.params) {
            if *is_array {
                let Expr::Var(name) = arg else {
                    return err(format!(
                        "array parameter of `{func}` requires an array name"
                    ));
                };
                match self.lookup(name) {
                    Some(Shape::Array) => {}
                    Some(Shape::Scalar) => {
                        return err(format!(
                            "`{name}` is a scalar but `{func}` expects an array"
                        ))
                    }
                    None => return err(format!("use of undeclared array `{name}`")),
                }
            } else {
                self.check_scalar_expr(arg)?;
            }
        }
        Ok(sig.returns_value)
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), SemaError> {
        match stmt {
            Stmt::Decl {
                name,
                array_len,
                init,
            } => {
                if let Some(init) = init {
                    self.check_scalar_expr(init)?;
                }
                let shape = if array_len.is_some() {
                    Shape::Array
                } else {
                    Shape::Scalar
                };
                if array_len.is_some() && init.is_some() {
                    return err(format!("array `{name}` cannot have a scalar initialiser"));
                }
                self.declare(name, shape)
            }
            Stmt::Assign { target, value } => {
                self.check_scalar_expr(value)?;
                match target {
                    LValue::Var(name) => match self.lookup(name) {
                        Some(Shape::Scalar) => Ok(()),
                        Some(Shape::Array) => err(format!("cannot assign to array `{name}`")),
                        None => err(format!("assignment to undeclared variable `{name}`")),
                    },
                    LValue::Index { array, index } => {
                        match self.lookup(array) {
                            Some(Shape::Array) => {}
                            Some(Shape::Scalar) => {
                                return err(format!("`{array}` is not an array"))
                            }
                            None => {
                                return err(format!("assignment to undeclared array `{array}`"))
                            }
                        }
                        self.check_scalar_expr(index)
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_scalar_expr(cond)?;
                self.check_stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.check_stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.check_scalar_expr(cond)?;
                self.check_stmt(body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_scalar_expr(cond)?;
                }
                if let Some(step) = step {
                    if matches!(**step, Stmt::Decl { .. }) {
                        return err("declaration not allowed in `for` step");
                    }
                    self.check_stmt(step)?;
                }
                self.check_stmt(body)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value) => match (value, self.current_returns_value) {
                (Some(v), true) => self.check_scalar_expr(v),
                (None, false) => Ok(()),
                (Some(_), false) => err("void function returns a value"),
                (None, true) => err("non-void function returns without a value"),
            },
            Stmt::ExprStmt(e) => {
                if matches!(e, Expr::Call { .. }) {
                    self.check_call(e).map(|_| ())
                } else {
                    err("expression statement must be a call")
                }
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.check_stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
        }
    }
}

/// Does a statement guarantee a `return` on every control path?
fn always_returns(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return(_) => true,
        Stmt::If {
            then_branch,
            else_branch: Some(e),
            ..
        } => always_returns(then_branch) && always_returns(e),
        Stmt::Block(stmts) => stmts.iter().any(always_returns),
        _ => false,
    }
}

/// Type-check a parsed [`Program`].
///
/// # Errors
/// Returns the first semantic violation with an explanatory message.
pub fn check(program: &Program) -> Result<(), SemaError> {
    let mut funcs: HashMap<&str, FuncSig> = HashMap::new();
    let mut globals: HashMap<&str, Shape> = HashMap::new();
    for item in &program.items {
        match item {
            Item::Function(f) => {
                if funcs.contains_key(f.name.as_str()) || globals.contains_key(f.name.as_str()) {
                    return err(format!("duplicate definition of `{}`", f.name));
                }
                if f.name == "__in" || f.name == "__out" {
                    return err(format!("`{}` is a reserved builtin", f.name));
                }
                let mut seen = HashMap::new();
                for p in &f.params {
                    if seen.insert(&p.name, ()).is_some() {
                        return err(format!("duplicate parameter `{}` in `{}`", p.name, f.name));
                    }
                }
                funcs.insert(
                    &f.name,
                    FuncSig {
                        params: f.params.iter().map(|p| p.is_array).collect(),
                        returns_value: f.returns_value,
                    },
                );
            }
            Item::Global(g) => {
                if globals.contains_key(g.name.as_str()) || funcs.contains_key(g.name.as_str()) {
                    return err(format!("duplicate definition of `{}`", g.name));
                }
                let shape = if g.array_len.is_some() {
                    Shape::Array
                } else {
                    Shape::Scalar
                };
                globals.insert(&g.name, shape);
            }
        }
    }

    for f in program.functions() {
        let mut checker = Checker {
            funcs: HashMap::new(),
            globals: globals.clone(),
            scopes: vec![HashMap::new()],
            current_returns_value: f.returns_value,
        };
        // Re-borrow function table (moving it in/out of the checker keeps
        // the borrow checker happy without cloning signatures).
        std::mem::swap(&mut checker.funcs, &mut funcs);
        for p in &f.params {
            let shape = if p.is_array {
                Shape::Array
            } else {
                Shape::Scalar
            };
            checker.declare(&p.name, shape)?;
        }
        let mut result = Ok(());
        for s in &f.body {
            result = checker.check_stmt(s);
            if result.is_err() {
                break;
            }
        }
        std::mem::swap(&mut checker.funcs, &mut funcs);
        result?;
        if f.returns_value && !f.body.iter().any(always_returns) {
            return err(format!(
                "function `{}` does not return on every path",
                f.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(&lex(src).expect("lex")).expect("parse"))
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            "int g = 1;
             int tab[4];
             int add(int a, int b) { return a + b; }
             void fill(int a[], int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i; } return; }
             int main() { fill(tab, 4); return add(tab[0], g); }",
        )
        .expect("well-typed");
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("int f() { return x; }").unwrap_err();
        assert!(e.message.contains('x'), "{e}");
    }

    #[test]
    fn rejects_array_as_scalar() {
        assert!(check_src("int f() { int a[3]; return a; }").is_err());
    }

    #[test]
    fn rejects_indexing_scalar() {
        assert!(check_src("int f() { int a = 0; return a[0]; }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(check_src("int g(int a) { return a; } int f() { return g(1, 2); }").is_err());
    }

    #[test]
    fn rejects_scalar_for_array_param() {
        assert!(
            check_src("int g(int a[]) { return a[0]; } int f() { int x = 0; return g(x); }")
                .is_err()
        );
    }

    #[test]
    fn rejects_void_call_as_value() {
        assert!(check_src("void g() { return; } int f() { return g(); }").is_err());
    }

    #[test]
    fn rejects_missing_return() {
        assert!(check_src("int f(int x) { if (x) { return 1; } }").is_err());
    }

    #[test]
    fn accepts_if_else_return_coverage() {
        check_src("int f(int x) { if (x) { return 1; } else { return 2; } }").expect("covered");
    }

    #[test]
    fn rejects_duplicate_in_same_scope_allows_shadowing_in_inner() {
        assert!(check_src("int f() { int x = 0; int x = 1; return x; }").is_err());
        check_src("int f() { int x = 0; { int x = 1; x = x; } return x; }").expect("shadowing ok");
    }

    #[test]
    fn rejects_duplicate_functions_and_globals() {
        assert!(check_src("int f() { return 0; } int f() { return 1; }").is_err());
        assert!(check_src("int g; int g;").is_err());
        assert!(check_src("int g; int g() { return 0; }").is_err());
    }

    #[test]
    fn builtin_ports_validated() {
        check_src("int f() { __out(1, 2); return __in(0); }").expect("ports ok");
        assert!(check_src("int f() { return __in(256); }").is_err());
        assert!(check_src("int f(int p) { return __in(p); }").is_err());
    }

    #[test]
    fn rejects_reserved_builtin_redefinition() {
        assert!(check_src("int __in(int p) { return p; }").is_err());
    }

    #[test]
    fn rejects_return_shape_mismatches() {
        assert!(check_src("void f() { return 1; }").is_err());
        assert!(check_src("int f() { return; }").is_err());
    }

    #[test]
    fn for_scope_is_local() {
        assert!(check_src("int f() { for (int i = 0; i < 3; i = i + 1) { } return i; }").is_err());
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        assert!(check_src("int f() { 1 + 2; return 0; }").is_err());
    }
}
