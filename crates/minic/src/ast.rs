//! Mini-C abstract syntax tree.

use serde::{Deserialize, Serialize};

/// A raw TeamPlay annotation captured from `/*@ ... @*/`.
///
/// The payload grammar is owned by `teamplay-csl`; the front-end only keeps
/// the text and where it was attached. Loop-bound payloads (`loop
/// bound(n)`) are additionally understood by [`crate::loops`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// Trimmed payload text between `/*@` and `@*/`.
    pub text: String,
    /// Source line the annotation started on.
    pub line: u32,
}

/// Binary operators (C semantics on 32-bit two's-complement integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` (0 on division by zero, PG32 hardware convention)
    Div,
    /// `%` (0 on remainder by zero)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (count masked to 5 bits)
    Shl,
    /// `>>` logical (Mini-C `int` shifts are logical, matching PG32 `lsr`)
    Shr,
    /// `<` yielding 0/1
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` short-circuit
    LogAnd,
    /// `||` short-circuit
    LogOr,
}

impl BinOp {
    /// `true` for the six relational operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `-` (wrapping negation)
    Neg,
    /// `~`
    BitNot,
    /// `!` yielding 0/1
    LogNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal (already wrapped to 32 bits).
    Lit(i32),
    /// Scalar variable reference.
    Var(String),
    /// `array[index]`.
    Index {
        /// Array name (local, parameter or global).
        array: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function call; array arguments are passed by reference (their name
    /// appears as a bare `Var`).
    Call {
        /// Callee name, or the builtins `__in` / `__out`.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index {
        /// Array name.
        array: String,
        /// Index expression.
        index: Expr,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `int x = e;` or `int a[n];`
    Decl {
        /// Variable name.
        name: String,
        /// Array length if this declares an array.
        array_len: Option<u32>,
        /// Scalar initialiser (arrays are zero-initialised).
        init: Option<Expr>,
    },
    /// `lv = e;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) t else f`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while (c) body`, with any annotations that preceded it.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Annotations attached to the loop (e.g. `loop bound(64)`).
        annotations: Vec<Annotation>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means `1`).
        cond: Option<Expr>,
        /// Optional step statement (assignment).
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Box<Stmt>,
        /// Annotations attached to the loop.
        annotations: Vec<Annotation>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// An expression evaluated for effect (a call).
    ExprStmt(Expr),
    /// `{ ... }`
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// `true` for `int name[]` (passed as a reference to the caller's
    /// array), `false` for scalar `int name`.
    pub is_array: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// `true` if declared `int`, `false` if `void`.
    pub returns_value: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Annotations that preceded the definition (tasks, budgets, secrets).
    pub annotations: Vec<Annotation>,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Array length, or `None` for a scalar.
    pub array_len: Option<u32>,
    /// Initial values (length 1 for scalars; padded with zeros for
    /// arrays).
    pub init: Vec<i32>,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Item {
    /// A function definition.
    Function(Function),
    /// A global variable.
    Global(Global),
}

/// A whole Mini-C translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterate over the function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            Item::Global(_) => None,
        })
    }

    /// Iterate over the global variables.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            Item::Function(_) => None,
        })
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogAnd.is_comparison());
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            items: vec![
                Item::Global(Global {
                    name: "g".into(),
                    array_len: None,
                    init: vec![3],
                }),
                Item::Function(Function {
                    name: "f".into(),
                    params: vec![],
                    returns_value: true,
                    body: vec![Stmt::Return(Some(Expr::Lit(0)))],
                    annotations: vec![],
                }),
            ],
        };
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.globals().count(), 1);
        assert!(p.function("f").is_some());
        assert!(p.function("missing").is_none());
    }
}
