//! Generic control-flow-graph analyses.
//!
//! These algorithms are shared by the IR-level passes in
//! `teamplay-compiler` and by the binary-level WCET/energy analysers in
//! `teamplay-wcet` / `teamplay-energy` (which implement [`CfgView`] for
//! PG32 functions): reverse postorder, immediate dominators (the classic
//! Cooper–Harvey–Kennedy iteration) and natural-loop discovery.

use std::collections::BTreeSet;

/// Minimal read-only view of a CFG with blocks numbered `0..num_blocks()`.
pub trait CfgView {
    /// Number of blocks.
    fn num_blocks(&self) -> usize;
    /// Entry block index.
    fn entry(&self) -> usize;
    /// Successor block indices of `block`.
    fn successors(&self, block: usize) -> Vec<usize>;
}

impl CfgView for crate::ir::IrFunction {
    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
    fn entry(&self) -> usize {
        0
    }
    fn successors(&self, block: usize) -> Vec<usize> {
        self.blocks[block]
            .term
            .successors()
            .iter()
            .map(|b| b.index())
            .collect()
    }
}

/// Predecessor lists for every block.
pub fn predecessors<G: CfgView>(g: &G) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); g.num_blocks()];
    for b in 0..g.num_blocks() {
        for s in g.successors(b) {
            preds[s].push(b);
        }
    }
    preds
}

/// Blocks in reverse postorder from the entry; unreachable blocks are
/// omitted.
pub fn reverse_postorder<G: CfgView>(g: &G) -> Vec<usize> {
    let n = g.num_blocks();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit "children done" marker.
    let mut stack: Vec<(usize, bool)> = vec![(g.entry(), false)];
    while let Some((node, done)) = stack.pop() {
        if done {
            post.push(node);
            continue;
        }
        if visited[node] {
            continue;
        }
        visited[node] = true;
        stack.push((node, true));
        let succs = g.successors(node);
        for s in succs.into_iter().rev() {
            if !visited[s] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Immediate dominators, indexed by block (`idom[entry] == entry`).
/// Unreachable blocks map to `usize::MAX`.
pub fn immediate_dominators<G: CfgView>(g: &G) -> Vec<usize> {
    let n = g.num_blocks();
    let rpo = reverse_postorder(g);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[*b] = i;
    }
    let preds = predecessors(g);
    let mut idom = vec![usize::MAX; n];
    idom[g.entry()] = g.entry();

    let intersect = |idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b == g.entry() {
                continue;
            }
            let mut new_idom = usize::MAX;
            for &p in &preds[b] {
                if idom[p] == usize::MAX {
                    continue; // predecessor not yet processed / unreachable
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_index, new_idom, p)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Does `a` dominate `b`? (Both must be reachable.)
pub fn dominates(idom: &[usize], entry: usize, a: usize, mut b: usize) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == entry || idom[b] == usize::MAX {
            return false;
        }
        b = idom[b];
    }
}

/// A natural loop: its header and the set of blocks in its body
/// (including the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the target of the back edge).
    pub header: usize,
    /// All blocks in the loop, header included.
    pub body: BTreeSet<usize>,
}

/// Discover natural loops via back edges (`latch → header` where the
/// header dominates the latch). Loops sharing a header are merged, as is
/// conventional.
pub fn natural_loops<G: CfgView>(g: &G) -> Vec<NaturalLoop> {
    let idom = immediate_dominators(g);
    let preds = predecessors(g);
    let entry = g.entry();
    let mut loops: Vec<NaturalLoop> = Vec::new();
    let reachable: Vec<bool> = {
        let mut r = vec![false; g.num_blocks()];
        for b in reverse_postorder(g) {
            r[b] = true;
        }
        r
    };
    for b in 0..g.num_blocks() {
        if !reachable[b] {
            continue;
        }
        for s in g.successors(b) {
            if dominates(&idom, entry, s, b) {
                // Back edge b -> s; collect the loop body by walking
                // predecessors from the latch until the header.
                let header = s;
                let mut body: BTreeSet<usize> = BTreeSet::new();
                body.insert(header);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in &preds[x] {
                            if reachable[p] {
                                stack.push(p);
                            }
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    existing.body.extend(body);
                } else {
                    loops.push(NaturalLoop { header, body });
                }
            }
        }
    }
    // Sort by header for deterministic downstream iteration.
    loops.sort_by_key(|l| l.header);
    loops
}

/// The loop-nesting forest: for each loop, the index of the innermost
/// enclosing loop in `loops` (or `None` for top-level loops).
pub fn loop_parents(loops: &[NaturalLoop]) -> Vec<Option<usize>> {
    let mut parents = vec![None; loops.len()];
    for (i, inner) in loops.iter().enumerate() {
        let mut best: Option<usize> = None;
        for (j, outer) in loops.iter().enumerate() {
            if i == j || !outer.body.contains(&inner.header) || outer.header == inner.header {
                continue;
            }
            if inner.body.is_subset(&outer.body) {
                best = match best {
                    None => Some(j),
                    Some(k) if loops[j].body.len() < loops[k].body.len() => Some(j),
                    keep => keep,
                };
            }
        }
        parents[i] = best;
    }
    parents
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny adjacency-list CFG for direct testing.
    struct TestCfg {
        succs: Vec<Vec<usize>>,
    }

    impl CfgView for TestCfg {
        fn num_blocks(&self) -> usize {
            self.succs.len()
        }
        fn entry(&self) -> usize {
            0
        }
        fn successors(&self, block: usize) -> Vec<usize> {
            self.succs[block].clone()
        }
    }

    /// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3
    fn single_loop() -> TestCfg {
        TestCfg {
            succs: vec![vec![1], vec![2], vec![1, 3], vec![]],
        }
    }

    /// Nested: 0 -> 1(h1) -> 2(h2) -> 3 -> 2, 3 -> 1 exit path 1 -> 4
    fn nested_loops() -> TestCfg {
        TestCfg {
            succs: vec![vec![1], vec![2, 4], vec![3], vec![2, 1], vec![]],
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let g = single_loop();
        let rpo = reverse_postorder(&g);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn rpo_omits_unreachable() {
        let g = TestCfg {
            succs: vec![vec![1], vec![], vec![1]],
        };
        let rpo = reverse_postorder(&g);
        assert_eq!(rpo, vec![0, 1]);
    }

    #[test]
    fn dominators_of_diamond() {
        // 0 -> {1,2} -> 3
        let g = TestCfg {
            succs: vec![vec![1, 2], vec![3], vec![3], vec![]],
        };
        let idom = immediate_dominators(&g);
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 0);
        assert_eq!(idom[3], 0);
        assert!(dominates(&idom, 0, 0, 3));
        assert!(!dominates(&idom, 0, 1, 3));
    }

    #[test]
    fn finds_single_loop() {
        let loops = natural_loops(&single_loop());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].body, BTreeSet::from([1, 2]));
    }

    #[test]
    fn finds_nested_loops_and_parents() {
        let loops = natural_loops(&nested_loops());
        assert_eq!(loops.len(), 2);
        let parents = loop_parents(&loops);
        // Inner loop (header 2) is inside outer loop (header 1).
        let outer = loops.iter().position(|l| l.header == 1).expect("outer");
        let inner = loops.iter().position(|l| l.header == 2).expect("inner");
        assert_eq!(parents[inner], Some(outer));
        assert_eq!(parents[outer], None);
        assert!(loops[outer].body.is_superset(&loops[inner].body));
    }

    #[test]
    fn self_loop_is_detected() {
        let g = TestCfg {
            succs: vec![vec![1], vec![1, 2], vec![]],
        };
        let loops = natural_loops(&g);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].body, BTreeSet::from([1]));
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let g = TestCfg {
            succs: vec![vec![1, 2], vec![3], vec![3], vec![]],
        };
        assert!(natural_loops(&g).is_empty());
    }
}
