//! # teamplay-minic — the Mini-C front-end
//!
//! TeamPlay's toolchain starts from "annotated C source" (paper Fig. 1/2).
//! This crate is the reproduction's C front-end: a small but genuine subset
//! of C ("Mini-C") with
//!
//! * a [`lexer`] that also captures `/*@ ... @*/` ETS annotations,
//! * a recursive-descent [`parser`] producing a type-checkable [`ast`],
//! * a [`sema`] pass (symbols, scopes, types, definite-return checking),
//! * an [`interp`] reference interpreter — the *semantic oracle* used to
//!   differential-test the optimising compiler against the simulator,
//! * a three-address [`ir`] with an explicit CFG, produced by [`lower`],
//! * [`mod@cfg`] analyses (predecessors, dominators, natural loops) and
//! * [`loops`] — loop-bound inference for counted loops, augmenting the
//!   `loop bound(n)` annotations that make WCET analysis possible.
//!
//! Mini-C covers what the paper's use-case kernels need: `int` scalars,
//! one-dimensional `int` arrays, functions, `if`/`while`/`for`, the full C
//! operator set over 32-bit integers, and the `__in`/`__out` port builtins
//! standing in for sensor/radio I/O.
//!
//! ```
//! use teamplay_minic::compile_to_ir;
//!
//! let src = r#"
//!     int square(int x) { return x * x; }
//!     int main() { return square(7); }
//! "#;
//! let module = compile_to_ir(src)?;
//! assert!(module.functions.iter().any(|f| f.name == "square"));
//! # Ok::<(), teamplay_minic::FrontendError>(())
//! ```

pub mod ast;
pub mod cfg;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod loops;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod sema;

pub use ast::{Annotation, Expr, Function, Item, Program, Stmt};
pub use interp::{ExecOutcome, Interp, InterpError, Ports, RecordingPorts};
pub use ir::{IrBlock, IrBlockId, IrFunction, IrModule, IrOp, MemBase, Operand, Temp};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::ParseError;
pub use printer::{print_expr, print_program};
pub use sema::SemaError;

use std::fmt;

/// Any error the front-end can produce, from source text to IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Semantic (type/scope) error.
    Sema(SemaError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex(e) => write!(f, "lex error: {e}"),
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}
impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}
impl From<SemaError> for FrontendError {
    fn from(e: SemaError) -> Self {
        FrontendError::Sema(e)
    }
}

/// Parse and type-check Mini-C source into an AST [`Program`].
///
/// # Errors
/// Returns the first lexical, syntactic or semantic error.
pub fn parse_and_check(source: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    sema::check(&program)?;
    Ok(program)
}

/// Full front-end pipeline: source text to IR module with loop bounds.
///
/// # Errors
/// Returns the first front-end error.
pub fn compile_to_ir(source: &str) -> Result<IrModule, FrontendError> {
    let program = parse_and_check(source)?;
    Ok(lower::lower_program(&program))
}
