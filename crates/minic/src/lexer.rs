//! Mini-C lexer.
//!
//! Besides ordinary C tokens the lexer recognises TeamPlay annotation
//! comments `/*@ ... @*/` and surfaces them as [`TokenKind::Annotation`]
//! tokens carrying the raw payload; the parser attaches them to the next
//! item or statement. Ordinary `/* ... */` and `// ...` comments are
//! skipped.

use std::fmt;

/// Byte offset + line number of a token, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// An identifier.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    IntLit(i64),
    /// A TeamPlay annotation `/*@ payload @*/` (payload trimmed).
    Annotation(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::Annotation(_) => write!(f, "annotation"),
            other => {
                let s = match other {
                    TokenKind::KwInt => "`int`",
                    TokenKind::KwVoid => "`void`",
                    TokenKind::KwIf => "`if`",
                    TokenKind::KwElse => "`else`",
                    TokenKind::KwWhile => "`while`",
                    TokenKind::KwFor => "`for`",
                    TokenKind::KwReturn => "`return`",
                    TokenKind::LParen => "`(`",
                    TokenKind::RParen => "`)`",
                    TokenKind::LBrace => "`{`",
                    TokenKind::RBrace => "`}`",
                    TokenKind::LBracket => "`[`",
                    TokenKind::RBracket => "`]`",
                    TokenKind::Semi => "`;`",
                    TokenKind::Comma => "`,`",
                    TokenKind::Assign => "`=`",
                    TokenKind::Plus => "`+`",
                    TokenKind::Minus => "`-`",
                    TokenKind::Star => "`*`",
                    TokenKind::Slash => "`/`",
                    TokenKind::Percent => "`%`",
                    TokenKind::Amp => "`&`",
                    TokenKind::Pipe => "`|`",
                    TokenKind::Caret => "`^`",
                    TokenKind::Tilde => "`~`",
                    TokenKind::Bang => "`!`",
                    TokenKind::Shl => "`<<`",
                    TokenKind::Shr => "`>>`",
                    TokenKind::Lt => "`<`",
                    TokenKind::Le => "`<=`",
                    TokenKind::Gt => "`>`",
                    TokenKind::Ge => "`>=`",
                    TokenKind::EqEq => "`==`",
                    TokenKind::NotEq => "`!=`",
                    TokenKind::AndAnd => "`&&`",
                    TokenKind::OrOr => "`||`",
                    TokenKind::Eof => "end of input",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Source line of the offending character.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
        }
    }

    fn skip_trivia(&mut self) -> Result<Option<Token>, LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let span = Span {
                        offset: self.pos,
                        line: self.line,
                    };
                    self.bump();
                    self.bump();
                    let is_annotation = self.peek() == Some(b'@');
                    if is_annotation {
                        self.bump();
                    }
                    let start = self.pos;
                    loop {
                        match self.peek() {
                            None => return Err(self.error("unterminated comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => break,
                            Some(b'@')
                                if is_annotation
                                    && self.src.get(self.pos + 1) == Some(&b'*')
                                    && self.src.get(self.pos + 2) == Some(&b'/') =>
                            {
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                    let end = self.pos;
                    // Consume the closing `@*/` or `*/`.
                    if self.peek() == Some(b'@') {
                        self.bump();
                    }
                    self.bump();
                    self.bump();
                    if is_annotation {
                        let payload = std::str::from_utf8(&self.src[start..end])
                            .map_err(|_| self.error("annotation is not valid UTF-8"))?
                            .trim()
                            .to_string();
                        return Ok(Some(Token {
                            kind: TokenKind::Annotation(payload),
                            span,
                        }));
                    }
                }
                _ => return Ok(None),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        if let Some(ann) = self.skip_trivia()? {
            return Ok(ann);
        }
        let span = Span {
            offset: self.pos,
            line: self.line,
        };
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };
        let kind = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    self.bump();
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
                match word {
                    "int" => TokenKind::KwInt,
                    "void" => TokenKind::KwVoid,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "for" => TokenKind::KwFor,
                    "return" => TokenKind::KwReturn,
                    _ => TokenKind::Ident(word.to_string()),
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                let hex = c == b'0' && matches!(self.peek2(), Some(b'x') | Some(b'X'));
                if hex {
                    self.bump();
                    self.bump();
                    let digits = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                        self.bump();
                    }
                    if self.pos == digits {
                        return Err(self.error("hex literal with no digits"));
                    }
                    let text = std::str::from_utf8(&self.src[digits..self.pos]).expect("ascii");
                    let value = u64::from_str_radix(text, 16)
                        .map_err(|_| self.error("hex literal out of range"))?;
                    if value > u32::MAX as u64 {
                        return Err(self.error("hex literal exceeds 32 bits"));
                    }
                    TokenKind::IntLit(value as u32 as i32 as i64)
                } else {
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                    let value: i64 = text
                        .parse()
                        .map_err(|_| self.error("integer literal out of range"))?;
                    if value > u32::MAX as i64 {
                        return Err(self.error("integer literal exceeds 32 bits"));
                    }
                    TokenKind::IntLit(value)
                }
            }
            _ => {
                self.bump();
                match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b';' => TokenKind::Semi,
                    b',' => TokenKind::Comma,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b'^' => TokenKind::Caret,
                    b'~' => TokenKind::Tilde,
                    b'&' => {
                        if self.peek() == Some(b'&') {
                            self.bump();
                            TokenKind::AndAnd
                        } else {
                            TokenKind::Amp
                        }
                    }
                    b'|' => {
                        if self.peek() == Some(b'|') {
                            self.bump();
                            TokenKind::OrOr
                        } else {
                            TokenKind::Pipe
                        }
                    }
                    b'<' => match self.peek() {
                        Some(b'<') => {
                            self.bump();
                            TokenKind::Shl
                        }
                        Some(b'=') => {
                            self.bump();
                            TokenKind::Le
                        }
                        _ => TokenKind::Lt,
                    },
                    b'>' => match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            TokenKind::Shr
                        }
                        Some(b'=') => {
                            self.bump();
                            TokenKind::Ge
                        }
                        _ => TokenKind::Gt,
                    },
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::EqEq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    b'!' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::NotEq
                        } else {
                            TokenKind::Bang
                        }
                    }
                    other => {
                        return Err(self.error(format!("unexpected character `{}`", other as char)))
                    }
                }
            }
        };
        Ok(Token { kind, span })
    }
}

/// Tokenise Mini-C source, including annotation tokens, ending with
/// a single [`TokenKind::Eof`].
///
/// # Errors
/// Returns a [`LexError`] for unterminated comments, malformed literals or
/// characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let end = tok.kind == TokenKind::Eof;
        tokens.push(tok);
        if end {
            return Ok(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lex").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("int forx while"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("forx".into()),
                TokenKind::KwWhile,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(
            kinds("42 0x2A 0xffffffff"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::IntLit(42),
                TokenKind::IntLit(-1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && ||"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_annotations_kept() {
        let toks = kinds("/* plain */ // line\n /*@ loop bound(8) @*/ int");
        assert_eq!(
            toks,
            vec![
                TokenKind::Annotation("loop bound(8)".into()),
                TokenKind::KwInt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn annotation_without_at_close_still_terminates() {
        let toks = kinds("/*@ task period(10) */ int");
        assert_eq!(
            toks,
            vec![
                TokenKind::Annotation("task period(10)".into()),
                TokenKind::KwInt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
        assert!(lex("/*@ oops").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("int\nint\nint").expect("lex");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn stray_character_is_error() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.message.contains('$'), "{err}");
    }

    #[test]
    fn literal_out_of_range_is_error() {
        assert!(lex("4294967296").is_err());
        assert!(lex("0x1ffffffff").is_err());
        assert!(lex("0x").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lexer_never_panics(src in "\\PC*") {
            let _ = lex(&src);
        }

        #[test]
        fn decimal_literals_round_trip(v in 0u32..=u32::MAX) {
            let toks = lex(&v.to_string()).expect("lex");
            prop_assert_eq!(&toks[0].kind, &TokenKind::IntLit(v as i64));
        }
    }
}
