//! Loop-bound determination.
//!
//! Static WCET analysis needs an upper bound on every loop (paper
//! Section II-A: the CSL layer and the WCC compiler exchange exactly this
//! flow-fact information). Bounds come from two sources, in priority
//! order:
//!
//! 1. an explicit `/*@ loop bound(n) @*/` annotation on the loop, and
//! 2. *counted-loop inference* for the canonical `for`/`while` patterns
//!    `for (i = c0; i < c1; i = i + c2)` where the induction variable is
//!    not otherwise written in the body.
//!
//! Inference is deliberately conservative: anything non-canonical returns
//! `None` and the toolchain demands an annotation instead — matching how
//! industrial WCET tools (aiT) treat unbounded flow facts.

use crate::ast::{Annotation, BinOp, Expr, LValue, Stmt};

/// Parse a `loop bound(n)` annotation payload.
///
/// Returns `None` if the payload is not a loop-bound annotation at all;
/// `Some(Err(...))` if it is but the bound is malformed.
pub fn parse_bound_annotation(ann: &Annotation) -> Option<Result<u32, String>> {
    let text = ann.text.trim();
    let rest = text.strip_prefix("loop")?.trim_start();
    let rest = rest.strip_prefix("bound")?.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .map(str::trim);
    Some(match inner {
        Some(num) => num
            .parse::<u32>()
            .map_err(|_| format!("line {}: invalid loop bound `{num}`", ann.line)),
        None => Err(format!(
            "line {}: malformed loop bound annotation",
            ann.line
        )),
    })
}

/// The explicit bound attached to a loop, if any.
///
/// # Errors
/// Returns an error when an annotation looks like a loop bound but cannot
/// be parsed.
pub fn annotated_bound(annotations: &[Annotation]) -> Result<Option<u32>, String> {
    for ann in annotations {
        if let Some(parsed) = parse_bound_annotation(ann) {
            return parsed.map(Some);
        }
    }
    Ok(None)
}

/// Does `stmt` (transitively) assign to the scalar variable `name` or
/// shadow it? Used to ensure the induction variable is only advanced by
/// the loop's step expression.
fn assigns_or_shadows(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::Decl { name: n, .. } => n == name, // shadowing changes meaning
        Stmt::Assign { target, .. } => match target {
            LValue::Var(n) => n == name,
            LValue::Index { .. } => false,
        },
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            assigns_or_shadows(then_branch, name)
                || else_branch
                    .as_deref()
                    .is_some_and(|e| assigns_or_shadows(e, name))
        }
        Stmt::While { body, .. } => assigns_or_shadows(body, name),
        Stmt::For {
            init, step, body, ..
        } => {
            init.as_deref().is_some_and(|s| assigns_or_shadows(s, name))
                || step.as_deref().is_some_and(|s| assigns_or_shadows(s, name))
                || assigns_or_shadows(body, name)
        }
        Stmt::Block(stmts) => stmts.iter().any(|s| assigns_or_shadows(s, name)),
        Stmt::Return(_) | Stmt::ExprStmt(_) => false,
    }
}

/// The variable name of a `var = const` init statement (declaration or
/// assignment), used by the lowerer to confirm the induction variable is a
/// function-local scalar before trusting [`infer_for_bound`] /
/// [`infer_while_bound`].
pub fn const_init_var(stmt: &Stmt) -> Option<&str> {
    as_const_init(stmt).map(|(v, _)| v)
}

/// Recognise `var = const` (declaration or assignment), returning
/// `(var, const)`.
fn as_const_init(stmt: &Stmt) -> Option<(&str, i64)> {
    match stmt {
        Stmt::Decl {
            name,
            array_len: None,
            init: Some(Expr::Lit(v)),
        } => Some((name.as_str(), *v as i64)),
        Stmt::Assign {
            target: LValue::Var(name),
            value: Expr::Lit(v),
        } => Some((name.as_str(), *v as i64)),
        _ => None,
    }
}

/// Recognise `var = var + const` / `var = var - const` with `const != 0`,
/// returning the signed step.
fn as_step(stmt: &Stmt, var: &str) -> Option<i64> {
    let Stmt::Assign {
        target: LValue::Var(name),
        value,
    } = stmt
    else {
        return None;
    };
    if name != var {
        return None;
    }
    let Expr::Bin { op, lhs, rhs } = value else {
        return None;
    };
    let step = match (op, lhs.as_ref(), rhs.as_ref()) {
        (BinOp::Add, Expr::Var(v), Expr::Lit(c)) if v == var => *c as i64,
        (BinOp::Add, Expr::Lit(c), Expr::Var(v)) if v == var => *c as i64,
        (BinOp::Sub, Expr::Var(v), Expr::Lit(c)) if v == var => -(*c as i64),
        _ => return None,
    };
    if step == 0 {
        None
    } else {
        Some(step)
    }
}

/// Recognise a comparison of the induction variable against a constant:
/// `var < c`, `var <= c`, `var > c`, `var >= c`, `var != c` (and the
/// mirrored forms), returning the normalised `(op-as-if-var-on-left, c)`.
fn as_limit(cond: &Expr, var: &str) -> Option<(BinOp, i64)> {
    let Expr::Bin { op, lhs, rhs } = cond else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Var(v), Expr::Lit(c)) if v == var => Some((*op, *c as i64)),
        (Expr::Lit(c), Expr::Var(v)) if v == var => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                BinOp::Eq => BinOp::Eq,
                BinOp::Ne => BinOp::Ne,
                _ => return None,
            };
            Some((flipped, *c as i64))
        }
        _ => None,
    }
}

/// Iteration count of a canonical counted loop, computed exactly.
fn trip_count(init: i64, limit: i64, step: i64, op: BinOp) -> Option<u32> {
    let count: i64 = match (op, step > 0) {
        (BinOp::Lt, true) => (limit - init + step - 1).max(0) / step,
        (BinOp::Le, true) => (limit - init + step).max(0) / step,
        (BinOp::Gt, false) => (init - limit + (-step) - 1).max(0) / (-step),
        (BinOp::Ge, false) => (init - limit + (-step)).max(0) / (-step),
        (BinOp::Ne, true) => {
            // i != limit counting up: exact only if the step divides.
            let diff = limit - init;
            if diff >= 0 && diff % step == 0 {
                diff / step
            } else {
                return None;
            }
        }
        (BinOp::Ne, false) => {
            let diff = init - limit;
            let s = -step;
            if diff >= 0 && diff % s == 0 {
                diff / s
            } else {
                return None;
            }
        }
        _ => return None,
    };
    u32::try_from(count).ok()
}

/// Infer a bound for a `for` loop from its clauses, or `None` if the loop
/// is not canonical. The returned bound counts **body executions**.
pub fn infer_for_bound(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
    body: &Stmt,
) -> Option<u32> {
    let (var, init_val) = as_const_init(init?)?;
    let step_val = as_step(step?, var)?;
    let (op, limit) = as_limit(cond?, var)?;
    if assigns_or_shadows(body, var) {
        return None;
    }
    trip_count(init_val, limit, step_val, op)
}

/// Infer a bound for `init; while (cond) { body; step; }` shapes where the
/// predecessor statement is the constant init. Used when lowering `while`
/// loops directly preceded by `var = const`.
pub fn infer_while_bound(prev: Option<&Stmt>, cond: &Expr, body: &Stmt) -> Option<u32> {
    let (var, init_val) = as_const_init(prev?)?;
    let (op, limit) = as_limit(cond, var)?;
    // The body must advance the variable exactly once, at its end, and not
    // touch it elsewhere. We accept a trailing step in a Block body.
    let Stmt::Block(stmts) = body else {
        return None;
    };
    let (step_stmt, rest) = stmts.split_last()?;
    let step_val = as_step(step_stmt, var)?;
    if rest.iter().any(|s| assigns_or_shadows(s, var)) {
        return None;
    }
    trip_count(init_val, limit, step_val, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(text: &str) -> Annotation {
        Annotation {
            text: text.into(),
            line: 1,
        }
    }

    #[test]
    fn parses_valid_bound_annotation() {
        assert_eq!(parse_bound_annotation(&ann("loop bound(64)")), Some(Ok(64)));
        assert_eq!(parse_bound_annotation(&ann("loop bound( 8 )")), Some(Ok(8)));
    }

    #[test]
    fn non_bound_annotations_are_ignored() {
        assert_eq!(parse_bound_annotation(&ann("task cam period(40)")), None);
        assert!(annotated_bound(&[ann("task x"), ann("loop bound(3)")]).expect("ok") == Some(3));
    }

    #[test]
    fn malformed_bound_is_error() {
        assert!(matches!(
            parse_bound_annotation(&ann("loop bound(-1)")),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_bound_annotation(&ann("loop bound")),
            Some(Err(_))
        ));
        assert!(annotated_bound(&[ann("loop bound(huge)")]).is_err());
    }

    fn stmt_assign(var: &str, value: Expr) -> Stmt {
        Stmt::Assign {
            target: LValue::Var(var.into()),
            value,
        }
    }

    fn step_plus(var: &str, c: i32) -> Stmt {
        stmt_assign(
            var,
            Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Var(var.into())),
                rhs: Box::new(Expr::Lit(c)),
            },
        )
    }

    fn cond_lt(var: &str, c: i32) -> Expr {
        Expr::Bin {
            op: BinOp::Lt,
            lhs: Box::new(Expr::Var(var.into())),
            rhs: Box::new(Expr::Lit(c)),
        }
    }

    #[test]
    fn infers_canonical_up_loop() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let body = Stmt::Block(vec![]);
        let step = step_plus("i", 1);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond_lt("i", 10)), Some(&step), &body),
            Some(10)
        );
    }

    #[test]
    fn infers_strided_and_le_loops() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let body = Stmt::Block(vec![]);
        let step3 = step_plus("i", 3);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond_lt("i", 10)), Some(&step3), &body),
            Some(4)
        );
        let le = Expr::Bin {
            op: BinOp::Le,
            lhs: Box::new(Expr::Var("i".into())),
            rhs: Box::new(Expr::Lit(10)),
        };
        let step1 = step_plus("i", 1);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&le), Some(&step1), &body),
            Some(11)
        );
    }

    #[test]
    fn infers_down_counting_loop() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(10)),
        };
        let cond = Expr::Bin {
            op: BinOp::Gt,
            lhs: Box::new(Expr::Var("i".into())),
            rhs: Box::new(Expr::Lit(0)),
        };
        let step = stmt_assign(
            "i",
            Expr::Bin {
                op: BinOp::Sub,
                lhs: Box::new(Expr::Var("i".into())),
                rhs: Box::new(Expr::Lit(2)),
            },
        );
        let body = Stmt::Block(vec![]);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond), Some(&step), &body),
            Some(5)
        );
    }

    #[test]
    fn rejects_body_writes_to_induction_var() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let step = step_plus("i", 1);
        let body = Stmt::Block(vec![stmt_assign("i", Expr::Lit(0))]);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond_lt("i", 10)), Some(&step), &body),
            None
        );
    }

    #[test]
    fn rejects_non_constant_limit() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let step = step_plus("i", 1);
        let cond = Expr::Bin {
            op: BinOp::Lt,
            lhs: Box::new(Expr::Var("i".into())),
            rhs: Box::new(Expr::Var("n".into())),
        };
        let body = Stmt::Block(vec![]);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond), Some(&step), &body),
            None
        );
    }

    #[test]
    fn ne_condition_requires_divisible_step() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let body = Stmt::Block(vec![]);
        let ne = |c: i32| Expr::Bin {
            op: BinOp::Ne,
            lhs: Box::new(Expr::Var("i".into())),
            rhs: Box::new(Expr::Lit(c)),
        };
        let step2 = step_plus("i", 2);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&ne(10)), Some(&step2), &body),
            Some(5)
        );
        assert_eq!(
            infer_for_bound(Some(&init), Some(&ne(9)), Some(&step2), &body),
            None
        );
    }

    #[test]
    fn zero_or_negative_trip_counts() {
        let init = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(20)),
        };
        let step = step_plus("i", 1);
        let body = Stmt::Block(vec![]);
        assert_eq!(
            infer_for_bound(Some(&init), Some(&cond_lt("i", 10)), Some(&step), &body),
            Some(0)
        );
    }

    #[test]
    fn while_bound_with_trailing_step() {
        let prev = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let body = Stmt::Block(vec![
            Stmt::ExprStmt(Expr::Call {
                func: "work".into(),
                args: vec![],
            }),
            step_plus("i", 1),
        ]);
        assert_eq!(
            infer_while_bound(Some(&prev), &cond_lt("i", 7), &body),
            Some(7)
        );
    }

    #[test]
    fn while_bound_rejects_midbody_writes() {
        let prev = Stmt::Decl {
            name: "i".into(),
            array_len: None,
            init: Some(Expr::Lit(0)),
        };
        let body = Stmt::Block(vec![stmt_assign("i", Expr::Lit(5)), step_plus("i", 1)]);
        assert_eq!(
            infer_while_bound(Some(&prev), &cond_lt("i", 7), &body),
            None
        );
    }
}
