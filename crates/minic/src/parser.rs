//! Recursive-descent parser for Mini-C.
//!
//! Operator precedence follows C. Annotations bind to the next item or to
//! the next `while`/`for` statement, which is how `loop bound(n)` and task
//! contracts reach the analyses.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use std::fmt;

/// Syntax error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].span.line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        // Accepts an optional leading minus for global initialisers.
        let neg = self.eat(&TokenKind::Minus);
        match *self.peek() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(self.error(format!("expected integer literal, found {other}"))),
        }
    }

    fn collect_annotations(&mut self) -> Vec<Annotation> {
        let mut anns = Vec::new();
        while let TokenKind::Annotation(text) = self.peek().clone() {
            anns.push(Annotation {
                text,
                line: self.line(),
            });
            self.bump();
        }
        anns
    }

    // ----- items -----

    fn program(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        loop {
            let annotations = self.collect_annotations();
            if *self.peek() == TokenKind::Eof {
                if !annotations.is_empty() {
                    return Err(self.error("annotation at end of file attaches to nothing"));
                }
                return Ok(Program { items });
            }
            items.push(self.item(annotations)?);
        }
    }

    fn item(&mut self, annotations: Vec<Annotation>) -> PResult<Item> {
        let returns_value = match self.peek() {
            TokenKind::KwInt => {
                self.bump();
                true
            }
            TokenKind::KwVoid => {
                self.bump();
                false
            }
            other => return Err(self.error(format!("expected `int` or `void`, found {other}"))),
        };
        let name = self.expect_ident()?;
        if *self.peek() == TokenKind::LParen {
            self.function(name, returns_value, annotations)
                .map(Item::Function)
        } else {
            if !returns_value {
                return Err(self.error("globals must have type `int`"));
            }
            if !annotations.is_empty() {
                return Err(self.error("annotations may not be attached to globals"));
            }
            self.global(name).map(Item::Global)
        }
    }

    fn global(&mut self, name: String) -> PResult<Item2> {
        let array_len = if self.eat(&TokenKind::LBracket) {
            let n = self.expect_int()?;
            if !(1..=1 << 20).contains(&n) {
                return Err(self.error("array length must be between 1 and 2^20"));
            }
            self.expect(&TokenKind::RBracket)?;
            Some(n as u32)
        } else {
            None
        };
        let mut init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if array_len.is_some() {
                self.expect(&TokenKind::LBrace)?;
                loop {
                    init.push(self.expect_int()? as u32 as i32);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                if init.len() > array_len.unwrap_or(0) as usize {
                    return Err(self.error("more initialisers than array elements"));
                }
            } else {
                init.push(self.expect_int()? as u32 as i32);
            }
        }
        self.expect(&TokenKind::Semi)?;
        let total = array_len.unwrap_or(1) as usize;
        init.resize(total, 0);
        Ok(Global {
            name,
            array_len,
            init,
        })
    }

    fn function(
        &mut self,
        name: String,
        returns_value: bool,
        annotations: Vec<Annotation>,
    ) -> PResult<Function> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                self.expect(&TokenKind::KwInt)?;
                let pname = self.expect_ident()?;
                let is_array = if self.eat(&TokenKind::LBracket) {
                    self.expect(&TokenKind::RBracket)?;
                    true
                } else {
                    false
                };
                params.push(Param {
                    name: pname,
                    is_array,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            body.push(self.statement()?);
        }
        Ok(Function {
            name,
            params,
            returns_value,
            body,
            annotations,
        })
    }

    // ----- statements -----

    fn statement(&mut self) -> PResult<Stmt> {
        let annotations = self.collect_annotations();
        let stmt = self.statement_inner(&annotations)?;
        if !annotations.is_empty() && !matches!(stmt, Stmt::While { .. } | Stmt::For { .. }) {
            return Err(self.error("annotation here must precede a `while` or `for` loop"));
        }
        Ok(stmt)
    }

    fn statement_inner(&mut self, annotations: &[Annotation]) -> PResult<Stmt> {
        match self.peek().clone() {
            TokenKind::KwInt => {
                let s = self.decl()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.statement()?);
                let else_branch = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::While {
                    cond,
                    body,
                    annotations: annotations.to_vec(),
                })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if *self.peek() == TokenKind::Semi {
                    None
                } else if *self.peek() == TokenKind::KwInt {
                    Some(Box::new(self.decl()?))
                } else {
                    Some(Box::new(self.assign_or_expr()?))
                };
                self.expect(&TokenKind::Semi)?;
                let cond = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                let step = if *self.peek() == TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.assign_or_expr()?))
                };
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    annotations: annotations.to_vec(),
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(value))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    stmts.push(self.statement()?);
                }
                Ok(Stmt::Block(stmts))
            }
            _ => {
                let s = self.assign_or_expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// `int name;`, `int name = e;`, `int name[n];` — without the semicolon
    /// (shared with `for` initialisers).
    fn decl(&mut self) -> PResult<Stmt> {
        self.expect(&TokenKind::KwInt)?;
        let name = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let n = self.expect_int()?;
            if !(1..=1 << 16).contains(&n) {
                return Err(self.error("local array length must be between 1 and 65536"));
            }
            self.expect(&TokenKind::RBracket)?;
            Ok(Stmt::Decl {
                name,
                array_len: Some(n as u32),
                init: None,
            })
        } else {
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Stmt::Decl {
                name,
                array_len: None,
                init,
            })
        }
    }

    /// Assignment or bare call — without the semicolon.
    fn assign_or_expr(&mut self) -> PResult<Stmt> {
        // Lookahead: `ident =` or `ident [ ... ] =` is an assignment.
        if let TokenKind::Ident(name) = self.peek().clone() {
            if *self.peek_ahead(1) == TokenKind::Assign {
                self.bump();
                self.bump();
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    target: LValue::Var(name),
                    value,
                });
            }
            if *self.peek_ahead(1) == TokenKind::LBracket {
                // Could be `a[i] = e` or the expression `a[i]` in a larger
                // expression; parse the index then decide.
                let save = self.pos;
                self.bump();
                self.bump();
                let index = self.expr()?;
                if self.eat(&TokenKind::RBracket) && self.eat(&TokenKind::Assign) {
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Index { array: name, index },
                        value,
                    });
                }
                self.pos = save;
            }
        }
        let e = self.expr()?;
        Ok(Stmt::ExprStmt(e))
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> PResult<Expr> {
        self.logic_or()
    }

    fn logic_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.logic_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.logic_and()?;
            lhs = Expr::Bin {
                op: BinOp::LogOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::Bin {
                op: BinOp::LogAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_xor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_and()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::Bin {
                op: BinOp::Xor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn shift(&mut self) -> PResult<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> PResult<Expr> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Bang => Some(UnOp::LogNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Un {
                op,
                operand: Box::new(operand),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::Lit(v as u32 as i32))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.expect(&TokenKind::RParen)?;
                        }
                        Ok(Expr::Call { func: name, args })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Expr::Index {
                            array: name,
                            index: Box::new(index),
                        })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

// `global` returns a `Global`, aliased to keep the Item construction tidy.
type Item2 = Global;

/// Parse a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`].
///
/// # Errors
/// Returns the first syntax error with its source line.
///
/// # Panics
/// Panics if `tokens` is empty; `lex` always ends streams with `Eof`.
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    assert!(!tokens.is_empty(), "token stream must end with Eof");
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, ParseError> {
        parse(&lex(src).expect("lex"))
    }

    #[test]
    fn parses_minimal_function() {
        let p = parse_src("int main() { return 0; }").expect("parse");
        let f = p.function("main").expect("main exists");
        assert!(f.returns_value);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_params_and_array_params() {
        let p = parse_src("void f(int a, int buf[]) { return; }").expect("parse");
        let f = p.function("f").expect("f");
        assert_eq!(f.params.len(), 2);
        assert!(!f.params[0].is_array);
        assert!(f.params[1].is_array);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("int f() { return 1 + 2 * 3; }").expect("parse");
        let f = p.function("f").expect("f");
        let Stmt::Return(Some(Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        })) = &f.body[0]
        else {
            panic!("expected add at top");
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_shift_between_add_and_rel() {
        let p = parse_src("int f() { return 1 << 2 + 3 < 4; }").expect("parse");
        let f = p.function("f").expect("f");
        // C parse: (1 << (2+3)) < 4.
        let Stmt::Return(Some(Expr::Bin {
            op: BinOp::Lt, lhs, ..
        })) = &f.body[0]
        else {
            panic!("expected < at top");
        };
        assert!(matches!(**lhs, Expr::Bin { op: BinOp::Shl, .. }));
    }

    #[test]
    fn globals_scalar_and_array() {
        let p = parse_src("int g = 5; int tab[4] = {1, 2}; int z;").expect("parse");
        let globals: Vec<_> = p.globals().collect();
        assert_eq!(globals[0].init, vec![5]);
        assert_eq!(globals[1].init, vec![1, 2, 0, 0]);
        assert_eq!(globals[2].init, vec![0]);
    }

    #[test]
    fn negative_global_initialisers() {
        let p = parse_src("int g = -7;").expect("parse");
        assert_eq!(p.globals().next().expect("g").init, vec![-7]);
    }

    #[test]
    fn loop_annotations_attach() {
        let src =
            "int f() { int s = 0; /*@ loop bound(8) @*/ while (s < 8) { s = s + 1; } return s; }";
        let p = parse_src(src).expect("parse");
        let f = p.function("f").expect("f");
        let Stmt::While { annotations, .. } = &f.body[1] else {
            panic!("expected while")
        };
        assert_eq!(annotations[0].text, "loop bound(8)");
    }

    #[test]
    fn function_annotations_attach() {
        let src = "/*@ task camera period(40) @*/ void snap() { return; }";
        let p = parse_src(src).expect("parse");
        assert_eq!(
            p.function("snap").expect("snap").annotations[0].text,
            "task camera period(40)"
        );
    }

    #[test]
    fn annotation_on_plain_statement_is_error() {
        let src = "int f() { /*@ loop bound(8) @*/ return 0; }";
        assert!(parse_src(src).is_err());
    }

    #[test]
    fn for_loop_full_form() {
        let src =
            "int f() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }";
        let p = parse_src(src).expect("parse");
        let f = p.function("f").expect("f");
        let Stmt::For {
            init, cond, step, ..
        } = &f.body[1]
        else {
            panic!("expected for")
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn for_loop_empty_clauses() {
        let src = "int f() { for (;;) { return 1; } return 0; }";
        let p = parse_src(src).expect("parse");
        let f = p.function("f").expect("f");
        let Stmt::For {
            init, cond, step, ..
        } = &f.body[0]
        else {
            panic!("expected for")
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn array_assignment_and_index_expression() {
        let src = "int f(int a[]) { a[2] = a[1] + 1; return a[2]; }";
        let p = parse_src(src).expect("parse");
        let f = p.function("f").expect("f");
        assert!(matches!(
            &f.body[0],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn array_index_expression_statement_not_misparsed() {
        // `a[f(1)] = 2;` requires backtracking over the bracketed index.
        let src = "int g(int x) { return x; } int f(int a[]) { a[g(1)] = 2; return a[1]; }";
        parse_src(src).expect("parse");
    }

    #[test]
    fn call_statement() {
        let src = "void t() { return; } int main() { t(); return 0; }";
        let p = parse_src(src).expect("parse");
        let m = p.function("main").expect("main");
        assert!(matches!(&m.body[0], Stmt::ExprStmt(Expr::Call { .. })));
    }

    #[test]
    fn unary_chains() {
        let src = "int f(int x) { return -~!x; }";
        parse_src(src).expect("parse");
    }

    #[test]
    fn missing_semi_is_error() {
        assert!(parse_src("int f() { return 0 }").is_err());
    }

    #[test]
    fn dangling_annotation_is_error() {
        assert!(parse_src("int f() { return 0; } /*@ task t @*/").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lexer::lex;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parser_never_panics(src in "\\PC{0,200}") {
            if let Ok(tokens) = lex(&src) {
                let _ = parse(&tokens);
            }
        }
    }
}
