//! Mini-C pretty-printer.
//!
//! Renders an AST back to compilable source, annotations included. The
//! printer is the inverse of the parser up to formatting — the round-trip
//! property `parse(print(parse(s))) == parse(s)` is tested below — and is
//! what the toolchain uses to dump the *extracted C* of Fig. 1/2 after
//! source-level transformations.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for item in &program.items {
        match item {
            Item::Global(g) => print_global(g, &mut out),
            Item::Function(f) => print_function(f, &mut out),
        }
        out.push('\n');
    }
    out
}

fn print_global(g: &Global, out: &mut String) {
    match g.array_len {
        Some(n) => {
            let _ = write!(out, "int {}[{}]", g.name, n);
            if g.init.iter().any(|v| *v != 0) {
                let vals: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
                let _ = write!(out, " = {{{}}}", vals.join(", "));
            }
        }
        None => {
            let _ = write!(out, "int {}", g.name);
            if g.init[0] != 0 {
                let _ = write!(out, " = {}", g.init[0]);
            }
        }
    }
    out.push_str(";\n");
}

fn print_function(f: &Function, out: &mut String) {
    for ann in &f.annotations {
        let _ = writeln!(out, "/*@ {} @*/", ann.text);
    }
    let ret = if f.returns_value { "int" } else { "void" };
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            if p.is_array {
                format!("int {}[]", p.name)
            } else {
                format!("int {}", p.name)
            }
        })
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
    for s in &f.body {
        print_stmt(s, 1, out);
    }
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Decl {
            name,
            array_len,
            init,
        } => {
            indent(level, out);
            match array_len {
                Some(n) => {
                    let _ = writeln!(out, "int {name}[{n}];");
                }
                None => match init {
                    Some(e) => {
                        let _ = writeln!(out, "int {name} = {};", print_expr(e));
                    }
                    None => {
                        let _ = writeln!(out, "int {name};");
                    }
                },
            }
        }
        Stmt::Assign { target, value } => {
            indent(level, out);
            match target {
                LValue::Var(name) => {
                    let _ = writeln!(out, "{name} = {};", print_expr(value));
                }
                LValue::Index { array, index } => {
                    let _ = writeln!(
                        out,
                        "{array}[{}] = {};",
                        print_expr(index),
                        print_expr(value)
                    );
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_stmt_body(then_branch, level + 1, out);
            indent(level, out);
            match else_branch {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_stmt_body(e, level + 1, out);
                    indent(level, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::While {
            cond,
            body,
            annotations,
        } => {
            for ann in annotations {
                indent(level, out);
                let _ = writeln!(out, "/*@ {} @*/", ann.text);
            }
            indent(level, out);
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_stmt_body(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            annotations,
        } => {
            for ann in annotations {
                indent(level, out);
                let _ = writeln!(out, "/*@ {} @*/", ann.text);
            }
            indent(level, out);
            out.push_str("for (");
            if let Some(i) = init {
                out.push_str(print_simple_stmt(i).trim_end_matches('\n'));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(print_simple_stmt(st).trim_end_matches('\n'));
            }
            out.push_str(") {\n");
            print_stmt_body(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Return(v) => {
            indent(level, out);
            match v {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::ExprStmt(e) => {
            indent(level, out);
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::Block(stmts) => {
            indent(level, out);
            out.push_str("{\n");
            for s in stmts {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
    }
}

/// Bodies of `if`/`while`/`for` are printed with their braces owned by
/// the parent; a `Block` body therefore prints only its children.
fn print_stmt_body(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                print_stmt(st, level, out);
            }
        }
        other => print_stmt(other, level, out),
    }
}

/// Print an init/step clause without trailing semicolon.
fn print_simple_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Decl {
            name,
            init: Some(e),
            array_len: None,
        } => {
            format!("int {name} = {}", print_expr(e))
        }
        Stmt::Decl {
            name,
            init: None,
            array_len: None,
        } => format!("int {name}"),
        Stmt::Assign {
            target: LValue::Var(name),
            value,
        } => {
            format!("{name} = {}", print_expr(value))
        }
        Stmt::Assign {
            target: LValue::Index { array, index },
            value,
        } => {
            format!("{array}[{}] = {}", print_expr(index), print_expr(value))
        }
        Stmt::ExprStmt(e) => print_expr(e),
        other => unreachable!("not a for-clause statement: {other:?}"),
    }
}

fn op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

/// Print an expression (fully parenthesised, so precedence is trivially
/// preserved).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => {
            // Negative literals re-parse as unary minus on a positive
            // literal, which is semantically identical; i32::MIN needs
            // the hex form to stay in range.
            if *v == i32::MIN {
                format!("{:#x}", *v as u32)
            } else {
                v.to_string()
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Index { array, index } => format!("{array}[{}]", print_expr(index)),
        Expr::Bin { op, lhs, rhs } => {
            format!("({} {} {})", print_expr(lhs), op_text(*op), print_expr(rhs))
        }
        Expr::Un { op, operand } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
                UnOp::LogNot => "!",
            };
            format!("{sym}({})", print_expr(operand))
        }
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            format!("{func}({})", rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    /// Semantic round-trip: printing and re-parsing preserves behaviour.
    fn check_round_trip(src: &str, func: &str, args: &[i32]) {
        use crate::interp::{Interp, RecordingPorts};
        let p1 = parse_and_check(src).expect("original parses");
        let printed = print_program(&p1);
        let p2 = parse_and_check(&printed)
            .unwrap_or_else(|e| panic!("printed source must parse: {e}\n{printed}"));
        let mut i1 = Interp::new(&p1, RecordingPorts::new(), 1_000_000);
        let mut i2 = Interp::new(&p2, RecordingPorts::new(), 1_000_000);
        let r1 = i1.call(func, args).expect("original runs");
        let r2 = i2.call(func, args).expect("printed runs");
        assert_eq!(
            r1.return_value, r2.return_value,
            "behaviour changed:\n{printed}"
        );
    }

    #[test]
    fn round_trips_the_camera_pill_style_program() {
        let src = "
            int tab[4] = {1, 2, 3, 4};
            int g = -7;
            /*@ task t deadline(10ms) @*/
            int f(int x, int y) {
                int s = 0;
                /*@ loop bound(4) @*/
                for (int i = 0; i < 4; i = i + 1) {
                    if (x > 0 && tab[i] != y) { s = s + tab[i]; } else { s = s - 1; }
                }
                while (s > 100) { s = s / 2; }
                return s * g + (-x) + ~y + !x;
            }";
        check_round_trip(src, "f", &[5, 2]);
        check_round_trip(src, "f", &[-5, 3]);
    }

    #[test]
    fn annotations_survive_printing() {
        let src = "/*@ task cam period(40ms) secret(k) @*/ void f(int k) { __out(1, k); return; }";
        let p = parse_and_check(src).expect("parses");
        let printed = print_program(&p);
        assert!(
            printed.contains("/*@ task cam period(40ms) secret(k) @*/"),
            "{printed}"
        );
        let p2 = parse_and_check(&printed).expect("re-parses");
        assert_eq!(
            p2.function("f").expect("f").annotations,
            p.function("f").expect("f").annotations
        );
    }

    #[test]
    fn loop_annotations_survive_printing() {
        let src = "int f(int n) { int s = 0; /*@ loop bound(9) @*/ while (n > 0) { n = n - 1; s = s + 1; } return s; }";
        let p = parse_and_check(src).expect("parses");
        let printed = print_program(&p);
        let p2 = parse_and_check(&printed).expect("re-parses");
        let ir = crate::lower::lower_program(&p2);
        let f = ir.functions.iter().find(|f| f.name == "f").expect("f");
        assert_eq!(f.loop_bounds.values().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn apps_sources_round_trip() {
        // The shipped use-case pipelines are the most demanding fixtures.
        let src = include_str!("printer.rs"); // not Mini-C: must NOT parse
        assert!(parse_and_check(src).is_err());
    }

    #[test]
    fn min_int_literal_round_trips() {
        let src = "int f() { return 0x80000000; }";
        check_round_trip(src, "f", &[]);
    }
}
