//! Three-address intermediate representation with an explicit CFG.
//!
//! The optimising compiler's passes (inlining, unrolling, strength
//! reduction, ladderisation) all operate here, and PG32 code generation
//! consumes it. The IR is deliberately *not* SSA: every Mini-C variable
//! gets a stable [`Temp`], which keeps the passes small and auditable —
//! appropriate for a certification-oriented toolchain.
//!
//! An IR-level executor ([`exec_module`]) provides a second semantic
//! oracle between the AST interpreter and the PG32 simulator, so that a
//! differential failure can be localised to lowering, optimisation or code
//! generation.

use crate::ast::{BinOp, UnOp};
use crate::interp::{eval_binop, Ports};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Temp(pub u32);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An IR operand: virtual register or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Temp(Temp),
    /// A 32-bit constant.
    Const(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Temp(t) => write!(f, "{t}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Temp> for Operand {
    fn from(t: Temp) -> Self {
        Operand::Temp(t)
    }
}

/// Base of a memory access.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemBase {
    /// A global symbol (scalar globals are arrays of length 1).
    Global(String),
    /// A function-local array, by index into [`IrFunction::local_arrays`].
    Local(u32),
    /// An array parameter whose base address lives in a temp.
    Param(Temp),
}

impl fmt::Display for MemBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemBase::Global(name) => write!(f, "@{name}"),
            MemBase::Local(id) => write!(f, "%arr{id}"),
            MemBase::Param(t) => write!(f, "*{t}"),
        }
    }
}

/// A call argument: scalar value or array reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallArg {
    /// Scalar passed by value.
    Value(Operand),
    /// Array passed by reference.
    ArrayRef(MemBase),
}

impl fmt::Display for CallArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallArg::Value(v) => write!(f, "{v}"),
            CallArg::ArrayRef(m) => write!(f, "&{m}"),
        }
    }
}

/// IR instructions (straight-line; control flow lives in [`IrTerm`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IrOp {
    /// `dst = a <op> b`. Logical `&&`/`||` never appear here (they are
    /// lowered to control flow); comparisons produce 0/1.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: Temp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination.
        dst: Temp,
        /// Operand.
        a: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination.
        dst: Temp,
        /// Source.
        src: Operand,
    },
    /// `dst = base[index]` (word indexed).
    Load {
        /// Destination.
        dst: Temp,
        /// Array base.
        base: MemBase,
        /// Word index.
        index: Operand,
    },
    /// `base[index] = value`.
    Store {
        /// Array base.
        base: MemBase,
        /// Word index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// `dst = func(args...)` (or a void call when `dst` is `None`).
    Call {
        /// Result destination.
        dst: Option<Temp>,
        /// Callee.
        func: String,
        /// Arguments.
        args: Vec<CallArg>,
    },
    /// `dst = cond ? t : f` evaluated without a branch — the constant-time
    /// select produced by ladderisation. `cond` is any value; non-zero
    /// selects `t`.
    Select {
        /// Destination.
        dst: Temp,
        /// Condition value (non-zero = take `t`).
        cond: Operand,
        /// Value if non-zero.
        t: Operand,
        /// Value if zero.
        f: Operand,
    },
    /// `dst = __in(port)`.
    In {
        /// Destination.
        dst: Temp,
        /// Port number.
        port: u8,
    },
    /// `__out(port, value)`.
    Out {
        /// Port number.
        port: u8,
        /// Written value.
        value: Operand,
    },
}

impl fmt::Display for IrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrOp::Bin { op, dst, a, b } => write!(f, "{dst} = {a} {op:?} {b}"),
            IrOp::Un { op, dst, a } => write!(f, "{dst} = {op:?} {a}"),
            IrOp::Copy { dst, src } => write!(f, "{dst} = {src}"),
            IrOp::Load { dst, base, index } => write!(f, "{dst} = {base}[{index}]"),
            IrOp::Store { base, index, value } => write!(f, "{base}[{index}] = {value}"),
            IrOp::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            IrOp::Select {
                dst,
                cond,
                t,
                f: fv,
            } => write!(f, "{dst} = {cond} ? {t} : {fv}"),
            IrOp::In { dst, port } => write!(f, "{dst} = __in({port})"),
            IrOp::Out { port, value } => write!(f, "__out({port}, {value})"),
        }
    }
}

/// IR basic-block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IrBlockId(pub u32);

impl IrBlockId {
    /// Index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IrBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IrTerm {
    /// Unconditional jump.
    Jump(IrBlockId),
    /// Two-way branch: `taken` if `cond != 0`.
    Branch {
        /// Condition value.
        cond: Operand,
        /// Successor when non-zero.
        taken: IrBlockId,
        /// Successor when zero.
        fallthrough: IrBlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
}

impl IrTerm {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<IrBlockId> {
        match self {
            IrTerm::Jump(t) => vec![*t],
            IrTerm::Branch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            IrTerm::Ret(_) => Vec::new(),
        }
    }
}

/// An IR basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrBlock {
    /// Straight-line operations.
    pub ops: Vec<IrOp>,
    /// The block's terminator.
    pub term: IrTerm,
}

/// A function parameter in IR form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrParam {
    /// Source-level name (for diagnostics and `secret(...)` annotations).
    pub name: String,
    /// Whether the parameter is an array reference.
    pub is_array: bool,
    /// The temp holding the value (or base address).
    pub temp: Temp,
}

/// An IR function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Parameters in order; their temps are `t0..tN-1`.
    pub params: Vec<IrParam>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<IrBlock>,
    /// Number of temps allocated (temps are `0..temp_count`).
    pub temp_count: u32,
    /// Sizes (in words) of function-local arrays.
    pub local_arrays: Vec<u32>,
    /// Loop bounds: header block → max header executions per loop entry.
    /// Populated from annotations and counted-loop inference.
    pub loop_bounds: HashMap<IrBlockId, u32>,
    /// Raw annotations that preceded the function definition.
    pub annotations: Vec<String>,
}

impl IrFunction {
    /// Allocate a fresh temp.
    pub fn fresh_temp(&mut self) -> Temp {
        let t = Temp(self.temp_count);
        self.temp_count += 1;
        t
    }

    /// Append a new empty block, returning its id.
    pub fn new_block(&mut self) -> IrBlockId {
        self.blocks.push(IrBlock {
            ops: Vec::new(),
            term: IrTerm::Ret(None),
        });
        IrBlockId(self.blocks.len() as u32 - 1)
    }

    /// The entry block id.
    pub fn entry(&self) -> IrBlockId {
        IrBlockId(0)
    }

    /// Validate block references and temp ranges.
    ///
    /// # Errors
    /// Returns a description of the first structural violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("{}: empty function", self.name));
        }
        let check_temp = |t: Temp| -> Result<(), String> {
            if t.0 >= self.temp_count {
                Err(format!("{}: temp {t} out of range", self.name))
            } else {
                Ok(())
            }
        };
        let check_operand = |o: Operand| match o {
            Operand::Temp(t) => check_temp(t),
            Operand::Const(_) => Ok(()),
        };
        let check_base = |m: &MemBase| match m {
            MemBase::Local(id) => {
                if *id as usize >= self.local_arrays.len() {
                    Err(format!("{}: local array {id} out of range", self.name))
                } else {
                    Ok(())
                }
            }
            MemBase::Param(t) => check_temp(*t),
            MemBase::Global(_) => Ok(()),
        };
        for b in &self.blocks {
            for op in &b.ops {
                match op {
                    IrOp::Bin { dst, a, b, .. } => {
                        check_temp(*dst)?;
                        check_operand(*a)?;
                        check_operand(*b)?;
                    }
                    IrOp::Un { dst, a, .. } => {
                        check_temp(*dst)?;
                        check_operand(*a)?;
                    }
                    IrOp::Copy { dst, src } => {
                        check_temp(*dst)?;
                        check_operand(*src)?;
                    }
                    IrOp::Load { dst, base, index } => {
                        check_temp(*dst)?;
                        check_base(base)?;
                        check_operand(*index)?;
                    }
                    IrOp::Store { base, index, value } => {
                        check_base(base)?;
                        check_operand(*index)?;
                        check_operand(*value)?;
                    }
                    IrOp::Call { dst, args, .. } => {
                        if let Some(d) = dst {
                            check_temp(*d)?;
                        }
                        for a in args {
                            match a {
                                CallArg::Value(v) => check_operand(*v)?,
                                CallArg::ArrayRef(m) => check_base(m)?,
                            }
                        }
                    }
                    IrOp::Select { dst, cond, t, f } => {
                        check_temp(*dst)?;
                        check_operand(*cond)?;
                        check_operand(*t)?;
                        check_operand(*f)?;
                    }
                    IrOp::In { dst, .. } => check_temp(*dst)?,
                    IrOp::Out { value, .. } => check_operand(*value)?,
                }
            }
            for s in b.term.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("{}: branch to out-of-range {s}", self.name));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}: {}{}",
                p.temp,
                if p.is_array { "&" } else { "" },
                p.name
            )?;
        }
        writeln!(f, ")")?;
        for (i, b) in self.blocks.iter().enumerate() {
            let bound = self
                .loop_bounds
                .get(&IrBlockId(i as u32))
                .map(|n| format!("  ; loop bound {n}"))
                .unwrap_or_default();
            writeln!(f, "bb{i}:{bound}")?;
            for op in &b.ops {
                writeln!(f, "    {op}")?;
            }
            match &b.term {
                IrTerm::Jump(t) => writeln!(f, "    jump {t}")?,
                IrTerm::Branch {
                    cond,
                    taken,
                    fallthrough,
                } => writeln!(f, "    br {cond} ? {taken} : {fallthrough}")?,
                IrTerm::Ret(Some(v)) => writeln!(f, "    ret {v}")?,
                IrTerm::Ret(None) => writeln!(f, "    ret")?,
            }
        }
        Ok(())
    }
}

/// A lowered module: functions plus global layout.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IrModule {
    /// Functions in source order.
    pub functions: Vec<IrFunction>,
    /// Globals: name → initial words (scalars have length 1).
    pub globals: Vec<(String, Vec<i32>)>,
}

impl IrModule {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut IrFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Validate every function.
    ///
    /// # Errors
    /// Returns the first structural violation.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.functions {
            f.validate()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// IR execution (testing oracle)
// ---------------------------------------------------------------------

/// Errors from the IR executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrExecError {
    /// Step budget exhausted.
    OutOfFuel,
    /// Out-of-bounds array access.
    OutOfBounds,
    /// Call stack too deep.
    StackOverflow,
    /// Unknown function name.
    UnknownFunction(String),
    /// Entry point has array parameters (not supported by the harness).
    BadEntry(String),
}

impl fmt::Display for IrExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExecError::OutOfFuel => write!(f, "IR execution fuel exhausted"),
            IrExecError::OutOfBounds => write!(f, "IR array access out of bounds"),
            IrExecError::StackOverflow => write!(f, "IR call stack overflow"),
            IrExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            IrExecError::BadEntry(n) => write!(f, "cannot call IR entry `{n}`"),
        }
    }
}

impl std::error::Error for IrExecError {}

struct IrExec<'m, P: Ports> {
    module: &'m IrModule,
    globals: HashMap<&'m str, Vec<i32>>,
    arena: Vec<Vec<i32>>,
    ports: &'m mut P,
    fuel: u64,
}

/// How an array reference is passed between IR frames.
#[derive(Clone, Copy)]
enum ArrRef {
    Global(usize), // index into ordered globals (resolved by name at use)
    Arena(usize),
}

impl<'m, P: Ports> IrExec<'m, P> {
    fn tick(&mut self) -> Result<(), IrExecError> {
        if self.fuel == 0 {
            return Err(IrExecError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn run_function(
        &mut self,
        f: &'m IrFunction,
        args: Vec<ArgVal>,
        depth: usize,
    ) -> Result<Option<i32>, IrExecError> {
        if depth > 128 {
            return Err(IrExecError::StackOverflow);
        }
        let mut temps = vec![0i32; f.temp_count as usize];
        let mut arrays: HashMap<Temp, ArrRef> = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            match a {
                ArgVal::Scalar(v) => temps[p.temp.0 as usize] = v,
                ArgVal::Array(r) => {
                    arrays.insert(p.temp, r);
                }
            }
        }
        // Allocate local arrays for this frame.
        let local_refs: Vec<ArrRef> = f
            .local_arrays
            .iter()
            .map(|len| {
                self.arena.push(vec![0; *len as usize]);
                ArrRef::Arena(self.arena.len() - 1)
            })
            .collect();

        let value = |temps: &[i32], o: Operand| -> i32 {
            match o {
                Operand::Temp(t) => temps[t.0 as usize],
                Operand::Const(c) => c,
            }
        };
        // Capture the module reference by value so the closure does not
        // borrow `self` (which the execution loop mutates).
        let module = self.module;
        let resolve = move |arrays: &HashMap<Temp, ArrRef>, base: &MemBase| -> ArrRef {
            match base {
                MemBase::Global(name) => ArrRef::Global(
                    module
                        .globals
                        .iter()
                        .position(|(n, _)| n == name)
                        .expect("validated global"),
                ),
                MemBase::Local(id) => local_refs[*id as usize],
                MemBase::Param(t) => arrays[t],
            }
        };

        let mut bb = f.entry();
        loop {
            let block = &f.blocks[bb.index()];
            for op in &block.ops {
                self.tick()?;
                match op {
                    IrOp::Bin { op, dst, a, b } => {
                        let r = eval_binop(*op, value(&temps, *a), value(&temps, *b));
                        temps[dst.0 as usize] = r;
                    }
                    IrOp::Un { op, dst, a } => {
                        let v = value(&temps, *a);
                        temps[dst.0 as usize] = match op {
                            UnOp::Neg => v.wrapping_neg(),
                            UnOp::BitNot => !v,
                            UnOp::LogNot => (v == 0) as i32,
                        };
                    }
                    IrOp::Copy { dst, src } => temps[dst.0 as usize] = value(&temps, *src),
                    IrOp::Load { dst, base, index } => {
                        let i = value(&temps, *index);
                        let r = resolve(&arrays, base);
                        let v = self.read(r, i)?;
                        temps[dst.0 as usize] = v;
                    }
                    IrOp::Store {
                        base,
                        index,
                        value: v,
                    } => {
                        let i = value(&temps, *index);
                        let val = value(&temps, *v);
                        let r = resolve(&arrays, base);
                        self.write(r, i, val)?;
                    }
                    IrOp::Call { dst, func, args } => {
                        let callee = self
                            .module
                            .function(func)
                            .ok_or_else(|| IrExecError::UnknownFunction(func.clone()))?;
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            match a {
                                CallArg::Value(v) => vals.push(ArgVal::Scalar(value(&temps, *v))),
                                CallArg::ArrayRef(m) => {
                                    vals.push(ArgVal::Array(resolve(&arrays, m)))
                                }
                            }
                        }
                        let ret = self.run_function(callee, vals, depth + 1)?;
                        if let Some(d) = dst {
                            temps[d.0 as usize] = ret.unwrap_or(0);
                        }
                    }
                    IrOp::Select {
                        dst,
                        cond,
                        t,
                        f: fv,
                    } => {
                        let c = value(&temps, *cond);
                        // Branch-free arithmetic select, exactly as the
                        // hardware `csel` computes it.
                        let mask = if c != 0 { -1i32 } else { 0 };
                        temps[dst.0 as usize] =
                            (value(&temps, *t) & mask) | (value(&temps, *fv) & !mask);
                    }
                    IrOp::In { dst, port } => temps[dst.0 as usize] = self.ports.input(*port),
                    IrOp::Out { port, value: v } => {
                        let val = value(&temps, *v);
                        self.ports.output(*port, val);
                    }
                }
            }
            self.tick()?;
            match &block.term {
                IrTerm::Jump(t) => bb = *t,
                IrTerm::Branch {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    bb = if value(&temps, *cond) != 0 {
                        *taken
                    } else {
                        *fallthrough
                    };
                }
                IrTerm::Ret(v) => return Ok(v.map(|o| value(&temps, o))),
            }
        }
    }

    fn read(&self, r: ArrRef, index: i32) -> Result<i32, IrExecError> {
        let slice: &[i32] = match r {
            ArrRef::Global(g) => &self.globals[self.module.globals[g].0.as_str()],
            ArrRef::Arena(i) => &self.arena[i],
        };
        if index < 0 || index as usize >= slice.len() {
            return Err(IrExecError::OutOfBounds);
        }
        Ok(slice[index as usize])
    }

    fn write(&mut self, r: ArrRef, index: i32, value: i32) -> Result<(), IrExecError> {
        let slice: &mut Vec<i32> = match r {
            ArrRef::Global(g) => self
                .globals
                .get_mut(self.module.globals[g].0.as_str())
                .expect("global present"),
            ArrRef::Arena(i) => &mut self.arena[i],
        };
        if index < 0 || index as usize >= slice.len() {
            return Err(IrExecError::OutOfBounds);
        }
        slice[index as usize] = value;
        Ok(())
    }
}

enum ArgVal {
    Scalar(i32),
    Array(ArrRef),
}

/// Execute `func(args)` in `module` against fresh global state.
///
/// # Errors
/// Propagates fuel exhaustion, bounds violations and call errors.
pub fn exec_module<P: Ports>(
    module: &IrModule,
    func: &str,
    args: &[i32],
    ports: &mut P,
    fuel: u64,
) -> Result<Option<i32>, IrExecError> {
    let f = module
        .function(func)
        .ok_or_else(|| IrExecError::UnknownFunction(func.to_string()))?;
    if f.params.len() != args.len() || f.params.iter().any(|p| p.is_array) {
        return Err(IrExecError::BadEntry(func.to_string()));
    }
    let mut exec = IrExec {
        module,
        globals: module
            .globals
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect(),
        arena: Vec::new(),
        ports,
        fuel,
    };
    let vals = args.iter().map(|v| ArgVal::Scalar(*v)).collect();
    exec.run_function(f, vals, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RecordingPorts;

    fn tiny_function() -> IrFunction {
        // fn f(x): return x + 1
        IrFunction {
            name: "f".into(),
            params: vec![IrParam {
                name: "x".into(),
                is_array: false,
                temp: Temp(0),
            }],
            returns_value: true,
            blocks: vec![IrBlock {
                ops: vec![IrOp::Bin {
                    op: BinOp::Add,
                    dst: Temp(1),
                    a: Operand::Temp(Temp(0)),
                    b: Operand::Const(1),
                }],
                term: IrTerm::Ret(Some(Operand::Temp(Temp(1)))),
            }],
            temp_count: 2,
            local_arrays: vec![],
            loop_bounds: HashMap::new(),
            annotations: vec![],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny_function().validate().expect("well-formed");
    }

    #[test]
    fn validate_rejects_bad_temp() {
        let mut f = tiny_function();
        f.temp_count = 1;
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_branch() {
        let mut f = tiny_function();
        f.blocks[0].term = IrTerm::Jump(IrBlockId(9));
        assert!(f.validate().is_err());
    }

    #[test]
    fn exec_runs_simple_function() {
        let module = IrModule {
            functions: vec![tiny_function()],
            globals: vec![],
        };
        let mut ports = RecordingPorts::new();
        let out = exec_module(&module, "f", &[41], &mut ports, 1000).expect("run");
        assert_eq!(out, Some(42));
    }

    #[test]
    fn exec_select_is_branch_free_mask() {
        let mut f = tiny_function();
        f.blocks[0].ops = vec![IrOp::Select {
            dst: Temp(1),
            cond: Operand::Temp(Temp(0)),
            t: Operand::Const(7),
            f: Operand::Const(9),
        }];
        let module = IrModule {
            functions: vec![f],
            globals: vec![],
        };
        let mut ports = RecordingPorts::new();
        assert_eq!(
            exec_module(&module, "f", &[1], &mut ports, 100).expect("run"),
            Some(7)
        );
        assert_eq!(
            exec_module(&module, "f", &[0], &mut ports, 100).expect("run"),
            Some(9)
        );
        assert_eq!(
            exec_module(&module, "f", &[-5], &mut ports, 100).expect("run"),
            Some(7)
        );
    }

    #[test]
    fn exec_fuel_exhausts() {
        let mut f = tiny_function();
        f.blocks[0].term = IrTerm::Jump(IrBlockId(0));
        let module = IrModule {
            functions: vec![f],
            globals: vec![],
        };
        let mut ports = RecordingPorts::new();
        assert_eq!(
            exec_module(&module, "f", &[0], &mut ports, 100),
            Err(IrExecError::OutOfFuel)
        );
    }

    #[test]
    fn display_renders_ir() {
        let f = tiny_function();
        let text = f.to_string();
        assert!(text.contains("bb0:"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }
}
