//! Lowering: AST → three-address IR.
//!
//! Beyond the usual translation, lowering is where loop bounds are pinned
//! to header blocks (from `loop bound(n)` annotations or counted-loop
//! inference) so that the downstream static analyses can consume them
//! without re-inspecting source. Short-circuit `&&`/`||` become control
//! flow; local arrays are explicitly zeroed at their declaration point so
//! that IR (and compiled-code) semantics match the reference interpreter
//! exactly.

use crate::ast::*;
use crate::ir::*;
use crate::loops;
use std::collections::HashMap;

#[derive(Clone)]
enum VarBinding {
    Scalar(Temp),
    LocalArray(u32),
    ParamArray(Temp),
    GlobalScalar(String),
    GlobalArray(String),
}

struct Lowerer<'p> {
    func: IrFunction,
    scopes: Vec<HashMap<String, VarBinding>>,
    program: &'p Program,
    current: IrBlockId,
}

impl<'p> Lowerer<'p> {
    fn emit(&mut self, op: IrOp) {
        let cur = self.current.index();
        self.func.blocks[cur].ops.push(op);
    }

    fn set_term(&mut self, term: IrTerm) {
        let cur = self.current.index();
        self.func.blocks[cur].term = term;
    }

    fn start_block(&mut self) -> IrBlockId {
        let b = self.func.new_block();
        self.current = b;
        b
    }

    fn lookup(&self, name: &str) -> VarBinding {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return b.clone();
            }
        }
        // Fall back to globals (sema guarantees existence).
        let g = self
            .program
            .globals()
            .find(|g| g.name == name)
            .expect("sema guarantees declared name");
        if g.array_len.is_some() {
            VarBinding::GlobalArray(name.to_string())
        } else {
            VarBinding::GlobalScalar(name.to_string())
        }
    }

    fn is_local_scalar(&self, name: &str) -> bool {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return matches!(b, VarBinding::Scalar(_));
            }
        }
        false
    }

    fn array_base(&self, name: &str) -> MemBase {
        match self.lookup(name) {
            VarBinding::LocalArray(id) => MemBase::Local(id),
            VarBinding::ParamArray(t) => MemBase::Param(t),
            VarBinding::GlobalArray(n) => MemBase::Global(n),
            _ => unreachable!("sema guarantees array shape"),
        }
    }

    // ----- expressions -----

    fn lower_expr(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Lit(v) => Operand::Const(*v),
            Expr::Var(name) => match self.lookup(name) {
                VarBinding::Scalar(t) => Operand::Temp(t),
                VarBinding::GlobalScalar(g) => {
                    let dst = self.func.fresh_temp();
                    self.emit(IrOp::Load {
                        dst,
                        base: MemBase::Global(g),
                        index: Operand::Const(0),
                    });
                    Operand::Temp(dst)
                }
                _ => unreachable!("sema guarantees scalar shape"),
            },
            Expr::Index { array, index } => {
                let idx = self.lower_expr(index);
                let base = self.array_base(array);
                let dst = self.func.fresh_temp();
                self.emit(IrOp::Load {
                    dst,
                    base,
                    index: idx,
                });
                Operand::Temp(dst)
            }
            Expr::Bin {
                op: BinOp::LogAnd,
                lhs,
                rhs,
            } => self.lower_short_circuit(lhs, rhs, true),
            Expr::Bin {
                op: BinOp::LogOr,
                lhs,
                rhs,
            } => self.lower_short_circuit(lhs, rhs, false),
            Expr::Bin { op, lhs, rhs } => {
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                let dst = self.func.fresh_temp();
                self.emit(IrOp::Bin { op: *op, dst, a, b });
                Operand::Temp(dst)
            }
            Expr::Un { op, operand } => {
                let a = self.lower_expr(operand);
                let dst = self.func.fresh_temp();
                self.emit(IrOp::Un { op: *op, dst, a });
                Operand::Temp(dst)
            }
            Expr::Call { .. } => self
                .lower_call(e)
                .map(Operand::Temp)
                .expect("sema guarantees value call"),
        }
    }

    /// `a && b` / `a || b` with proper short-circuit control flow,
    /// producing a 0/1 temp.
    fn lower_short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> Operand {
        let result = self.func.fresh_temp();
        let a = self.lower_expr(lhs);
        let decide = self.current;

        let rhs_block = self.start_block();
        let b = self.lower_expr(rhs);
        // Normalise rhs to 0/1.
        self.emit(IrOp::Bin {
            op: BinOp::Ne,
            dst: result,
            a: b,
            b: Operand::Const(0),
        });
        let rhs_end = self.current;

        let short_block = self.func.new_block();
        self.func.blocks[short_block.index()].ops.push(IrOp::Copy {
            dst: result,
            src: Operand::Const(if is_and { 0 } else { 1 }),
        });

        let join = self.func.new_block();
        self.func.blocks[decide.index()].term = if is_and {
            IrTerm::Branch {
                cond: a,
                taken: rhs_block,
                fallthrough: short_block,
            }
        } else {
            IrTerm::Branch {
                cond: a,
                taken: short_block,
                fallthrough: rhs_block,
            }
        };
        self.func.blocks[rhs_end.index()].term = IrTerm::Jump(join);
        self.func.blocks[short_block.index()].term = IrTerm::Jump(join);
        self.current = join;
        Operand::Temp(result)
    }

    /// Lower a call expression; returns the result temp for value calls.
    fn lower_call(&mut self, e: &Expr) -> Option<Temp> {
        let Expr::Call { func, args } = e else {
            unreachable!("lower_call invoked on non-call");
        };
        match func.as_str() {
            "__in" => {
                let Expr::Lit(port) = &args[0] else {
                    unreachable!("sema checked port")
                };
                let dst = self.func.fresh_temp();
                self.emit(IrOp::In {
                    dst,
                    port: *port as u8,
                });
                return Some(dst);
            }
            "__out" => {
                let Expr::Lit(port) = &args[0] else {
                    unreachable!("sema checked port")
                };
                let value = self.lower_expr(&args[1]);
                self.emit(IrOp::Out {
                    port: *port as u8,
                    value,
                });
                return None;
            }
            _ => {}
        }
        let callee = self.program.function(func).expect("sema guarantees callee");
        let mut lowered = Vec::with_capacity(args.len());
        for (arg, param) in args.iter().zip(&callee.params) {
            if param.is_array {
                let Expr::Var(name) = arg else {
                    unreachable!("sema checked array arg")
                };
                lowered.push(CallArg::ArrayRef(self.array_base(name)));
            } else {
                lowered.push(CallArg::Value(self.lower_expr(arg)));
            }
        }
        let dst = if callee.returns_value {
            Some(self.func.fresh_temp())
        } else {
            None
        };
        self.emit(IrOp::Call {
            dst,
            func: func.clone(),
            args: lowered,
        });
        dst
    }

    // ----- statements -----

    fn lower_stmts(&mut self, stmts: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for (i, stmt) in stmts.iter().enumerate() {
            let prev = if i > 0 { Some(&stmts[i - 1]) } else { None };
            self.lower_stmt(stmt, prev);
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, stmt: &Stmt, prev: Option<&Stmt>) {
        match stmt {
            Stmt::Decl {
                name,
                array_len,
                init,
            } => {
                if let Some(len) = array_len {
                    let id = self.func.local_arrays.len() as u32;
                    self.func.local_arrays.push(*len);
                    self.scopes
                        .last_mut()
                        .expect("scope")
                        .insert(name.clone(), VarBinding::LocalArray(id));
                    // Zero the array at the declaration point so that
                    // re-entering a scope observes fresh storage, exactly
                    // like the reference interpreter.
                    for i in 0..*len {
                        self.emit(IrOp::Store {
                            base: MemBase::Local(id),
                            index: Operand::Const(i as i32),
                            value: Operand::Const(0),
                        });
                    }
                } else {
                    let value = match init {
                        Some(e) => self.lower_expr(e),
                        None => Operand::Const(0),
                    };
                    let t = self.func.fresh_temp();
                    self.emit(IrOp::Copy { dst: t, src: value });
                    self.scopes
                        .last_mut()
                        .expect("scope")
                        .insert(name.clone(), VarBinding::Scalar(t));
                }
            }
            Stmt::Assign { target, value } => {
                let v = self.lower_expr(value);
                match target {
                    LValue::Var(name) => match self.lookup(name) {
                        VarBinding::Scalar(t) => self.emit(IrOp::Copy { dst: t, src: v }),
                        VarBinding::GlobalScalar(g) => self.emit(IrOp::Store {
                            base: MemBase::Global(g),
                            index: Operand::Const(0),
                            value: v,
                        }),
                        _ => unreachable!("sema guarantees scalar target"),
                    },
                    LValue::Index { array, index } => {
                        let idx = self.lower_expr(index);
                        let base = self.array_base(array);
                        self.emit(IrOp::Store {
                            base,
                            index: idx,
                            value: v,
                        });
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond);
                let decide = self.current;
                let then_block = self.start_block();
                self.scopes.push(HashMap::new());
                self.lower_stmt(then_branch, None);
                self.scopes.pop();
                let then_end = self.current;
                let (else_block, else_end) = if let Some(e) = else_branch {
                    let b = self.start_block();
                    self.scopes.push(HashMap::new());
                    self.lower_stmt(e, None);
                    self.scopes.pop();
                    (b, Some(self.current))
                } else {
                    let b = self.func.new_block();
                    (b, None)
                };
                let join = self.func.new_block();
                self.func.blocks[decide.index()].term = IrTerm::Branch {
                    cond: c,
                    taken: then_block,
                    fallthrough: else_block,
                };
                self.func.blocks[then_end.index()].term = IrTerm::Jump(join);
                match else_end {
                    Some(end) => self.func.blocks[end.index()].term = IrTerm::Jump(join),
                    None => self.func.blocks[else_block.index()].term = IrTerm::Jump(join),
                }
                self.current = join;
            }
            Stmt::While {
                cond,
                body,
                annotations,
            } => {
                let bound = match loops::annotated_bound(annotations) {
                    Ok(Some(b)) => Some(b),
                    Ok(None) => {
                        // Counted-loop inference, but only when the
                        // induction variable is a function-local scalar (a
                        // global could be mutated by callees in the body).
                        match prev.and_then(loops::const_init_var) {
                            Some(var) if self.is_local_scalar(var) => {
                                loops::infer_while_bound(prev, cond, body)
                            }
                            _ => None,
                        }
                    }
                    // A malformed bound annotation is treated as absent;
                    // the WCET analysis will reject the unbounded loop
                    // with a clear message.
                    Err(_) => None,
                };
                self.lower_loop(None, cond, None, body, bound);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                annotations,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init, None);
                }
                let bound = match loops::annotated_bound(annotations) {
                    Ok(Some(b)) => Some(b),
                    Ok(None) => {
                        let local_ok = init
                            .as_deref()
                            .and_then(loops::const_init_var)
                            .map(|v| self.is_local_scalar(v))
                            .unwrap_or(false);
                        if local_ok {
                            loops::infer_for_bound(
                                init.as_deref(),
                                cond.as_ref(),
                                step.as_deref(),
                                body,
                            )
                        } else {
                            None
                        }
                    }
                    Err(_) => None,
                };
                let one = Expr::Lit(1);
                let cond_expr = cond.as_ref().unwrap_or(&one);
                self.lower_loop(None, cond_expr, step.as_deref(), body, bound);
                self.scopes.pop();
            }
            Stmt::Return(value) => {
                let v = value.as_ref().map(|e| self.lower_expr(e));
                self.set_term(IrTerm::Ret(v));
                // Anything after a return in the same list is dead; give
                // it an unreachable block.
                self.start_block();
            }
            Stmt::ExprStmt(e) => {
                self.lower_call(e);
            }
            Stmt::Block(stmts) => self.lower_stmts(stmts),
        }
    }

    /// Shared loop shape: `header: if cond { body; step; jump header }`.
    fn lower_loop(
        &mut self,
        _init: Option<&Stmt>,
        cond: &Expr,
        step: Option<&Stmt>,
        body: &Stmt,
        bound: Option<u32>,
    ) {
        let pre = self.current;
        let header = self.func.new_block();
        self.func.blocks[pre.index()].term = IrTerm::Jump(header);
        self.current = header;
        if let Some(b) = bound {
            self.func.loop_bounds.insert(header, b);
        }
        let c = self.lower_expr(cond);
        let decide = self.current;

        let body_block = self.start_block();
        self.scopes.push(HashMap::new());
        self.lower_stmt(body, None);
        if let Some(step) = step {
            self.lower_stmt(step, None);
        }
        self.scopes.pop();
        let body_end = self.current;
        self.func.blocks[body_end.index()].term = IrTerm::Jump(header);

        let exit = self.func.new_block();
        self.func.blocks[decide.index()].term = IrTerm::Branch {
            cond: c,
            taken: body_block,
            fallthrough: exit,
        };
        self.current = exit;
    }
}

/// Lower a single type-checked function.
pub fn lower_function(program: &Program, f: &Function) -> IrFunction {
    let mut func = IrFunction {
        name: f.name.clone(),
        params: Vec::new(),
        returns_value: f.returns_value,
        blocks: Vec::new(),
        temp_count: 0,
        local_arrays: Vec::new(),
        loop_bounds: HashMap::new(),
        annotations: f.annotations.iter().map(|a| a.text.clone()).collect(),
    };
    func.new_block();
    let mut scope = HashMap::new();
    for p in &f.params {
        let t = func.fresh_temp();
        func.params.push(IrParam {
            name: p.name.clone(),
            is_array: p.is_array,
            temp: t,
        });
        let binding = if p.is_array {
            VarBinding::ParamArray(t)
        } else {
            VarBinding::Scalar(t)
        };
        scope.insert(p.name.clone(), binding);
    }
    let mut lowerer = Lowerer {
        func,
        scopes: vec![scope],
        program,
        current: IrBlockId(0),
    };
    lowerer.lower_stmts(&f.body);
    // The final (possibly unreachable) block falls back to `ret`.
    lowerer.set_term(IrTerm::Ret(None));
    lowerer.func
}

/// Lower a whole type-checked [`Program`] to an [`IrModule`].
pub fn lower_program(program: &Program) -> IrModule {
    let functions = program
        .functions()
        .map(|f| lower_function(program, f))
        .collect();
    let globals = program
        .globals()
        .map(|g| (g.name.clone(), g.init.clone()))
        .collect();
    IrModule { functions, globals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, RecordingPorts};
    use crate::ir::exec_module;
    use crate::parse_and_check;

    /// Differential check: AST interpreter vs IR executor.
    fn check_same(src: &str, func: &str, argsets: &[Vec<i32>]) {
        let program = parse_and_check(src).expect("front-end");
        let module = lower_program(&program);
        module.validate().expect("valid IR");
        for args in argsets {
            let mut interp = Interp::new(&program, RecordingPorts::new(), 10_000_000);
            let expected = interp.call(func, args).expect("oracle run").return_value;
            let mut ports = RecordingPorts::new();
            let got = exec_module(&module, func, args, &mut ports, 10_000_000).expect("IR run");
            assert_eq!(got, expected, "diverged for {func}({args:?})");
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        check_same(
            "int f(int a, int b) { return (a + b) * (a - b) / 3 % 7; }",
            "f",
            &[vec![10, 3], vec![-5, 9], vec![0, 0]],
        );
    }

    #[test]
    fn if_else_chains() {
        check_same(
            "int f(int x) { if (x > 10) { return 1; } else if (x > 0) { return 2; } return 3; }",
            "f",
            &[vec![20], vec![5], vec![-1]],
        );
    }

    #[test]
    fn short_circuit_value_and_control() {
        check_same(
            "int f(int a, int b) { int v = a && b; int w = a || b; if (a > 0 && b > 0) { v = v + 10; } return v * 100 + w; }",
            "f",
            &[vec![0, 0], vec![1, 0], vec![0, 3], vec![2, 2], vec![-1, -1]],
        );
    }

    #[test]
    fn while_and_for_loops() {
        check_same(
            "int f(int n) {
                int s = 0;
                int i = 0;
                /*@ loop bound(100) @*/
                while (i < n) { s = s + i; i = i + 1; }
                for (int j = 0; j < 5; j = j + 1) { s = s * 2; }
                return s;
            }",
            "f",
            &[vec![0], vec![1], vec![10]],
        );
    }

    #[test]
    fn arrays_local_global_param() {
        check_same(
            "int tab[8];
             void fill(int a[], int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i * i; } return; }
             int f(int n) {
                 int loc[8];
                 fill(tab, n);
                 fill(loc, n);
                 int s = 0;
                 for (int i = 0; i < n; i = i + 1) { s = s + tab[i] + loc[i]; }
                 return s;
             }",
            "f",
            &[vec![0], vec![4], vec![8]],
        );
    }

    #[test]
    fn local_array_rezeroed_in_loop_scope() {
        check_same(
            "int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    int a[2];
                    s = s + a[0];
                    a[0] = 99;
                }
                return s;
            }",
            "f",
            &[vec![3]],
        );
    }

    #[test]
    fn global_scalars_load_store() {
        check_same(
            "int g = 5;
             int bump(int d) { g = g + d; return g; }
             int f(int x) { bump(x); bump(x); return g; }",
            "f",
            &[vec![1], vec![-3]],
        );
    }

    #[test]
    fn unary_operators() {
        check_same(
            "int f(int x) { return -x + ~x + !x; }",
            "f",
            &[vec![0], vec![1], vec![-7], vec![i32::MAX]],
        );
    }

    #[test]
    fn ports_match() {
        let src = "int f() { int x = __in(2); __out(3, x * 2); return x; }";
        let program = parse_and_check(src).expect("front-end");
        let module = lower_program(&program);
        let mut p1 = RecordingPorts::new();
        p1.queue(2, [21]);
        let mut interp = Interp::new(&program, p1, 10_000);
        let expected = interp.call("f", &[]).expect("run").return_value;
        let exp_out = interp.into_ports().outputs;
        let mut p2 = RecordingPorts::new();
        p2.queue(2, [21]);
        let got = exec_module(&module, "f", &[], &mut p2, 10_000).expect("run");
        assert_eq!(got, expected);
        assert_eq!(p2.outputs, exp_out);
    }

    #[test]
    fn loop_bounds_recorded_for_annotation_and_inference() {
        let src = "int f(int n) {
            int s = 0;
            /*@ loop bound(12) @*/
            while (n > 0) { n = n - 1; s = s + 1; }
            for (int i = 0; i < 30; i = i + 2) { s = s + i; }
            return s;
        }";
        let module = compile(src);
        let f = module.function("f").expect("f");
        let mut bounds: Vec<u32> = f.loop_bounds.values().copied().collect();
        bounds.sort_unstable();
        assert_eq!(bounds, vec![12, 15]);
    }

    #[test]
    fn while_bound_inferred_from_preceding_init() {
        let src = "int f() {
            int s = 0;
            int i = 0;
            while (i < 9) { s = s + i; i = i + 1; }
            return s;
        }";
        let module = compile(src);
        let f = module.function("f").expect("f");
        assert_eq!(f.loop_bounds.values().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn global_induction_variable_is_not_inferred() {
        let src = "int i;
        int f() {
            int s = 0;
            for (i = 0; i < 9; i = i + 1) { s = s + 1; }
            return s;
        }";
        let module = compile(src);
        let f = module.function("f").expect("f");
        assert!(
            f.loop_bounds.is_empty(),
            "global induction var must not be inferred"
        );
    }

    fn compile(src: &str) -> IrModule {
        let program = parse_and_check(src).expect("front-end");
        let module = lower_program(&program);
        module.validate().expect("valid IR");
        module
    }

    #[test]
    fn nested_loops_all_bounded() {
        let src = "int f() {
            int s = 0;
            for (int i = 0; i < 4; i = i + 1) {
                for (int j = 0; j < 6; j = j + 1) { s = s + 1; }
            }
            return s;
        }";
        let module = compile(src);
        let f = module.function("f").expect("f");
        let mut bounds: Vec<u32> = f.loop_bounds.values().copied().collect();
        bounds.sort_unstable();
        assert_eq!(bounds, vec![4, 6]);
        check_same(src, "f", &[vec![]]);
    }

    #[test]
    fn statements_after_return_are_dead_not_crashing() {
        check_same("int f() { return 1; }", "f", &[vec![]]);
        let src = "int f(int x) { if (x) { return 1; } return 2; }";
        check_same(src, "f", &[vec![0], vec![1]]);
    }
}
