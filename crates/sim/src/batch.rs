//! Batched trace fleets over the pre-decoded engine.
//!
//! Measurement-driven flows (bound validation, energy-model fitting, the
//! predictable workflow's "measure" step) all need the same shape of
//! experiment: run one kernel over many input vectors and collect every
//! [`RunResult`]. [`simulate_batch`] fans a batch across a
//! [`minipool::Pool`] in fixed-size chunks — one [`DecodedEngine`] per
//! chunk, its data image reset before every run — so each result is a
//! pure function of `(function, input)` and the batch output is
//! **bit-identical at any pool width** (the same discipline as the
//! phase-ordering search's batched generation contract).
//!
//! [`seeded_inputs`] generates the deterministic input vectors: a single
//! seeded stream, drawn up front, so the batch is reproducible from
//! `(seed, runs, arg_count, range)` alone.

use crate::decoded::{DecodedEngine, DecodedProgram};
use crate::machine::{MachineError, RunResult};
use crate::ports::{NullDevice, PortDevice};
use minipool::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs per engine instance: large enough to amortise the engine's
/// memory-image allocation, small enough to keep a pool busy on modest
/// batches.
const CHUNK: usize = 16;

/// Deterministic input vectors for a batch: `runs` vectors of
/// `arg_count` values drawn uniformly from `lo..hi`, all from one stream
/// seeded with `seed`.
pub fn seeded_inputs(seed: u64, runs: usize, arg_count: usize, lo: i32, hi: i32) -> Vec<Vec<i32>> {
    assert!(lo < hi, "empty input range");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..runs)
        .map(|_| (0..arg_count).map(|_| rng.gen_range(lo..hi)).collect())
        .collect()
}

/// Simulate `func` over every input vector on the pool, with a
/// [`NullDevice`] per run. Results are in input order and bit-identical
/// for any pool width.
pub fn simulate_batch(
    pool: &Pool,
    program: &DecodedProgram,
    func: &str,
    inputs: &[Vec<i32>],
) -> Vec<Result<RunResult, MachineError>> {
    simulate_batch_with(pool, program, func, inputs, NullDevice::new)
}

/// [`simulate_batch`] under an explicit per-run cycle-budget watchdog:
/// any run that exceeds `watchdog_cycles` traps
/// [`MachineError::CycleLimit`] deterministically instead of burning
/// the engine's (much larger) default budget. Measurement flows with a
/// static bound in hand (e.g. the workflow's measure step, which knows
/// each variant's IPET WCET) should always prefer this entry point.
pub fn simulate_batch_budgeted(
    pool: &Pool,
    program: &DecodedProgram,
    func: &str,
    inputs: &[Vec<i32>],
    watchdog_cycles: u64,
) -> Vec<Result<RunResult, MachineError>> {
    simulate_batch_inner(
        pool,
        program,
        func,
        inputs,
        NullDevice::new,
        Some(watchdog_cycles),
    )
}

/// [`simulate_batch`] with a caller-supplied device factory — one fresh
/// device per run, so device state can never couple runs (or pool
/// widths) together.
pub fn simulate_batch_with<D, F>(
    pool: &Pool,
    program: &DecodedProgram,
    func: &str,
    inputs: &[Vec<i32>],
    make_device: F,
) -> Vec<Result<RunResult, MachineError>>
where
    D: PortDevice,
    F: Fn() -> D + Sync,
{
    simulate_batch_inner(pool, program, func, inputs, make_device, None)
}

fn simulate_batch_inner<D, F>(
    pool: &Pool,
    program: &DecodedProgram,
    func: &str,
    inputs: &[Vec<i32>],
    make_device: F,
    watchdog_cycles: Option<u64>,
) -> Vec<Result<RunResult, MachineError>>
where
    D: PortDevice,
    F: Fn() -> D + Sync,
{
    // Fixed-size chunks (never pool-width-derived): the chunk boundaries,
    // and therefore each run's engine state, are independent of how many
    // workers execute them.
    let chunks: Vec<&[Vec<i32>]> = inputs.chunks(CHUNK).collect();
    let per_chunk: Vec<Vec<Result<RunResult, MachineError>>> = pool.par_map(&chunks, |_, chunk| {
        let mut engine: DecodedEngine<'_> = program.engine();
        if let Some(budget) = watchdog_cycles {
            engine.set_max_cycles(budget);
        }
        chunk
            .iter()
            .map(|args| {
                // Globals mutate during a run; reset so every run sees
                // the pristine image regardless of chunk position.
                engine.reset_data();
                engine.call(func, args, &mut make_device())
            })
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use teamplay_isa::{
        AluOp, Block, BlockId, Cond, Function, Insn, Operand, Program, Reg, Terminator,
    };

    /// triangle(n): sum 0..n via a loop — input-dependent cycles.
    fn triangle_program() -> Program {
        let mut p = Program::new();
        let f = Function {
            name: "tri".into(),
            blocks: vec![
                Block {
                    insns: vec![
                        Insn::Mov {
                            rd: Reg::R1,
                            src: Operand::Imm(0),
                        },
                        Insn::Mov {
                            rd: Reg::R2,
                            src: Operand::Imm(0),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R2,
                        src: Operand::Reg(Reg::R0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(3),
                    },
                },
                Block {
                    insns: vec![
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R1,
                            rn: Reg::R1,
                            src: Operand::Reg(Reg::R2),
                        },
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R2,
                            rn: Reg::R2,
                            src: Operand::Imm(1),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Reg(Reg::R1),
                    }],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        p
    }

    #[test]
    fn seeded_inputs_are_reproducible_and_ranged() {
        let a = seeded_inputs(42, 20, 3, -5, 5);
        let b = seeded_inputs(42, 20, 3, -5, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|v| v.len() == 3));
        assert!(a.iter().flatten().all(|&x| (-5..5).contains(&x)));
        assert_ne!(a, seeded_inputs(43, 20, 3, -5, 5));
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let p = triangle_program();
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let inputs = seeded_inputs(7, 37, 1, 0, 40);
        let batch = simulate_batch(&Pool::new(4), &decoded, "tri", &inputs);
        assert_eq!(batch.len(), inputs.len());
        let mut engine = decoded.engine();
        for (args, got) in inputs.iter().zip(&batch) {
            engine.reset_data();
            let want = engine.call("tri", args, &mut NullDevice::new());
            assert_eq!(&want, got, "{args:?}");
            let n = args[0].max(0);
            assert_eq!(got.as_ref().expect("runs").return_value, n * (n - 1) / 2);
        }
    }

    #[test]
    fn pool_width_never_changes_results() {
        let p = triangle_program();
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let inputs = seeded_inputs(11, 50, 1, 0, 60);
        let narrow = simulate_batch(&Pool::new(1), &decoded, "tri", &inputs);
        for width in [2, 4, 7] {
            let wide = simulate_batch(&Pool::new(width), &decoded, "tri", &inputs);
            assert_eq!(narrow, wide, "pool width {width}");
            for (a, b) in narrow.iter().zip(&wide) {
                if let (Ok(x), Ok(y)) = (a, b) {
                    assert_eq!(x.energy_pj.to_bits(), y.energy_pj.to_bits());
                }
            }
        }
    }

    #[test]
    fn budgeted_batch_traps_runaway_runs_and_matches_otherwise() {
        let p = triangle_program();
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let inputs = vec![vec![2], vec![50], vec![3]];
        let batch = simulate_batch_budgeted(minipool::global(), &decoded, "tri", &inputs, 60);
        // tri(2)/tri(3) fit 60 cycles; tri(50) cannot.
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(MachineError::CycleLimit));
        assert!(batch[2].is_ok());
        // Inside the budget the results are the unbudgeted results.
        let free = simulate_batch(minipool::global(), &decoded, "tri", &inputs);
        assert_eq!(batch[0], free[0]);
        assert_eq!(batch[2], free[2]);
    }

    #[test]
    fn errors_surface_per_input() {
        let p = triangle_program();
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let inputs = vec![vec![3], vec![0; 7], vec![5]];
        let batch = simulate_batch(minipool::global(), &decoded, "tri", &inputs);
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(MachineError::TooManyArgs));
        assert!(batch[2].is_ok());
    }
}
