//! Simulated I/O port devices (sensors, radio, actuators).

use std::collections::HashMap;

/// The machine's window to the outside world, backing the PG32 `in`/`out`
/// instructions.
pub trait PortDevice {
    /// Produce the next value available on `port`.
    fn input(&mut self, port: u8) -> i32;
    /// Accept a value written to `port`.
    fn output(&mut self, port: u8, value: i32);
}

/// A device that returns 0 on every input and discards outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDevice;

impl NullDevice {
    /// Create a null device.
    pub fn new() -> Self {
        NullDevice
    }
}

impl PortDevice for NullDevice {
    fn input(&mut self, _port: u8) -> i32 {
        0
    }
    fn output(&mut self, _port: u8, _value: i32) {}
}

/// A device with per-port input queues that records all outputs, mirroring
/// `teamplay_minic`'s `RecordingPorts` so differential tests can drive
/// interpreter and machine identically.
#[derive(Debug, Clone, Default)]
pub struct RecordingDevice {
    inputs: HashMap<u8, Vec<i32>>,
    cursor: HashMap<u8, usize>,
    /// Every `(port, value)` written, in order.
    pub outputs: Vec<(u8, i32)>,
}

impl RecordingDevice {
    /// Empty device; inputs past the queued values read as 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue input values on a port.
    pub fn queue(&mut self, port: u8, values: impl IntoIterator<Item = i32>) {
        self.inputs.entry(port).or_default().extend(values);
    }
}

impl PortDevice for RecordingDevice {
    fn input(&mut self, port: u8) -> i32 {
        let idx = self.cursor.entry(port).or_insert(0);
        let v = self
            .inputs
            .get(&port)
            .and_then(|q| q.get(*idx))
            .copied()
            .unwrap_or(0);
        *idx += 1;
        v
    }

    fn output(&mut self, port: u8, value: i32) {
        self.outputs.push((port, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_device_reads_zero() {
        let mut d = NullDevice::new();
        assert_eq!(d.input(7), 0);
        d.output(7, 5); // no-op, must not panic
    }

    #[test]
    fn recording_device_queues_and_records() {
        let mut d = RecordingDevice::new();
        d.queue(1, [10, 20]);
        assert_eq!(d.input(1), 10);
        assert_eq!(d.input(1), 20);
        assert_eq!(d.input(1), 0);
        assert_eq!(d.input(2), 0);
        d.output(3, 7);
        d.output(3, 8);
        assert_eq!(d.outputs, vec![(3, 7), (3, 8)]);
    }
}
