//! # teamplay-sim — the COTS platform substitutes
//!
//! The paper evaluates on real hardware (Cortex-M0 camera pill, LEON3FT
//! GR712RC, Apalis TK1 / Jetson TX2 / Nano). This crate provides the
//! simulated equivalents the reproduction runs on:
//!
//! * [`machine`] — a cycle-accurate executor for PG32 programs with a
//!   *hidden ground-truth energy model* ([`truth`]). Static analyses never
//!   see this model directly; they see either the fitted analytical model
//!   (`teamplay-energy`) or noisy "measurements" from runs here — exactly
//!   the epistemic situation of the real toolchain, where aiT and the
//!   EnergyAnalyser predict what the lab power rig then measures.
//! * [`complex`] — a task-level simulator for complex heterogeneous
//!   platforms (TK1-like big CPU cluster + GPU) with DVFS operating
//!   points, execution-time jitter and sampled power measurement: the
//!   substrate for the dynamic-profiling workflow of paper Fig. 2.
//! * [`battery`] — the UAV battery/endurance model used by the
//!   search-and-rescue use case (Section IV-C).
//! * [`ports`] — simulated sensor/radio port devices shared with the
//!   front-end interpreter conventions.

pub mod battery;
pub mod complex;
pub mod machine;
pub mod ports;
pub mod truth;

pub use battery::Battery;
pub use complex::{ComplexPlatform, CoreDesc, CoreKind, OperatingPoint, TaskExecution, WorkItem};
pub use machine::{Machine, MachineError, RunResult};
pub use ports::{NullDevice, PortDevice, RecordingDevice};
pub use truth::GroundTruthEnergy;
