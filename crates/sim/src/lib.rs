//! # teamplay-sim — the COTS platform substitutes
//!
//! The paper evaluates on real hardware (Cortex-M0 camera pill, LEON3FT
//! GR712RC, Apalis TK1 / Jetson TX2 / Nano). This crate provides the
//! simulated equivalents the reproduction runs on.
//!
//! ## The PG32 execution stack: reference, decoded, fault wrapper
//!
//! PG32 programs execute on three layers with one contract:
//!
//! * [`machine`] — the **reference interpreter**. It walks the CFG form
//!   directly, instruction by instruction, calling the cost models as it
//!   goes. It is deliberately simple — close to a transliteration of the
//!   PG32 semantics — and is the *authoritative* definition of what a run
//!   costs: every other execution path is judged against it. Loading is
//!   fallible with a structured [`LoadError`] (matchable alongside the
//!   [`MachineError`] runtime traps), and every run executes under a
//!   cycle-budget watchdog ([`machine::DEFAULT_MAX_CYCLES`] unless
//!   overridden) so runaway kernels trap `CycleLimit` deterministically.
//! * [`decoded`] — the **pre-decoded engine**. A one-time lowering bakes
//!   a validated program into flat, index-addressed op and cost arrays
//!   ([`DecodedProgram`]); a direct-threaded dispatch loop
//!   ([`DecodedEngine`]) then executes with no per-step map lookups,
//!   operand matches or cost-model calls. Its [`RunResult`]s are
//!   **bit-identical** to the reference (energy included, to the last
//!   f64 bit) — enforced by the differential oracle suite — so it is the
//!   engine of choice wherever throughput matters: batched measurement,
//!   bound validation, energy-model fitting.
//! * [`fault`] — the **fault-injection wrapper** around the reference.
//!   [`Machine::call_faulted`] runs to a target cycle, applies one
//!   single-event upset (register/memory bit flip or instruction skip),
//!   and keeps executing; [`fault::run_campaign`] fans seeded
//!   [`fault::FaultPlan`]s across the pool and classifies each run as
//!   masked / silent data corruption / trapped / timing violation /
//!   hang against the fault-free reference observables. The wrapper
//!   injects *through* the reference semantics — with no fault attached
//!   the path is bit-identical to [`Machine::call`] — and its masked
//!   verdicts are cross-checked against the decoded engine.
//!
//! The reference stays authoritative (new ISA semantics land there
//! first); the decoded engine is a performance artefact whose only
//! license to exist is bit-identity; the fault wrapper perturbs single
//! runs but never redefines semantics. [`batch`] builds on the decoded
//! engine: [`simulate_batch`] fans deterministic seeded input vectors
//! ([`seeded_inputs`]) across a `minipool` pool with results in input
//! order, bit-identical at any pool width — and fault campaigns reuse
//! exactly that fixed-chunk determinism discipline.
//!
//! Both engines charge a *hidden ground-truth energy model* ([`truth`]).
//! Static analyses never see this model directly; they see either the
//! fitted analytical model (`teamplay-energy`) or noisy "measurements"
//! from runs here — exactly the epistemic situation of the real
//! toolchain, where aiT and the EnergyAnalyser predict what the lab
//! power rig then measures.
//!
//! ## Task-level simulation
//!
//! * [`complex`] — a task-level simulator for complex heterogeneous
//!   platforms (TK1-like big CPU cluster + GPU) with DVFS operating
//!   points, execution-time jitter and sampled power measurement: the
//!   substrate for the dynamic-profiling workflow of paper Fig. 2.
//! * [`battery`] — the UAV battery/endurance model used by the
//!   search-and-rescue use case (Section IV-C).
//! * [`ports`] — simulated sensor/radio port devices shared with the
//!   front-end interpreter conventions.

pub mod batch;
pub mod battery;
pub mod complex;
pub mod decoded;
pub mod fault;
pub mod machine;
pub mod ports;
pub mod truth;

pub use batch::{seeded_inputs, simulate_batch, simulate_batch_budgeted, simulate_batch_with};
pub use battery::Battery;
pub use complex::{ComplexPlatform, CoreDesc, CoreKind, OperatingPoint, TaskExecution, WorkItem};
pub use decoded::{DecodedEngine, DecodedProgram, OpCost};
pub use fault::{
    run_campaign, run_campaign_with_plan, CampaignConfig, CampaignResult, CampaignStats, FaultKind,
    FaultOutcome, FaultPlan, FaultSpec,
};
pub use machine::{LoadError, Machine, MachineError, RunResult};
pub use ports::{NullDevice, PortDevice, RecordingDevice};
pub use truth::GroundTruthEnergy;
