//! Battery / endurance model for the UAV use case (paper Section IV-C).
//!
//! The paper reports a fixed-wing SAR drone whose mechanical components
//! draw ≈ 28 W in cruise while the software payload draws 2–11 W; an 18 %
//! software-energy saving translated into ≈ 4 extra minutes of flight.
//! [`Battery`] is the integration model behind that arithmetic.

use serde::{Deserialize, Serialize};

/// An ideal energy reservoir (losses folded into the usable capacity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// A battery with the given usable capacity in joules.
    ///
    /// # Panics
    /// Panics if `capacity_j` is not a positive, finite number.
    pub fn new(capacity_j: f64) -> Battery {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "capacity must be positive"
        );
        Battery {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// A battery specified in watt-hours.
    pub fn from_wh(wh: f64) -> Battery {
        Battery::new(wh * 3600.0)
    }

    /// The SAR drone pack used in the flight-time experiments: sized so a
    /// 39 W total draw (28 W mechanical + 11 W payload) yields the
    /// ~90-minute endurance typical of fixed-wing platforms.
    pub fn sar_drone() -> Battery {
        // 39 W × 90 min = 58.5 Wh usable.
        Battery::from_wh(58.5)
    }

    /// Usable capacity (J).
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy (J).
    pub fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// State of charge in [0, 1].
    pub fn soc(&self) -> f64 {
        self.remaining_j / self.capacity_j
    }

    /// Drain at `power_w` for `seconds`; clamps at empty. Returns the
    /// energy actually delivered (J).
    pub fn drain(&mut self, power_w: f64, seconds: f64) -> f64 {
        let wanted = (power_w * seconds).max(0.0);
        let delivered = wanted.min(self.remaining_j);
        self.remaining_j -= delivered;
        delivered
    }

    /// `true` once the pack is (effectively) empty.
    pub fn is_empty(&self) -> bool {
        self.remaining_j <= 1e-9
    }

    /// Endurance in seconds at a constant draw, from the current charge.
    pub fn endurance_s(&self, power_w: f64) -> f64 {
        if power_w <= 0.0 {
            f64::INFINITY
        } else {
            self.remaining_j / power_w
        }
    }

    /// Endurance in minutes at a constant draw.
    pub fn endurance_min(&self, power_w: f64) -> f64 {
        self.endurance_s(power_w) / 60.0
    }

    /// Refill to full.
    pub fn recharge(&mut self) {
        self.remaining_j = self.capacity_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endurance_arithmetic() {
        let b = Battery::from_wh(58.5);
        // 39 W → 90 minutes.
        assert!((b.endurance_min(39.0) - 90.0).abs() < 1e-9);
        // Lower draw → longer flight.
        assert!(b.endurance_min(35.0) > 90.0);
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.drain(10.0, 5.0), 50.0);
        assert!((b.soc() - 0.5).abs() < 1e-12);
        assert_eq!(b.drain(10.0, 100.0), 50.0);
        assert!(b.is_empty());
        assert_eq!(b.drain(10.0, 1.0), 0.0);
        b.recharge();
        assert_eq!(b.remaining_j(), 100.0);
    }

    #[test]
    fn paper_shape_18_percent_software_saving_gives_about_4_minutes() {
        // Section IV-C: mechanical 28 W, software up to 11 W; an 18 %
        // software-energy reduction extended flight by ≈ 4 minutes.
        let b = Battery::sar_drone();
        let baseline = b.endurance_min(28.0 + 11.0);
        let improved = b.endurance_min(28.0 + 11.0 * 0.82);
        let gained = improved - baseline;
        assert!(
            (3.0..6.0).contains(&gained),
            "expected ≈4 minutes gained, got {gained:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_nonpositive_capacity() {
        let _ = Battery::new(0.0);
    }
}
