//! Cycle-accurate executor for PG32 programs.
//!
//! The machine executes CFG-form programs directly (no fetch/decode of the
//! binary encoding — PG32 is deterministic, so the timing model applies
//! identically either way), charging every instruction its
//! [`teamplay_isa::CycleModel`] cycles and its hidden ground-truth energy.
//!
//! Per-run results expose the per-class instruction counts, which is what
//! the energy-model *fitting* flow regresses against — the reproduction of
//! paper ref \[8\]'s "fine-grain power models with no on-chip PMU".

use crate::fault::{FaultKind, FaultSpec};
use crate::ports::PortDevice;
use crate::truth::GroundTruthEnergy;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use teamplay_isa::{
    AluOp, BlockId, Cond, CycleModel, DataLayout, EnergyClass, Function, Insn, Operand, Program,
    Reg, Terminator, DATA_BASE, ENERGY_CLASS_COUNT, MEMORY_BYTES, STACK_TOP,
};

/// Execution errors (traps).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineError {
    /// Named function does not exist.
    UnknownFunction(String),
    /// Entry call with more than 6 scalar arguments.
    TooManyArgs,
    /// Misaligned word access.
    Unaligned(u32),
    /// Access outside simulated memory.
    OutOfRange(u32),
    /// The cycle budget was exhausted.
    CycleLimit,
    /// Call stack exceeded the limit.
    CallDepth,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            MachineError::TooManyArgs => write!(f, "entry call with more than 6 arguments"),
            MachineError::Unaligned(a) => write!(f, "misaligned memory access at {a:#x}"),
            MachineError::OutOfRange(a) => write!(f, "memory access out of range at {a:#x}"),
            MachineError::CycleLimit => write!(f, "cycle budget exhausted"),
            MachineError::CallDepth => write!(f, "call depth limit exceeded"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Load-time failures: the program could not be turned into a runnable
/// machine image. Structured (rather than a bare `String`) so callers
/// can match load failures alongside [`MachineError`] traps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadError {
    /// The program failed its own structural validation.
    InvalidProgram(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The result of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Contents of `r0` on completion (the return value by ABI).
    pub return_value: i32,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions retired (terminators included).
    pub insns: u64,
    /// Exact ground-truth energy in picojoules (dynamic + leakage).
    pub energy_pj: f64,
    /// Instructions retired per energy class — the "PMU-less event
    /// counters" that model fitting regresses on.
    pub class_counts: [u64; ENERGY_CLASS_COUNT],
}

impl RunResult {
    /// Energy in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_pj / 1e3
    }

    /// Execution time in microseconds at the given clock.
    pub fn time_us(&self, clock_mhz: f64) -> f64 {
        self.cycles as f64 / clock_mhz
    }
}

pub(crate) const MAX_CALL_DEPTH: usize = 256;

/// The default cycle-budget watchdog applied at load time. Entry points
/// that care about determinism under runaway kernels (the workflow's
/// measure step, fault campaigns, benches) override it with an explicit
/// budget via [`Machine::set_max_cycles`].
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

/// A loaded PG32 machine: program + memory image + cost models.
///
/// Globals persist across [`Machine::call`]s (like a device running task
/// after task); use [`Machine::reset_data`] to restore the initial image.
///
/// All name resolution happens at load time: the program is decomposed
/// into an index-addressed function table, and every `call` instruction's
/// target is pre-resolved to a function index (validation guarantees the
/// targets exist), so the execution loop never touches a map.
pub struct Machine {
    /// Functions in name order (the program map order).
    functions: Vec<Function>,
    /// Name → index into [`Machine::functions`], consulted once per
    /// [`Machine::call`] for the entry point only.
    func_index: HashMap<String, usize>,
    /// `[function][block][insn]` → callee function index for `call`
    /// instructions (`usize::MAX` elsewhere).
    call_targets: Vec<Vec<Vec<usize>>>,
    /// Initial global images, kept for [`Machine::reset_data`].
    globals: BTreeMap<String, Vec<i32>>,
    layout: DataLayout,
    cycle_model: CycleModel,
    energy_model: GroundTruthEnergy,
    mem: Box<[i32; MEM_WORDS]>,
    regs: [i32; 16],
    flags: (i32, i32), // last cmp operands (a, b)
    max_cycles: u64,
}

impl Machine {
    /// Load a program with PG32 cost models and the
    /// [`DEFAULT_MAX_CYCLES`] watchdog budget.
    ///
    /// # Errors
    /// [`LoadError::InvalidProgram`] if the program is structurally
    /// invalid.
    pub fn new(program: Program) -> Result<Machine, LoadError> {
        Machine::with_models(program, CycleModel::pg32(), GroundTruthEnergy::pg32())
    }

    /// Load a program with explicit cost models.
    ///
    /// # Errors
    /// [`LoadError::InvalidProgram`] if the program is structurally
    /// invalid.
    pub fn with_models(
        program: Program,
        cycle_model: CycleModel,
        energy_model: GroundTruthEnergy,
    ) -> Result<Machine, LoadError> {
        program.validate().map_err(LoadError::InvalidProgram)?;
        let layout = DataLayout::of_program(&program);
        let functions: Vec<Function> = program.functions.into_values().collect();
        let func_index: HashMap<String, usize> = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let call_targets = functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .map(|b| {
                        b.insns
                            .iter()
                            .map(|insn| match insn {
                                Insn::Call { func } => {
                                    *func_index.get(func).expect("validated call target")
                                }
                                _ => usize::MAX,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut machine = Machine {
            functions,
            func_index,
            call_targets,
            globals: program.globals,
            layout,
            cycle_model,
            energy_model,
            mem: zeroed_mem(),
            regs: [0; 16],
            flags: (0, 0),
            max_cycles: DEFAULT_MAX_CYCLES,
        };
        machine.reset_data();
        Ok(machine)
    }

    /// Change the cycle budget per call.
    pub fn set_max_cycles(&mut self, max_cycles: u64) {
        self.max_cycles = max_cycles;
    }

    /// Restore the initial global-data image and clear the rest of memory.
    pub fn reset_data(&mut self) {
        self.mem.fill(0);
        for (name, words) in &self.globals {
            let base = self.layout.address(name).expect("layout covers globals") / 4;
            for (i, w) in words.iter().enumerate() {
                self.mem[base as usize + i] = *w;
            }
        }
    }

    /// The layout used for globals (shared with the code generator).
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// Read a global word back after a run (for assertions in tests).
    pub fn read_global(&self, name: &str, index: usize) -> Option<i32> {
        let base = self.layout.address(name)? / 4;
        self.mem.get(base as usize + index).copied()
    }

    /// Snapshot of the whole global data segment, in address order —
    /// the "globals" observable the fault classifier compares between a
    /// faulted run and the fault-free reference.
    pub fn data_image(&self) -> Vec<i32> {
        let lo = (DATA_BASE / 4) as usize;
        let hi = (self.layout.data_end() / 4) as usize;
        self.mem[lo..hi].to_vec()
    }

    /// Call `func` with up to 6 scalar arguments in `r0..r5`.
    ///
    /// # Errors
    /// Any [`MachineError`] trap; the machine state is unspecified after a
    /// trap (call [`Machine::reset_data`] before reusing it).
    pub fn call(
        &mut self,
        func: &str,
        args: &[i32],
        device: &mut dyn PortDevice,
    ) -> Result<RunResult, MachineError> {
        self.run(func, args, device, None)
    }

    /// [`Machine::call`] with one transient fault injected mid-run.
    ///
    /// The machine executes normally until the fault's target cycle is
    /// reached, applies the upset at the next instruction boundary, and
    /// continues. A fault whose target cycle lies past the end of the run
    /// never fires (the run is trivially masked). With `fault` absent the
    /// path is bit-identical to [`Machine::call`].
    ///
    /// # Errors
    /// Any [`MachineError`] trap — under a fault a trap is an *outcome*
    /// (the classifier maps it to `Trapped`/`Hang`), not a bug.
    pub fn call_faulted(
        &mut self,
        func: &str,
        args: &[i32],
        device: &mut dyn PortDevice,
        fault: &FaultSpec,
    ) -> Result<RunResult, MachineError> {
        self.run(func, args, device, Some(fault))
    }

    fn run(
        &mut self,
        func: &str,
        args: &[i32],
        device: &mut dyn PortDevice,
        fault: Option<&FaultSpec>,
    ) -> Result<RunResult, MachineError> {
        if args.len() > 6 {
            return Err(MachineError::TooManyArgs);
        }
        // Disjoint field borrows: the function tables (and derived
        // references into them) stay immutable while registers/memory/
        // flags mutate.
        let functions = &self.functions;
        let call_targets = &self.call_targets;
        let cycle_model = &self.cycle_model;
        let regs = &mut self.regs;
        let mem = &mut *self.mem;
        let flags = &mut self.flags;
        let max_cycles = self.max_cycles;

        let entry_idx = *self
            .func_index
            .get(func)
            .ok_or_else(|| MachineError::UnknownFunction(func.into()))?;

        *regs = [0; 16];
        for (i, a) in args.iter().enumerate() {
            regs[i] = *a;
        }
        regs[Reg::SP.index()] = STACK_TOP as i32;

        let mut cycles: u64 = 0;
        let mut insns: u64 = 0;
        let mut energy = 0.0f64;
        let mut counts = [0u64; ENERGY_CLASS_COUNT];
        let mut prev_class: Option<EnergyClass> = None;

        // (function index, block, next instruction index) continuations.
        let mut stack: Vec<(usize, BlockId, usize)> = Vec::new();
        let mut cur_fi = entry_idx;
        let mut cur_fn: &Function = &functions[cur_fi];
        let mut cur_block = cur_fn.entry();
        let mut cur_idx = 0usize;

        // Clone the (small) energy tables so the accounting closure does
        // not hold a borrow of `self` across the mutating execution loop.
        let energy_model = self.energy_model.clone();
        let charge = move |class: EnergyClass,
                           cyc: u64,
                           regs_moved: usize,
                           cycles: &mut u64,
                           insns: &mut u64,
                           energy: &mut f64,
                           prev: &mut Option<EnergyClass>,
                           counts: &mut [u64; ENERGY_CLASS_COUNT]| {
            *cycles += cyc;
            *insns += 1;
            counts[class.index()] += 1;
            *energy += energy_model.dynamic_energy(*prev, class, regs_moved)
                + energy_model.leakage_per_cycle * cyc as f64;
            *prev = Some(class);
        };

        // SEU injection state: the fault fires exactly once, at the first
        // instruction boundary at or past its target cycle. `skip_armed`
        // carries a pending instruction-skip across terminators (a skip
        // upsets the next *instruction*, never a branch).
        let mut fault_pending = fault;
        let mut skip_armed = false;

        loop {
            if cycles > max_cycles {
                return Err(MachineError::CycleLimit);
            }
            if let Some(f) = fault_pending {
                if cycles >= f.at_cycle {
                    match f.kind {
                        FaultKind::RegisterBitFlip { reg, bit } => {
                            regs[reg as usize % regs.len()] ^= 1i32 << (bit % 32);
                        }
                        FaultKind::MemoryBitFlip { word, bit } => {
                            mem[word as usize % MEM_WORDS] ^= 1i32 << (bit % 32);
                        }
                        FaultKind::SkipInstruction => skip_armed = true,
                    }
                    fault_pending = None;
                }
            }
            let block = &cur_fn.blocks[cur_block.index()];
            if cur_idx < block.insns.len() {
                let insn = &block.insns[cur_idx];
                cur_idx += 1;
                let cyc = cycle_model.cycles(insn, false);
                let class = EnergyClass::of_insn(insn);
                let regs_moved = match insn {
                    Insn::Push { regs } | Insn::Pop { regs } => regs.len(),
                    _ => 0,
                };
                charge(
                    class,
                    cyc,
                    regs_moved,
                    &mut cycles,
                    &mut insns,
                    &mut energy,
                    &mut prev_class,
                    &mut counts,
                );
                if skip_armed {
                    // A skipped instruction models a writeback-enable
                    // upset: the pipeline still pays the instruction's
                    // normal cost, but its architectural effect is
                    // suppressed. Timing therefore stays on the fault-free
                    // trajectory unless control flow diverges later.
                    skip_armed = false;
                    continue;
                }
                match insn {
                    Insn::Alu { op, rd, rn, src } => {
                        let a = regs[rn.index()];
                        let b = operand_value(regs, *src);
                        regs[rd.index()] = op.eval(a, b);
                    }
                    Insn::Mov { rd, src } => {
                        regs[rd.index()] = operand_value(regs, *src);
                    }
                    Insn::MovImm32 { rd, imm } => {
                        regs[rd.index()] = *imm;
                    }
                    Insn::Cmp { rn, src } => {
                        *flags = (regs[rn.index()], operand_value(regs, *src));
                    }
                    Insn::Csel { cond, rd, rt, rf } => {
                        let (a, b) = *flags;
                        regs[rd.index()] = if cond.holds(a, b) {
                            regs[rt.index()]
                        } else {
                            regs[rf.index()]
                        };
                    }
                    Insn::Ldr { rd, base, offset } => {
                        let addr = (regs[base.index()] as u32)
                            .wrapping_add(operand_value(regs, *offset) as u32);
                        regs[rd.index()] = load_word(mem, addr)?;
                    }
                    Insn::Str { rs, base, offset } => {
                        let addr = (regs[base.index()] as u32)
                            .wrapping_add(operand_value(regs, *offset) as u32);
                        store_word(mem, addr, regs[rs.index()])?;
                    }
                    Insn::Push { regs: list } => {
                        for r in list {
                            let sp = (regs[Reg::SP.index()] as u32).wrapping_sub(4);
                            regs[Reg::SP.index()] = sp as i32;
                            store_word(mem, sp, regs[r.index()])?;
                        }
                    }
                    Insn::Pop { regs: list } => {
                        for r in list.iter().rev() {
                            let sp = regs[Reg::SP.index()] as u32;
                            let v = load_word(mem, sp)?;
                            regs[r.index()] = v;
                            regs[Reg::SP.index()] = sp.wrapping_add(4) as i32;
                        }
                    }
                    Insn::Call { .. } => {
                        if stack.len() >= MAX_CALL_DEPTH {
                            return Err(MachineError::CallDepth);
                        }
                        // Pre-resolved at load time; `cur_idx` was already
                        // advanced past this instruction.
                        let callee = call_targets[cur_fi][cur_block.index()][cur_idx - 1];
                        stack.push((cur_fi, cur_block, cur_idx));
                        cur_fi = callee;
                        cur_fn = &functions[cur_fi];
                        cur_block = cur_fn.entry();
                        cur_idx = 0;
                    }
                    Insn::In { rd, port } => {
                        regs[rd.index()] = device.input(*port);
                    }
                    Insn::Out { rs, port } => {
                        device.output(*port, regs[rs.index()]);
                    }
                    Insn::Nop => {}
                }
            } else {
                // Terminator.
                let term = &block.terminator;
                let taken = match term {
                    Terminator::CondBranch { cond, .. } => {
                        let (a, b) = *flags;
                        cond.holds(a, b)
                    }
                    _ => true,
                };
                let cyc = cycle_model.terminator_cycles(term, taken);
                let class = EnergyClass::of_terminator(term);
                charge(
                    class,
                    cyc,
                    0,
                    &mut cycles,
                    &mut insns,
                    &mut energy,
                    &mut prev_class,
                    &mut counts,
                );
                match term {
                    Terminator::Branch(t) => {
                        cur_block = *t;
                        cur_idx = 0;
                    }
                    Terminator::CondBranch {
                        taken: t,
                        fallthrough: f,
                        ..
                    } => {
                        cur_block = if taken { *t } else { *f };
                        cur_idx = 0;
                    }
                    Terminator::Return => match stack.pop() {
                        Some((fi, b, i)) => {
                            cur_fi = fi;
                            cur_fn = &functions[cur_fi];
                            cur_block = b;
                            cur_idx = i;
                        }
                        None => break,
                    },
                    Terminator::Halt => break,
                }
            }
        }

        Ok(RunResult {
            return_value: regs[0],
            cycles,
            insns,
            energy_pj: energy,
            class_counts: counts,
        })
    }
}

fn operand_value(regs: &[i32; 16], op: Operand) -> i32 {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

/// Simulated memory in words. A power of two, so a checked address can
/// be masked into provable range — the compiler drops the slice bounds
/// check in both interpreter hot loops.
pub(crate) const MEM_WORDS: usize = (MEMORY_BYTES / 4) as usize;

/// Zeroed simulated memory, built on the heap (a stack-allocated
/// `[i32; MEM_WORDS]` would not fit worker-thread stacks).
pub(crate) fn zeroed_mem() -> Box<[i32; MEM_WORDS]> {
    vec![0i32; MEM_WORDS]
        .into_boxed_slice()
        .try_into()
        .expect("MEM_WORDS-sized allocation")
}

pub(crate) fn check_addr(addr: u32) -> Result<usize, MachineError> {
    if !addr.is_multiple_of(4) {
        return Err(MachineError::Unaligned(addr));
    }
    if addr >= MEMORY_BYTES {
        return Err(MachineError::OutOfRange(addr));
    }
    // `addr < MEMORY_BYTES` makes the mask an identity.
    Ok((addr / 4) as usize & (MEM_WORDS - 1))
}

pub(crate) fn load_word(mem: &[i32; MEM_WORDS], addr: u32) -> Result<i32, MachineError> {
    let idx = check_addr(addr)?;
    Ok(mem[idx])
}

pub(crate) fn store_word(
    mem: &mut [i32; MEM_WORDS],
    addr: u32,
    value: i32,
) -> Result<(), MachineError> {
    let idx = check_addr(addr)?;
    mem[idx] = value;
    Ok(())
}

/// Evaluate an ALU condition mirror so tests can reuse it (kept out of the
/// hot loop for clarity).
pub fn cond_holds(cond: Cond, a: i32, b: i32) -> bool {
    cond.holds(a, b)
}

/// Convenience: would this ALU op trap on PG32? (Never — division by zero
/// yields zero.) Kept as documentation-by-test of the hardware convention.
pub fn op_traps(_op: AluOp) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::{NullDevice, RecordingDevice};
    use std::collections::BTreeMap;
    use teamplay_isa::{Block, BlockId};

    /// Build: int answer() { r0 = 40 + 2 }
    fn answer_program() -> Program {
        let mut p = Program::new();
        let f = Function {
            name: "answer".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::Mov {
                        rd: Reg::R1,
                        src: Operand::Imm(40),
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R0,
                        rn: Reg::R1,
                        src: Operand::Imm(2),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        p
    }

    #[test]
    fn executes_straight_line_code() {
        let mut m = Machine::new(answer_program()).expect("load");
        let r = m.call("answer", &[], &mut NullDevice::new()).expect("run");
        assert_eq!(r.return_value, 42);
        // mov(1) + add(1) + ret(4)
        assert_eq!(r.cycles, 6);
        assert_eq!(r.insns, 3);
        assert!(r.energy_pj > 0.0);
    }

    #[test]
    fn energy_accounts_base_overhead_and_leakage() {
        let mut m = Machine::new(answer_program()).expect("load");
        let r = m.call("answer", &[], &mut NullDevice::new()).expect("run");
        let t = GroundTruthEnergy::pg32();
        let expected = t.dynamic_energy(None, EnergyClass::Alu, 0)
            + t.dynamic_energy(Some(EnergyClass::Alu), EnergyClass::Alu, 0)
            + t.dynamic_energy(Some(EnergyClass::Alu), EnergyClass::Branch, 0)
            + t.leakage_per_cycle * 6.0;
        assert!(
            (r.energy_pj - expected).abs() < 1e-9,
            "{} vs {expected}",
            r.energy_pj
        );
    }

    /// Loop: sum 0..n passed in r0.
    fn loop_program() -> Program {
        let mut p = Program::new();
        // bb0: mov r1,#0 (sum); mov r2,#0 (i); b bb1
        // bb1: cmp r2, r0; blt bb2 else bb3
        // bb2: add r1,r1,r2; add r2,r2,#1; b bb1
        // bb3: mov r0, r1; ret
        let f = Function {
            name: "sum".into(),
            blocks: vec![
                Block {
                    insns: vec![
                        Insn::Mov {
                            rd: Reg::R1,
                            src: Operand::Imm(0),
                        },
                        Insn::Mov {
                            rd: Reg::R2,
                            src: Operand::Imm(0),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R2,
                        src: Operand::Reg(Reg::R0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(3),
                    },
                },
                Block {
                    insns: vec![
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R1,
                            rn: Reg::R1,
                            src: Operand::Reg(Reg::R2),
                        },
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R2,
                            rn: Reg::R2,
                            src: Operand::Imm(1),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Reg(Reg::R1),
                    }],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        p
    }

    #[test]
    fn loops_and_conditions() {
        let mut m = Machine::new(loop_program()).expect("load");
        let r = m.call("sum", &[10], &mut NullDevice::new()).expect("run");
        assert_eq!(r.return_value, 45);
    }

    #[test]
    fn branch_outcome_affects_cycles() {
        let mut m = Machine::new(loop_program()).expect("load");
        let r0 = m.call("sum", &[0], &mut NullDevice::new()).expect("run");
        let r1 = m.call("sum", &[1], &mut NullDevice::new()).expect("run");
        assert!(r1.cycles > r0.cycles);
    }

    #[test]
    fn cycle_limit_traps() {
        let mut p = Program::new();
        let f = Function {
            name: "spin".into(),
            blocks: vec![Block {
                insns: vec![],
                terminator: Terminator::Branch(BlockId(0)),
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let mut m = Machine::new(p).expect("load");
        m.set_max_cycles(1_000);
        assert_eq!(
            m.call("spin", &[], &mut NullDevice::new()),
            Err(MachineError::CycleLimit)
        );
    }

    #[test]
    fn calls_push_pop_and_stack_discipline() {
        let mut p = Program::new();
        // callee: r0 = r0 * 2
        let callee = Function {
            name: "double".into(),
            blocks: vec![Block {
                insns: vec![Insn::Alu {
                    op: AluOp::Mul,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    src: Operand::Imm(2),
                }],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        // caller: push {r4}; r4 = 5; call double(7); r0 = r0 + r4; pop {r4}
        let caller = Function {
            name: "main".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::Push {
                        regs: vec![Reg::R4],
                    },
                    Insn::Mov {
                        rd: Reg::R4,
                        src: Operand::Imm(5),
                    },
                    Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Imm(7),
                    },
                    Insn::Call {
                        func: "double".into(),
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R0,
                        rn: Reg::R0,
                        src: Operand::Reg(Reg::R4),
                    },
                    Insn::Pop {
                        regs: vec![Reg::R4],
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(callee);
        p.add_function(caller);
        let mut m = Machine::new(p).expect("load");
        let r = m.call("main", &[], &mut NullDevice::new()).expect("run");
        assert_eq!(r.return_value, 19);
    }

    #[test]
    fn globals_load_store_and_persist() {
        let mut p = Program::new();
        p.globals.insert("g".into(), vec![100]);
        // bump: r1 = &g (mov32); r2 = [r1]; r2 += 1; [r1] = r2; r0 = r2
        let layout_addr = {
            let layout = DataLayout::of_program(&p);
            layout.address("g").expect("g") as i32
        };
        let f = Function {
            name: "bump".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::MovImm32 {
                        rd: Reg::R1,
                        imm: layout_addr,
                    },
                    Insn::Ldr {
                        rd: Reg::R2,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R2,
                        rn: Reg::R2,
                        src: Operand::Imm(1),
                    },
                    Insn::Str {
                        rs: Reg::R2,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                    Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Reg(Reg::R2),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let mut m = Machine::new(p).expect("load");
        assert_eq!(
            m.call("bump", &[], &mut NullDevice::new())
                .expect("run")
                .return_value,
            101
        );
        assert_eq!(
            m.call("bump", &[], &mut NullDevice::new())
                .expect("run")
                .return_value,
            102
        );
        assert_eq!(m.read_global("g", 0), Some(102));
        m.reset_data();
        assert_eq!(m.read_global("g", 0), Some(100));
    }

    #[test]
    fn ports_roundtrip() {
        let mut p = Program::new();
        let f = Function {
            name: "echo".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::In {
                        rd: Reg::R0,
                        port: 4,
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R0,
                        rn: Reg::R0,
                        src: Operand::Imm(1),
                    },
                    Insn::Out {
                        rs: Reg::R0,
                        port: 9,
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let mut m = Machine::new(p).expect("load");
        let mut dev = RecordingDevice::new();
        dev.queue(4, [10]);
        let r = m.call("echo", &[], &mut dev).expect("run");
        assert_eq!(r.return_value, 11);
        assert_eq!(dev.outputs, vec![(9, 11)]);
    }

    #[test]
    fn traps_on_bad_memory() {
        let mut p = Program::new();
        let f = Function {
            name: "bad".into(),
            blocks: vec![Block {
                insns: vec![Insn::Ldr {
                    rd: Reg::R0,
                    base: Reg::R1,
                    offset: Operand::Imm(2),
                }],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let mut m = Machine::new(p).expect("load");
        assert_eq!(
            m.call("bad", &[], &mut NullDevice::new()),
            Err(MachineError::Unaligned(2))
        );

        let mut p2 = Program::new();
        let f2 = Function {
            name: "far".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::MovImm32 {
                        rd: Reg::R1,
                        imm: (MEMORY_BYTES + 8) as i32,
                    },
                    Insn::Ldr {
                        rd: Reg::R0,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p2.add_function(f2);
        let mut m2 = Machine::new(p2).expect("load");
        assert!(matches!(
            m2.call("far", &[], &mut NullDevice::new()),
            Err(MachineError::OutOfRange(_))
        ));
    }

    #[test]
    fn too_many_args_rejected() {
        let mut m = Machine::new(answer_program()).expect("load");
        assert_eq!(
            m.call("answer", &[0; 7], &mut NullDevice::new()),
            Err(MachineError::TooManyArgs)
        );
    }

    #[test]
    fn class_counts_sum_to_insns() {
        let mut m = Machine::new(loop_program()).expect("load");
        let r = m.call("sum", &[10], &mut NullDevice::new()).expect("run");
        assert_eq!(r.class_counts.iter().sum::<u64>(), r.insns);
    }
}
