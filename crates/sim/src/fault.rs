//! Deterministic SEU fault-injection campaigns over the reference
//! interpreter.
//!
//! Safety-critical CPS deployments face transient hardware faults —
//! single-event upsets flipping a register or memory bit, or suppressing
//! one instruction's writeback. This module models exactly those upsets
//! and measures their architectural consequences, AVF-style:
//!
//! * [`FaultSpec`] — one upset: at cycle N, flip bit B of register R /
//!   memory word W, or skip one instruction.
//! * [`FaultPlan`] — a seeded sample of specs, sized from the fault-free
//!   reference run (cycles drawn from its duration, memory words biased
//!   to live data: the global segment and the top of the stack).
//! * [`Machine::call_faulted`] — the injection wrapper: runs to the
//!   target cycle, applies the upset, keeps executing.
//! * [`FaultOutcome`] — the classification of one injected run against
//!   the fault-free reference observables.
//! * [`run_campaign`] — fans thousands of injections across a
//!   [`minipool::Pool`] under the same fixed-chunk, input-ordered,
//!   pool-width-bit-identical contract as
//!   [`simulate_batch`](crate::simulate_batch), and aggregates
//!   masked/SDC/trap/timing/hang rates.
//!
//! Every run executes under a **mandatory watchdog budget** (no
//! unbounded execution: a fault that creates an endless loop must trap
//! [`MachineError::CycleLimit`] deterministically, which the classifier
//! reports as [`FaultOutcome::Hang`]). The fault-free reference is
//! cross-checked against the pre-decoded engine before any injection, so
//! a [`FaultOutcome::Masked`] verdict transitively certifies agreement
//! with *both* engines.

use crate::decoded::DecodedProgram;
use crate::machine::{Machine, MachineError, RunResult};
use crate::ports::RecordingDevice;
use minipool::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use teamplay_isa::{DataLayout, Program, DATA_BASE, STACK_TOP};

/// Runs per machine instance in a campaign — the same fixed chunk size
/// as the batch fleet, so chunk boundaries (and therefore per-run
/// machine state) never depend on pool width.
const CHUNK: usize = 16;

/// Stack words (below [`STACK_TOP`]) that memory faults may target: the
/// region live frames occupy on PG32's full-descending stack.
const STACK_FAULT_WORDS: u32 = 256;

/// The kind of single-event upset to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip bit `bit` (0..32) of register `reg` (0..16).
    RegisterBitFlip { reg: u8, bit: u8 },
    /// Flip bit `bit` (0..32) of memory word `word`.
    MemoryBitFlip { word: u32, bit: u8 },
    /// Suppress the writeback of the next instruction (its timing cost
    /// is still charged — a skip upsets the datapath, not the pipeline).
    SkipInstruction,
}

/// One injection: an upset and the cycle at which it fires.
///
/// The upset fires at the first instruction boundary whose cycle count
/// is `>= at_cycle`; a target past the end of the run never fires, which
/// makes the run trivially masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Fire at the first instruction boundary at or past this cycle.
    pub at_cycle: u64,
    /// The upset to apply.
    pub kind: FaultKind,
}

/// A deterministic, seeded list of injections for one kernel.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injections, in campaign order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: a campaign over it performs no injections and is
    /// bit-identical to not running a campaign at all.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sample `count` injections, reproducible from `seed` alone.
    ///
    /// Target cycles are drawn uniformly from the fault-free run's
    /// duration (`reference_cycles`), so the plan is *sized from the
    /// reference run*: every fault has a chance to land on a live
    /// instruction. Register flips target all 16 architectural
    /// registers; memory flips are biased to live data — the program's
    /// global segment (from `layout`) and the top [`STACK_FAULT_WORDS`]
    /// words of the stack.
    pub fn sample(
        seed: u64,
        count: usize,
        reference_cycles: u64,
        layout: &DataLayout,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let globals_lo = DATA_BASE / 4;
        let globals_hi = layout.data_end() / 4;
        let stack_lo = STACK_TOP / 4 - STACK_FAULT_WORDS;
        let stack_hi = STACK_TOP / 4;
        let faults = (0..count)
            .map(|_| {
                let at_cycle = rng.gen_range(0..reference_cycles.max(1));
                let kind = match rng.gen_range(0..4u8) {
                    0 | 1 => FaultKind::RegisterBitFlip {
                        reg: rng.gen_range(0..16),
                        bit: rng.gen_range(0..32),
                    },
                    2 => {
                        let word = if globals_hi > globals_lo && rng.gen_range(0..2u8) == 0 {
                            rng.gen_range(globals_lo..globals_hi)
                        } else {
                            rng.gen_range(stack_lo..stack_hi)
                        };
                        FaultKind::MemoryBitFlip {
                            word,
                            bit: rng.gen_range(0..32),
                        }
                    }
                    _ => FaultKind::SkipInstruction,
                };
                FaultSpec { at_cycle, kind }
            })
            .collect();
        FaultPlan { faults }
    }
}

/// The classified consequence of one injected run.
///
/// Classification precedence: a watchdog trip is always [`Hang`]; any
/// other trap is [`Trapped`]; a run whose every observable (the full
/// [`RunResult`] down to the energy `f64` bit pattern, the global data
/// image, the port output trace) matches the reference is [`Masked`];
/// a run that exceeds the timing bound is a [`TimingViolation`]; any
/// remaining divergence is [`SilentDataCorruption`].
///
/// [`Hang`]: FaultOutcome::Hang
/// [`Trapped`]: FaultOutcome::Trapped
/// [`Masked`]: FaultOutcome::Masked
/// [`TimingViolation`]: FaultOutcome::TimingViolation
/// [`SilentDataCorruption`]: FaultOutcome::SilentDataCorruption
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault had no architecturally visible effect: the run is
    /// bit-identical to the fault-free reference.
    Masked,
    /// The run completed inside the timing bound but its results differ
    /// (return value, globals, port outputs, or retired-work accounting).
    SilentDataCorruption,
    /// The machine trapped (bad address, call-depth overflow…).
    Trapped(MachineError),
    /// The run completed but took more cycles than the timing bound
    /// (the IPET bound when provided, else the fault-free run).
    TimingViolation,
    /// The watchdog cycle budget expired — the fault created a
    /// (practically) endless loop.
    Hang,
}

/// Everything the classifier compares between a faulted run and the
/// fault-free reference.
#[derive(Debug, Clone, PartialEq)]
struct Observables {
    result: RunResult,
    energy_bits: u64,
    data_image: Vec<i32>,
    outputs: Vec<(u8, i32)>,
}

impl Observables {
    fn capture(result: RunResult, machine: &Machine, device: &RecordingDevice) -> Observables {
        Observables {
            energy_bits: result.energy_pj.to_bits(),
            result,
            data_image: machine.data_image(),
            outputs: device.outputs.clone(),
        }
    }
}

/// Campaign parameters. The watchdog budget is mandatory: campaigns
/// refuse to run unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Seed for the [`FaultPlan`] sampler.
    pub seed: u64,
    /// Number of injections to sample.
    pub injections: usize,
    /// Watchdog cycle budget applied to every run (reference included).
    /// Must exceed the fault-free run's cycles.
    pub watchdog_cycles: u64,
    /// Static IPET bound for the kernel, if analysed: runs beyond it are
    /// timing violations even when the reference happens to run longer
    /// than average.
    pub ipet_bound_cycles: Option<u64>,
}

/// Aggregated outcome counts of a campaign, plus AVF-style rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Injections with no architecturally visible effect.
    pub masked: usize,
    /// Injections that silently corrupted results.
    pub sdc: usize,
    /// Injections that trapped.
    pub trapped: usize,
    /// Injections that broke the timing bound.
    pub timing: usize,
    /// Injections that tripped the watchdog.
    pub hang: usize,
}

impl CampaignStats {
    /// Total classified injections.
    pub fn total(&self) -> usize {
        self.masked + self.sdc + self.trapped + self.timing + self.hang
    }

    /// `[masked, sdc, trapped, timing, hang]` as fractions of the total
    /// (all zero for an empty campaign). Sums to 1 for any non-empty
    /// campaign.
    pub fn rates(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let frac = |n: usize| n as f64 / total as f64;
        [
            frac(self.masked),
            frac(self.sdc),
            frac(self.trapped),
            frac(self.timing),
            frac(self.hang),
        ]
    }

    fn record(&mut self, outcome: &FaultOutcome) {
        match outcome {
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::SilentDataCorruption => self.sdc += 1,
            FaultOutcome::Trapped(_) => self.trapped += 1,
            FaultOutcome::TimingViolation => self.timing += 1,
            FaultOutcome::Hang => self.hang += 1,
        }
    }
}

/// The full, deterministic result of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The plan that was executed (in order).
    pub plan: FaultPlan,
    /// One classified outcome per injection, in plan order.
    pub outcomes: Vec<FaultOutcome>,
    /// Aggregated counts.
    pub stats: CampaignStats,
    /// Fault-free reference cycles (the timing bound when no IPET bound
    /// is supplied).
    pub reference_cycles: u64,
    /// Whether the zero-fault control run reproduced the reference
    /// bit-identically (it must — anything else is a harness bug).
    pub control_masked: bool,
}

/// Run a seeded campaign: sample a [`FaultPlan`] from the fault-free
/// reference run and classify every injection. See
/// [`run_campaign_with_plan`] for the execution contract.
///
/// # Panics
/// If the kernel fails to load, the fault-free reference run traps, the
/// watchdog does not exceed the reference run, or the pre-decoded
/// engine disagrees with the reference (all harness bugs, not outcomes).
pub fn run_campaign(
    pool: &Pool,
    program: &Program,
    func: &str,
    args: &[i32],
    config: &CampaignConfig,
    make_device: impl Fn() -> RecordingDevice + Sync,
) -> CampaignResult {
    let reference = reference_observables(program, func, args, config, &make_device);
    let machine = Machine::new(program.clone()).expect("kernel loads");
    let plan = FaultPlan::sample(
        config.seed,
        config.injections,
        reference.result.cycles,
        machine.layout(),
    );
    run_campaign_with_plan(pool, program, func, args, &plan, config, make_device)
}

/// Run an explicit [`FaultPlan`] and classify every injection.
///
/// Execution follows the batch-fleet determinism discipline: the plan is
/// split into fixed-size chunks, each chunk gets a fresh [`Machine`]
/// whose data image is reset before every run, and outcomes are
/// returned in plan order — so the serialized [`CampaignResult`] is
/// byte-identical at any pool width.
///
/// # Panics
/// Same conditions as [`run_campaign`].
pub fn run_campaign_with_plan(
    pool: &Pool,
    program: &Program,
    func: &str,
    args: &[i32],
    plan: &FaultPlan,
    config: &CampaignConfig,
    make_device: impl Fn() -> RecordingDevice + Sync,
) -> CampaignResult {
    let reference = reference_observables(program, func, args, config, &make_device);
    let timing_bound = config
        .ipet_bound_cycles
        .unwrap_or(reference.result.cycles)
        .max(reference.result.cycles);

    // Zero-fault control row: the injection wrapper with a fault that
    // can never fire must reproduce the reference bit for bit.
    let control = {
        let mut machine = Machine::new(program.clone()).expect("kernel loads");
        machine.set_max_cycles(config.watchdog_cycles);
        machine.reset_data();
        let mut device = make_device();
        let never = FaultSpec {
            at_cycle: u64::MAX,
            kind: FaultKind::SkipInstruction,
        };
        let run = machine.call_faulted(func, args, &mut device, &never);
        classify(&reference, timing_bound, run, &machine, &device)
    };

    let chunks: Vec<&[FaultSpec]> = plan.faults.chunks(CHUNK).collect();
    let per_chunk: Vec<Vec<FaultOutcome>> = pool.par_map(&chunks, |_, chunk| {
        let mut machine = Machine::new(program.clone()).expect("kernel loads");
        machine.set_max_cycles(config.watchdog_cycles);
        chunk
            .iter()
            .map(|fault| {
                // A trapped run leaves machine state unspecified; the
                // reset restores the pristine image either way.
                machine.reset_data();
                let mut device = make_device();
                let run = machine.call_faulted(func, args, &mut device, fault);
                classify(&reference, timing_bound, run, &machine, &device)
            })
            .collect()
    });
    let outcomes: Vec<FaultOutcome> = per_chunk.into_iter().flatten().collect();

    let mut stats = CampaignStats::default();
    for outcome in &outcomes {
        stats.record(outcome);
    }

    CampaignResult {
        plan: plan.clone(),
        outcomes,
        stats,
        reference_cycles: reference.result.cycles,
        control_masked: control == FaultOutcome::Masked,
    }
}

/// Run the fault-free reference under the campaign watchdog, capture
/// its observables, and cross-check them against the pre-decoded
/// engine so `Masked` verdicts certify agreement with both engines.
fn reference_observables(
    program: &Program,
    func: &str,
    args: &[i32],
    config: &CampaignConfig,
    make_device: &(impl Fn() -> RecordingDevice + Sync),
) -> Observables {
    assert!(
        config.watchdog_cycles > 0,
        "campaigns require an explicit watchdog budget"
    );
    let mut machine = Machine::new(program.clone()).expect("kernel loads");
    machine.set_max_cycles(config.watchdog_cycles);
    machine.reset_data();
    let mut device = make_device();
    let result = machine
        .call(func, args, &mut device)
        .expect("fault-free reference runs");
    assert!(
        result.cycles < config.watchdog_cycles,
        "watchdog ({}) must exceed the fault-free run ({})",
        config.watchdog_cycles,
        result.cycles
    );

    // Decoded-engine cross-check: Masked means "bit-identical to the
    // reference", and the reference itself must be bit-identical to the
    // pre-decoded engine — so a masked fault agrees with both.
    let decoded = DecodedProgram::new(program).expect("validated kernel lowers");
    let mut engine = decoded.engine();
    engine.set_max_cycles(config.watchdog_cycles);
    let mut decoded_device = make_device();
    let decoded_run = engine
        .call(func, args, &mut decoded_device)
        .expect("decoded reference runs");
    assert_eq!(result, decoded_run, "engines diverge on {func}");
    assert_eq!(result.energy_pj.to_bits(), decoded_run.energy_pj.to_bits());

    Observables::capture(result, &machine, &device)
}

fn classify(
    reference: &Observables,
    timing_bound: u64,
    run: Result<RunResult, MachineError>,
    machine: &Machine,
    device: &RecordingDevice,
) -> FaultOutcome {
    match run {
        Err(MachineError::CycleLimit) => FaultOutcome::Hang,
        Err(e) => FaultOutcome::Trapped(e),
        Ok(result) => {
            let observed = Observables::capture(result, machine, device);
            if observed == *reference {
                FaultOutcome::Masked
            } else if observed.result.cycles > timing_bound {
                FaultOutcome::TimingViolation
            } else {
                FaultOutcome::SilentDataCorruption
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::NullDevice;
    use std::collections::BTreeMap;
    use teamplay_isa::{
        AluOp, Block, BlockId, Cond, Function, Insn, Operand, Reg, Terminator, MEMORY_BYTES,
    };

    /// int answer() { r1 = 40; r0 = r1 + 2; } — returns 42 in 6 cycles.
    fn answer_program() -> Program {
        let mut p = Program::new();
        p.add_function(Function {
            name: "answer".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::Mov {
                        rd: Reg::R1,
                        src: Operand::Imm(40),
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R0,
                        rn: Reg::R1,
                        src: Operand::Imm(2),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        });
        p
    }

    /// sum(n): 0+1+…+(n-1) via a counted loop.
    fn sum_program() -> Program {
        let mut p = Program::new();
        p.add_function(Function {
            name: "sum".into(),
            blocks: vec![
                Block {
                    insns: vec![
                        Insn::Mov {
                            rd: Reg::R1,
                            src: Operand::Imm(0),
                        },
                        Insn::Mov {
                            rd: Reg::R2,
                            src: Operand::Imm(0),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R2,
                        src: Operand::Reg(Reg::R0),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(3),
                    },
                },
                Block {
                    insns: vec![
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R1,
                            rn: Reg::R1,
                            src: Operand::Reg(Reg::R2),
                        },
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R2,
                            rn: Reg::R2,
                            src: Operand::Imm(1),
                        },
                    ],
                    terminator: Terminator::Branch(BlockId(1)),
                },
                Block {
                    insns: vec![Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Reg(Reg::R1),
                    }],
                    terminator: Terminator::Return,
                },
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        });
        p
    }

    fn config(watchdog: u64, injections: usize) -> CampaignConfig {
        CampaignConfig {
            seed: 0xFA17,
            injections,
            watchdog_cycles: watchdog,
            ipet_bound_cycles: None,
        }
    }

    fn classify_single(
        program: &Program,
        func: &str,
        args: &[i32],
        fault: FaultSpec,
    ) -> FaultOutcome {
        let cfg = config(100_000, 0);
        let plan = FaultPlan {
            faults: vec![fault],
        };
        let result = run_campaign_with_plan(
            minipool::global(),
            program,
            func,
            args,
            &plan,
            &cfg,
            RecordingDevice::new,
        );
        result.outcomes.into_iter().next().expect("one outcome")
    }

    #[test]
    fn never_firing_fault_is_bit_identical_to_a_plain_call() {
        let p = answer_program();
        let mut a = Machine::new(p.clone()).expect("load");
        let mut b = Machine::new(p).expect("load");
        let want = a.call("answer", &[], &mut NullDevice::new()).expect("run");
        let fault = FaultSpec {
            at_cycle: u64::MAX,
            kind: FaultKind::RegisterBitFlip { reg: 0, bit: 0 },
        };
        let got = b
            .call_faulted("answer", &[], &mut NullDevice::new(), &fault)
            .expect("run");
        assert_eq!(want, got);
        assert_eq!(want.energy_pj.to_bits(), got.energy_pj.to_bits());
    }

    #[test]
    fn flip_of_a_dead_register_is_masked() {
        // r7 is never read or written by `answer`: provably masked.
        let outcome = classify_single(
            &answer_program(),
            "answer",
            &[],
            FaultSpec {
                at_cycle: 0,
                kind: FaultKind::RegisterBitFlip { reg: 7, bit: 3 },
            },
        );
        assert_eq!(outcome, FaultOutcome::Masked);
    }

    #[test]
    fn flip_of_the_return_register_is_silent_data_corruption() {
        // After mov (1 cyc) and add (1 cyc) the boundary at cycle 2 sits
        // just before the return: flipping r0 bit 0 turns 42 into 43.
        let outcome = classify_single(
            &answer_program(),
            "answer",
            &[],
            FaultSpec {
                at_cycle: 2,
                kind: FaultKind::RegisterBitFlip { reg: 0, bit: 0 },
            },
        );
        assert_eq!(outcome, FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn flip_of_an_address_register_traps_out_of_range() {
        // r1 = 0x1000; r0 = [r1]. Flipping bit 30 of r1 right before the
        // load sends the address to 0x40001000, far past memory.
        let mut p = Program::new();
        p.add_function(Function {
            name: "peek".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::MovImm32 {
                        rd: Reg::R1,
                        imm: DATA_BASE as i32,
                    },
                    Insn::Ldr {
                        rd: Reg::R0,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        });
        let outcome = classify_single(
            &p,
            "peek",
            &[],
            FaultSpec {
                at_cycle: 1,
                kind: FaultKind::RegisterBitFlip { reg: 1, bit: 30 },
            },
        );
        let addr = DATA_BASE + (1 << 30);
        assert!(addr >= MEMORY_BYTES);
        assert_eq!(
            outcome,
            FaultOutcome::Trapped(MachineError::OutOfRange(addr))
        );
    }

    #[test]
    fn sign_flip_of_the_loop_counter_hangs_the_watchdog() {
        // Mid-loop, flipping bit 31 of the counter makes it hugely
        // negative: ~2^31 extra iterations, far past any sane watchdog.
        let cfg = CampaignConfig {
            seed: 0,
            injections: 0,
            watchdog_cycles: 10_000,
            ipet_bound_cycles: None,
        };
        let plan = FaultPlan {
            faults: vec![FaultSpec {
                at_cycle: 20,
                kind: FaultKind::RegisterBitFlip { reg: 2, bit: 31 },
            }],
        };
        let result = run_campaign_with_plan(
            minipool::global(),
            &sum_program(),
            "sum",
            &[8],
            &plan,
            &cfg,
            RecordingDevice::new,
        );
        assert_eq!(result.outcomes, vec![FaultOutcome::Hang]);
    }

    #[test]
    fn skipped_loop_increment_is_a_timing_violation() {
        // Searching every instruction boundary of sum(10) for a skip
        // that re-runs a loop iteration: at least one must exist, and
        // pinning its cycle must reproduce the violation exactly.
        let p = sum_program();
        let mut m = Machine::new(p.clone()).expect("load");
        let reference = m.call("sum", &[10], &mut NullDevice::new()).expect("runs");
        let violation = (0..reference.cycles).find(|&at| {
            classify_single(
                &p,
                "sum",
                &[10],
                FaultSpec {
                    at_cycle: at,
                    kind: FaultKind::SkipInstruction,
                },
            ) == FaultOutcome::TimingViolation
        });
        let at = violation.expect("a skipped increment re-runs an iteration");
        // Deterministic regression pin: the same spec classifies the
        // same way on every run.
        let again = classify_single(
            &p,
            "sum",
            &[10],
            FaultSpec {
                at_cycle: at,
                kind: FaultKind::SkipInstruction,
            },
        );
        assert_eq!(again, FaultOutcome::TimingViolation);
    }

    #[test]
    fn empty_plan_campaign_is_a_no_op_with_a_masked_control() {
        let result = run_campaign_with_plan(
            minipool::global(),
            &sum_program(),
            "sum",
            &[12],
            &FaultPlan::empty(),
            &config(100_000, 0),
            RecordingDevice::new,
        );
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.total(), 0);
        assert!(result.control_masked);
        assert_eq!(result.stats.rates(), [0.0; 5]);
    }

    #[test]
    fn sampled_plans_are_reproducible_and_sized_from_the_reference() {
        let p = sum_program();
        let m = Machine::new(p.clone()).expect("load");
        let a = FaultPlan::sample(9, 64, 500, m.layout());
        let b = FaultPlan::sample(9, 64, 500, m.layout());
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 64);
        assert!(a.faults.iter().all(|f| f.at_cycle < 500));
        assert_ne!(a, FaultPlan::sample(10, 64, 500, m.layout()));
    }

    #[test]
    fn campaigns_are_byte_identical_at_any_pool_width() {
        let p = sum_program();
        let cfg = config(100_000, 48);
        let narrow = run_campaign(&Pool::new(1), &p, "sum", &[15], &cfg, RecordingDevice::new);
        let narrow_json = serde_json::to_string(&narrow).expect("serializes");
        for width in [2usize, 4] {
            let wide = run_campaign(
                &Pool::new(width),
                &p,
                "sum",
                &[15],
                &cfg,
                RecordingDevice::new,
            );
            assert_eq!(
                narrow_json,
                serde_json::to_string(&wide).expect("serializes"),
                "pool width {width}"
            );
        }
        assert_eq!(narrow.stats.total(), 48);
        assert!(narrow.control_masked);
        let rates_sum: f64 = narrow.stats.rates().iter().sum();
        assert!((rates_sum - 1.0).abs() < 1e-12);
    }

    /// Deterministic regression slot: any counterexample a campaign
    /// surfaces gets pinned here as an exact `(program, spec, outcome)`
    /// triple so it can never silently reclassify.
    mod regressions {
        use super::*;

        #[test]
        fn memory_flip_outside_live_globals_of_answer_is_masked() {
            // Found by early seeded campaigns: `answer` touches no
            // memory, so any data-segment flip must stay masked —
            // pinned against the classifier regressing on data images.
            let outcome = classify_single(
                &answer_program(),
                "answer",
                &[],
                FaultSpec {
                    at_cycle: 3,
                    kind: FaultKind::MemoryBitFlip {
                        word: STACK_TOP / 4 - 1,
                        bit: 17,
                    },
                },
            );
            assert_eq!(outcome, FaultOutcome::Masked);
        }
    }
}
