//! Task-level simulator for complex heterogeneous platforms.
//!
//! Complex architectures (paper Section II-B) "cannot be statically
//! analysed"; TeamPlay instead instruments and *measures* them. This
//! module is the measured thing: a platform of CPU clusters and a GPU with
//! per-core DVFS operating points, multiplicative execution-time jitter
//! (caches, DRAM, thermal), and a power-sampling facility mirroring
//! PowProfiler (refs \[18\], \[19\]).
//!
//! Execution-time and power numbers follow the Apalis TK1 / Jetson class
//! of devices the UAV and deep-learning use cases ran on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One DVFS operating point of a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency (MHz).
    pub freq_mhz: f64,
    /// Dynamic power at full utilisation (mW).
    pub dyn_power_mw: f64,
    /// Idle/static power while the core is clocked at this point (mW).
    pub idle_power_mw: f64,
}

/// The kind of compute resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// High-performance CPU core (e.g. Cortex-A15).
    BigCpu,
    /// Efficiency CPU core (e.g. Cortex-A7 companion core).
    LittleCpu,
    /// GPU accelerator (whole device treated as one resource).
    Gpu,
}

/// A schedulable compute resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreDesc {
    /// Human-readable name (e.g. `"a15-0"`).
    pub name: String,
    /// Resource kind.
    pub kind: CoreKind,
    /// Available DVFS points, slowest first.
    pub ops: Vec<OperatingPoint>,
    /// Throughput relative to a 1 GHz big core at equal frequency
    /// (little cores < 1, big = 1).
    pub perf_factor: f64,
}

/// A unit of work to execute: cycles on a reference 1 GHz big CPU core,
/// plus how much faster the GPU runs it (1.0 = no benefit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Mega-cycles on the reference core.
    pub ref_mcycles: f64,
    /// GPU speed-up factor for this kernel (≥ 0; < 1 means GPU-hostile).
    pub gpu_speedup: f64,
    /// Average utilisation while running (0–1]; models memory-bound code
    /// that burns less dynamic power.
    pub utilisation: f64,
}

impl WorkItem {
    /// A compute-bound kernel with the given reference mega-cycles and
    /// GPU speed-up.
    pub fn new(ref_mcycles: f64, gpu_speedup: f64) -> WorkItem {
        WorkItem {
            ref_mcycles,
            gpu_speedup,
            utilisation: 1.0,
        }
    }
}

/// A completed (simulated) task execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskExecution {
    /// Wall-clock time (ms), jitter included.
    pub time_ms: f64,
    /// Energy drawn by the core for the execution (mJ).
    pub energy_mj: f64,
    /// Average power over the execution (mW).
    pub avg_power_mw: f64,
}

/// A heterogeneous platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexPlatform {
    /// Platform name (e.g. `"apalis-tk1"`).
    pub name: String,
    /// All schedulable resources.
    pub cores: Vec<CoreDesc>,
    /// Relative execution-time jitter (standard deviation, e.g. 0.03).
    pub jitter_sigma: f64,
}

impl ComplexPlatform {
    /// An Apalis-TK1-like platform: 4 Cortex-A15-class cores + 1 Kepler
    /// GPU.
    pub fn tk1() -> ComplexPlatform {
        let cpu_ops = vec![
            OperatingPoint {
                freq_mhz: 204.0,
                dyn_power_mw: 420.0,
                idle_power_mw: 110.0,
            },
            OperatingPoint {
                freq_mhz: 696.0,
                dyn_power_mw: 980.0,
                idle_power_mw: 130.0,
            },
            OperatingPoint {
                freq_mhz: 1092.0,
                dyn_power_mw: 1750.0,
                idle_power_mw: 160.0,
            },
            OperatingPoint {
                freq_mhz: 1530.0,
                dyn_power_mw: 2900.0,
                idle_power_mw: 200.0,
            },
            OperatingPoint {
                freq_mhz: 2065.0,
                dyn_power_mw: 4600.0,
                idle_power_mw: 260.0,
            },
        ];
        let gpu_ops = vec![
            OperatingPoint {
                freq_mhz: 72.0,
                dyn_power_mw: 650.0,
                idle_power_mw: 180.0,
            },
            OperatingPoint {
                freq_mhz: 252.0,
                dyn_power_mw: 1600.0,
                idle_power_mw: 220.0,
            },
            OperatingPoint {
                freq_mhz: 468.0,
                dyn_power_mw: 3000.0,
                idle_power_mw: 280.0,
            },
            OperatingPoint {
                freq_mhz: 852.0,
                dyn_power_mw: 6200.0,
                idle_power_mw: 380.0,
            },
        ];
        let mut cores: Vec<CoreDesc> = (0..4)
            .map(|i| CoreDesc {
                name: format!("a15-{i}"),
                kind: CoreKind::BigCpu,
                ops: cpu_ops.clone(),
                perf_factor: 1.0,
            })
            .collect();
        cores.push(CoreDesc {
            name: "gk20a".into(),
            kind: CoreKind::Gpu,
            ops: gpu_ops,
            perf_factor: 1.0,
        });
        ComplexPlatform {
            name: "apalis-tk1".into(),
            cores,
            jitter_sigma: 0.03,
        }
    }

    /// A Jetson-Nano-like platform: 4 smaller CPU cores + Maxwell GPU,
    /// lower power envelope.
    pub fn nano() -> ComplexPlatform {
        let cpu_ops = vec![
            OperatingPoint {
                freq_mhz: 102.0,
                dyn_power_mw: 180.0,
                idle_power_mw: 60.0,
            },
            OperatingPoint {
                freq_mhz: 710.0,
                dyn_power_mw: 620.0,
                idle_power_mw: 80.0,
            },
            OperatingPoint {
                freq_mhz: 1428.0,
                dyn_power_mw: 1500.0,
                idle_power_mw: 110.0,
            },
        ];
        let gpu_ops = vec![
            OperatingPoint {
                freq_mhz: 76.0,
                dyn_power_mw: 400.0,
                idle_power_mw: 120.0,
            },
            OperatingPoint {
                freq_mhz: 460.0,
                dyn_power_mw: 1900.0,
                idle_power_mw: 180.0,
            },
            OperatingPoint {
                freq_mhz: 921.0,
                dyn_power_mw: 4200.0,
                idle_power_mw: 260.0,
            },
        ];
        let mut cores: Vec<CoreDesc> = (0..4)
            .map(|i| CoreDesc {
                name: format!("a57-{i}"),
                kind: CoreKind::LittleCpu,
                ops: cpu_ops.clone(),
                perf_factor: 0.85,
            })
            .collect();
        cores.push(CoreDesc {
            name: "gm20b".into(),
            kind: CoreKind::Gpu,
            ops: gpu_ops,
            perf_factor: 1.0,
        });
        ComplexPlatform {
            name: "jetson-nano".into(),
            cores,
            jitter_sigma: 0.04,
        }
    }

    /// Look up a core by name.
    pub fn core(&self, name: &str) -> Option<&CoreDesc> {
        self.cores.iter().find(|c| c.name == name)
    }

    /// Deterministic nominal execution time (ms) of `work` on `core` at
    /// operating point `op_idx` — what a scheduler plans with.
    ///
    /// # Panics
    /// Panics if `op_idx` is out of range for the core.
    pub fn nominal_time_ms(&self, core: &CoreDesc, op_idx: usize, work: &WorkItem) -> f64 {
        let op = &core.ops[op_idx];
        let speedup = match core.kind {
            CoreKind::Gpu => work.gpu_speedup.max(1e-6),
            _ => 1.0,
        };
        // `ref_mcycles` mega-cycles at `freq_mhz` MHz → milliseconds:
        // (ref_mcycles · 1e6) / (freq_mhz · 1e6 · perf · speedup) s.
        work.ref_mcycles / (op.freq_mhz * core.perf_factor * speedup) * 1000.0
    }

    /// Deterministic nominal energy (mJ) for `work` on `core` at `op_idx`.
    pub fn nominal_energy_mj(&self, core: &CoreDesc, op_idx: usize, work: &WorkItem) -> f64 {
        let op = &core.ops[op_idx];
        let t_ms = self.nominal_time_ms(core, op_idx, work);
        let p_mw = op.idle_power_mw + op.dyn_power_mw * work.utilisation;
        p_mw * t_ms / 1000.0
    }

    /// Execute `work` once with measurement jitter; `rng` drives the noise.
    pub fn execute(
        &self,
        core: &CoreDesc,
        op_idx: usize,
        work: &WorkItem,
        rng: &mut StdRng,
    ) -> TaskExecution {
        let t_nom = self.nominal_time_ms(core, op_idx, work);
        // Multiplicative jitter, truncated at ±3σ, never negative.
        let z: f64 = sample_standard_normal(rng).clamp(-3.0, 3.0);
        let t_ms = t_nom * (1.0 + self.jitter_sigma * z).max(0.05);
        let op = &core.ops[op_idx];
        let p_mw = op.idle_power_mw + op.dyn_power_mw * work.utilisation;
        TaskExecution {
            time_ms: t_ms,
            energy_mj: p_mw * t_ms / 1000.0,
            avg_power_mw: p_mw,
        }
    }

    /// Create a seeded RNG for reproducible experiments.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

/// Box–Muller standard normal sample (keeps the dependency surface to
/// `rand`'s uniform generator only).
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_time_scales_inversely_with_frequency() {
        let p = ComplexPlatform::tk1();
        let core = p.core("a15-0").expect("core");
        let w = WorkItem::new(1000.0, 1.0);
        let slow = p.nominal_time_ms(core, 0, &w);
        let fast = p.nominal_time_ms(core, core.ops.len() - 1, &w);
        assert!(slow > fast);
        let ratio = slow / fast;
        let freq_ratio = core.ops.last().expect("op").freq_mhz / core.ops[0].freq_mhz;
        assert!((ratio - freq_ratio).abs() < 1e-9);
    }

    #[test]
    fn gpu_speedup_applies_only_on_gpu() {
        let p = ComplexPlatform::tk1();
        let cpu = p.core("a15-0").expect("cpu");
        let gpu = p.core("gk20a").expect("gpu");
        let w = WorkItem::new(8520.0, 10.0);
        let t_cpu = p.nominal_time_ms(cpu, cpu.ops.len() - 1, &w);
        let t_gpu = p.nominal_time_ms(gpu, gpu.ops.len() - 1, &w);
        assert!(
            t_gpu < t_cpu,
            "GPU should win for a 10x kernel: {t_gpu} vs {t_cpu}"
        );
    }

    #[test]
    fn energy_sweet_spot_is_not_always_max_frequency() {
        // With leakage (idle power) folded in, the energy-per-work curve
        // has an interior minimum — the paper's Section III-C sweet spot.
        let p = ComplexPlatform::tk1();
        let core = p.core("a15-0").expect("core");
        let w = WorkItem::new(5000.0, 1.0);
        let energies: Vec<f64> = (0..core.ops.len())
            .map(|i| p.nominal_energy_mj(core, i, &w))
            .collect();
        let min_idx = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        assert!(
            min_idx != core.ops.len() - 1,
            "max frequency should not be energy-optimal"
        );
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let p = ComplexPlatform::tk1();
        let core = p.core("a15-0").expect("core");
        let w = WorkItem::new(1000.0, 1.0);
        let nominal = p.nominal_time_ms(core, 2, &w);
        let mut rng1 = ComplexPlatform::rng(7);
        let mut rng2 = ComplexPlatform::rng(7);
        for _ in 0..200 {
            let e1 = p.execute(core, 2, &w, &mut rng1);
            let e2 = p.execute(core, 2, &w, &mut rng2);
            assert_eq!(e1, e2, "seeded runs must be identical");
            assert!(e1.time_ms > 0.0);
            assert!((e1.time_ms - nominal).abs() <= nominal * 3.5 * p.jitter_sigma + 1e-9);
        }
    }

    #[test]
    fn utilisation_reduces_energy_not_time() {
        let p = ComplexPlatform::tk1();
        let core = p.core("a15-0").expect("core");
        let busy = WorkItem {
            ref_mcycles: 1000.0,
            gpu_speedup: 1.0,
            utilisation: 1.0,
        };
        let membound = WorkItem {
            ref_mcycles: 1000.0,
            gpu_speedup: 1.0,
            utilisation: 0.5,
        };
        assert_eq!(
            p.nominal_time_ms(core, 3, &busy),
            p.nominal_time_ms(core, 3, &membound)
        );
        assert!(p.nominal_energy_mj(core, 3, &membound) < p.nominal_energy_mj(core, 3, &busy));
    }

    #[test]
    fn platform_presets_are_well_formed() {
        for p in [ComplexPlatform::tk1(), ComplexPlatform::nano()] {
            assert!(!p.cores.is_empty());
            for c in &p.cores {
                assert!(!c.ops.is_empty(), "{} has no operating points", c.name);
                for w in c.ops.windows(2) {
                    assert!(
                        w[0].freq_mhz < w[1].freq_mhz,
                        "{}: ops must be sorted",
                        c.name
                    );
                    assert!(w[0].dyn_power_mw < w[1].dyn_power_mw);
                }
            }
        }
    }
}
