//! The hidden ground-truth energy model of the simulated PG32 core.
//!
//! Structured like the models of paper refs \[8\]/\[9\] (Tiwari-style): each
//! instruction costs a per-class **base energy**, plus a **circuit-state
//! overhead** that depends on the previous instruction's class, plus
//! per-cycle **static leakage**. The overhead matrix is an irregular
//! deterministic function of the class pair so that no analytical model in
//! `teamplay-energy` can be trivially identical — analyser-vs-measurement
//! error stays honest, as it is against real silicon.
//!
//! All energies are in picojoules.

use serde::{Deserialize, Serialize};
use teamplay_isa::{EnergyClass, ENERGY_CLASS_COUNT};

/// Ground-truth per-instruction energy tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthEnergy {
    base: [f64; ENERGY_CLASS_COUNT],
    overhead: [[f64; ENERGY_CLASS_COUNT]; ENERGY_CLASS_COUNT],
    /// Static leakage per cycle (pJ).
    pub leakage_per_cycle: f64,
    /// Extra energy per register moved by push/pop (pJ).
    pub stack_per_reg: f64,
}

impl GroundTruthEnergy {
    /// The PG32 reference truth (Cortex-M0-like magnitudes: roughly a
    /// nanojoule per instruction at 3.3 V / 48 MHz).
    pub fn pg32() -> GroundTruthEnergy {
        let base = [
            780.0,  // Alu
            3400.0, // Mul — single-cycle but power-hungry (the ETS sweet-spot lever)
            4200.0, // Div
            1650.0, // Load
            1510.0, // Store
            1120.0, // Branch
            1180.0, // Stack (base; plus per-register)
            2900.0, // Io (pad drivers)
            420.0,  // Idle
        ];
        let mut overhead = [[0.0; ENERGY_CLASS_COUNT]; ENERGY_CLASS_COUNT];
        for (i, row) in overhead.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    // Irregular but deterministic circuit-state cost.
                    *cell = 90.0 + 17.0 * ((i * 7 + j * 3) % 11) as f64;
                }
            }
        }
        GroundTruthEnergy {
            base,
            overhead,
            leakage_per_cycle: 95.0,
            stack_per_reg: 240.0,
        }
    }

    /// A LEON3-flavoured truth: higher leakage (rad-hard process) and more
    /// expensive memory traffic, used by the SpaceWire use case.
    pub fn leon3() -> GroundTruthEnergy {
        let mut t = GroundTruthEnergy::pg32();
        for (class, b) in EnergyClass::ALL.iter().zip(t.base.iter_mut()) {
            if matches!(class, EnergyClass::Load | EnergyClass::Store) {
                *b *= 1.6;
            }
        }
        t.leakage_per_cycle = 210.0;
        t
    }

    /// Base energy of a class (pJ).
    pub fn base(&self, class: EnergyClass) -> f64 {
        self.base[class.index()]
    }

    /// Circuit-state overhead of executing `current` after `previous`.
    pub fn overhead(&self, previous: EnergyClass, current: EnergyClass) -> f64 {
        self.overhead[previous.index()][current.index()]
    }

    /// Energy of one instruction occurrence (pJ), excluding leakage.
    pub fn dynamic_energy(
        &self,
        previous: Option<EnergyClass>,
        current: EnergyClass,
        regs_moved: usize,
    ) -> f64 {
        let mut e = self.base(current);
        if let Some(p) = previous {
            e += self.overhead(p, current);
        }
        if current == EnergyClass::Stack {
            e += self.stack_per_reg * regs_moved as f64;
        }
        e
    }
}

impl Default for GroundTruthEnergy {
    fn default() -> Self {
        GroundTruthEnergy::pg32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_energies_are_positive_and_ordered_sensibly() {
        let t = GroundTruthEnergy::pg32();
        assert!(t.base(EnergyClass::Mul) > t.base(EnergyClass::Alu));
        assert!(t.base(EnergyClass::Div) > t.base(EnergyClass::Mul));
        assert!(t.base(EnergyClass::Load) > t.base(EnergyClass::Alu));
        for c in EnergyClass::ALL {
            assert!(t.base(c) > 0.0);
        }
    }

    #[test]
    fn overhead_is_zero_on_diagonal_positive_off() {
        let t = GroundTruthEnergy::pg32();
        for a in EnergyClass::ALL {
            for b in EnergyClass::ALL {
                if a == b {
                    assert_eq!(t.overhead(a, b), 0.0);
                } else {
                    assert!(t.overhead(a, b) > 0.0);
                }
            }
        }
    }

    #[test]
    fn stack_energy_scales_with_registers() {
        let t = GroundTruthEnergy::pg32();
        let e1 = t.dynamic_energy(None, EnergyClass::Stack, 1);
        let e3 = t.dynamic_energy(None, EnergyClass::Stack, 3);
        assert!((e3 - e1 - 2.0 * t.stack_per_reg).abs() < 1e-9);
    }

    #[test]
    fn leon3_memory_is_costlier() {
        let pg = GroundTruthEnergy::pg32();
        let leon = GroundTruthEnergy::leon3();
        assert!(leon.base(EnergyClass::Load) > pg.base(EnergyClass::Load));
        assert!(leon.leakage_per_cycle > pg.leakage_per_cycle);
        assert_eq!(leon.base(EnergyClass::Alu), pg.base(EnergyClass::Alu));
    }
}
